//! Distance-measure ablation: building the temporal graphs with DTW (the
//! paper's choice) vs ERP vs LCSS (§III-D alternatives). PeMS, 40% missing.

use rihgcn_bench::{pems_at, rihgcn_imputation, rihgcn_prediction, Bench, Scale};
use rihgcn_core::{fit, RihgcnConfig, RihgcnModel};
use st_graph::SeriesDistance;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Distance ablation — PeMS, 40% missing, scale `{}`",
        scale.name
    );
    let ds = pems_at(&scale, 0.4, 900);
    let bench = Bench::prepare(&ds, &scale, 12, 12);

    let measures: Vec<(&str, SeriesDistance)> = vec![
        ("DTW", SeriesDistance::Dtw),
        ("ERP (g=0)", SeriesDistance::Erp { gap: 0.0 }),
        ("LCSS (eps=0.5)", SeriesDistance::Lcss { epsilon: 0.5 }),
    ];
    println!(
        "\n{:<16} | {:>9} {:>9} | {:>9} {:>9}",
        "measure", "pred MAE", "pred RMSE", "imp MAE", "imp RMSE"
    );
    println!("{}", "-".repeat(62));
    for (name, measure) in measures {
        let t0 = Instant::now();
        let cfg = RihgcnConfig {
            gcn_dim: scale.gcn_dim,
            lstm_dim: scale.lstm_dim,
            num_temporal_graphs: 4,
            history: 12,
            horizon: 12,
            ..Default::default()
        }
        .with_distance(measure);
        let mut model = RihgcnModel::from_dataset(&bench.norm.train, cfg);
        let tc = scale.train_config();
        fit(&mut model, &bench.train, &bench.val, &tc);
        let pred = rihgcn_prediction(&model, &bench);
        let imp = rihgcn_imputation(&model, &bench);
        println!(
            "{name:<16} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4}",
            pred.mae, pred.rmse, imp.mae, imp.rmse
        );
        eprintln!("{name} done in {:?}", t0.elapsed());
    }
}
