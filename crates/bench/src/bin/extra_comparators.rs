//! Extra comparators (beyond the paper's roster): DCRNN-lite and
//! STGCN-lite on PeMS at two missing rates, printed next to GCN-LSTM and
//! RIHGCN for context.

use rihgcn_baselines::BaselineKind;
use rihgcn_bench::{pems_at, print_table, Bench, Method, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let rates = [0.2, 0.8];
    let columns: Vec<String> = rates
        .iter()
        .map(|r| format!("{:.0}% missing", r * 100.0))
        .collect();
    println!(
        "Extra comparators — DCRNN-lite, STGCN-lite on PeMS, scale `{}`",
        scale.name
    );

    let mut rows = Vec::new();
    for method in [
        Method::Dcrnn,
        Method::Stgcn,
        Method::Baseline(BaselineKind::GcnLstm),
        Method::Rihgcn,
    ] {
        let t0 = Instant::now();
        let mut metrics = Vec::new();
        for (i, &rate) in rates.iter().enumerate() {
            let ds = pems_at(&scale, rate, 100 + i as u64);
            let bench = Bench::prepare(&ds, &scale, 12, 12);
            metrics.push(rihgcn_bench::run_method(method, &bench, 4));
        }
        eprintln!("{:<16} done in {:?}", method.name(), t0.elapsed());
        rows.push((method.name().to_string(), metrics));
    }
    print_table("Extra comparators vs GCN-LSTM vs RIHGCN", &columns, &rows);
}
