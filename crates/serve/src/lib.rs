//! # st-serve
//!
//! A zero-dependency HTTP/1.1 forecast service around a **multi-tenant
//! model registry** of [`rihgcn_core::OnlineForecaster`]s: a std
//! `TcpListener` accept loop feeds a fixed worker pool; inference funnels
//! through `N` engine shards, each owning the forecasters of the tenants
//! FNV-routed to it, micro-batching requests and coalescing identical
//! window-version forecasts onto a single model evaluation per tenant.
//!
//! Routes (inference routes take `?tenant=NAME`, defaulting to `default`):
//!
//! | route                  | purpose                                          |
//! |------------------------|--------------------------------------------------|
//! | `POST /observe`        | push one `N × F` observation + mask + slot       |
//! | `GET /forecast`        | multi-horizon forecast in original units         |
//! | `GET /imputed`         | imputed history window                           |
//! | `GET /healthz`         | model shape + window fill state                  |
//! | `GET /metrics`         | counters incl. per-shard / per-tenant families   |
//! | `POST /admin/load`     | hot-load (or swap) a checkpoint for a tenant     |
//! | `POST /admin/unload`   | drop a tenant's model                            |
//! | `GET /admin/tenants`   | tenant directory (shard, shape, counters)        |
//! | `POST /admin/shutdown` | graceful shutdown (drain every shard, join)      |
//!
//! Payload floats use Rust's shortest-round-trip formatting, so forecasts
//! fetched over HTTP are **bit-identical** to calling the forecaster
//! in-process — per tenant, at any shard count.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod shard;
pub mod wire;

pub use client::{HttpClient, Response};
pub use metrics::{Metrics, Route};
pub use registry::{shard_of, valid_tenant, Registry, RegistryConfig, RegistryError};
pub use server::{ServeConfig, Server, ShutdownHandle, DEFAULT_TENANT};
pub use shard::{EngineError, ModelInfo, StepsReply, TenantCounters};
pub use wire::{format_observation, format_steps, parse_observation, parse_steps, Observation};
