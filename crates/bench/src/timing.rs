//! Self-contained micro-benchmark timing loop.
//!
//! Replaces the external `criterion` harness so the workspace builds with
//! zero registry dependencies. The protocol is deliberately simple and
//! robust: calibrate the per-sample iteration count, warm up, then time a
//! fixed number of samples and report the median (plus min/mean), which is
//! insensitive to scheduler noise in either tail.
//!
//! Set `RIHGCN_BENCH_SAMPLES` to change the sample count (default 20) and
//! `RIHGCN_BENCH_SAMPLE_MS` to change the per-sample time target
//! (default 5 ms) — lower both for smoke runs.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// Returns the smallest element such that at least `p·n` of the samples are
/// `≤` it: index `⌈p·n⌉ − 1` (0-based). For `p = 0.5` on an even count this
/// selects the **lower** middle element — the previous `len / 2` indexing
/// (and loadgen's `((len−1)·p).round()`) picked the upper one, an
/// off-by-one against the nearest-rank definition that `p50`/`p99` report
/// lines claim.
///
/// `p` is clamped to `(0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty.
///
/// # Examples
///
/// ```
/// use rihgcn_bench::timing::percentile;
///
/// let xs = [10u64, 20, 30, 40];
/// assert_eq!(percentile(&xs, 0.50), 20); // rank ⌈0.5·4⌉ = 2
/// assert_eq!(percentile(&xs, 0.99), 40);
/// ```
pub fn percentile<T: Copy>(sorted: &[T], p: f64) -> T {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let n = sorted.len();
    let rank = (p.clamp(f64::MIN_POSITIVE, 1.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 20;

/// Default wall-clock target for one sample, in milliseconds.
const DEFAULT_SAMPLE_MS: u64 = 5;

/// Warm-up budget before sampling starts.
const WARMUP: Duration = Duration::from_millis(300);

/// One benchmark's timing summary, all values per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest sample's per-iteration time.
    pub min: Duration,
    /// Mean per-iteration time across samples.
    pub mean: Duration,
    /// Iterations timed per sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

impl BenchResult {
    /// One aligned report line, e.g. for collecting into a table.
    pub fn report_line(&self) -> String {
        format!(
            "{:<40} median {:>12?}  min {:>12?}  mean {:>12?}  ({} iters × {} samples)",
            self.name, self.median, self.min, self.mean, self.iters_per_sample, self.samples
        )
    }
}

/// Micro-benchmark runner: warmup then median-of-N timing.
///
/// # Examples
///
/// ```
/// let mut runner = rihgcn_bench::timing::Runner::with_settings(5, 1);
/// let r = runner.bench("sum", || (0..1000u64).sum::<u64>());
/// assert!(r.median.as_nanos() > 0);
/// ```
#[derive(Debug, Default)]
pub struct Runner {
    samples: usize,
    sample_ms: u64,
    results: Vec<BenchResult>,
}

impl Runner {
    /// Creates a runner configured from the environment (see module docs).
    pub fn from_env() -> Self {
        let parse = |var: &str, default: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Self::with_settings(
            parse("RIHGCN_BENCH_SAMPLES", DEFAULT_SAMPLES as u64) as usize,
            parse("RIHGCN_BENCH_SAMPLE_MS", DEFAULT_SAMPLE_MS),
        )
    }

    /// Creates a runner with an explicit sample count and per-sample target.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn with_settings(samples: usize, sample_ms: u64) -> Self {
        assert!(samples > 0, "need at least one sample");
        Self {
            samples,
            sample_ms: sample_ms.max(1),
            results: Vec::new(),
        }
    }

    /// Times `f`, prints the report line, and records the result.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> BenchResult {
        // Calibrate: how many iterations fit in one sample target?
        let once = time_iters(&mut f, 1);
        let target = Duration::from_millis(self.sample_ms);
        let iters = if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        // Warm up: caches, allocator, branch predictors.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            black_box(f());
        }

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| time_iters(&mut f, iters) / iters as u32)
            .collect();
        per_iter.sort_unstable();

        let result = BenchResult {
            name: name.to_string(),
            median: percentile(&per_iter, 0.5),
            min: per_iter[0],
            mean: per_iter.iter().sum::<Duration>() / per_iter.len() as u32,
            iters_per_sample: iters,
            samples: self.samples,
        };
        println!("{}", result.report_line());
        self.results.push(result.clone());
        result
    }

    /// All results recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Wall-clock time for `iters` calls of `f`, results black-boxed.
fn time_iters<T>(f: &mut impl FnMut() -> T, iters: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_runner() -> Runner {
        Runner::with_settings(5, 1)
    }

    #[test]
    fn bench_produces_ordered_statistics() {
        let mut runner = quick_runner();
        let r = runner.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..500 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(r.min <= r.median, "min {:?} > median {:?}", r.min, r.median);
        assert!(r.median.as_nanos() > 0);
        assert_eq!(r.samples, 5);
        assert_eq!(runner.results().len(), 1);
    }

    #[test]
    fn report_line_contains_name_and_stats() {
        let mut runner = quick_runner();
        let r = runner.bench("labelled", || 1 + 1);
        assert!(r.report_line().contains("labelled"));
        assert!(r.report_line().contains("median"));
    }

    #[test]
    fn env_settings_fall_back_to_defaults() {
        let runner = Runner::from_env();
        assert!(runner.samples >= 1);
        assert!(runner.sample_ms >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = Runner::with_settings(0, 1);
    }

    #[test]
    fn percentile_nearest_rank_on_known_distributions() {
        // Even count: nearest-rank p50 is the LOWER middle element
        // (rank ⌈0.5·4⌉ = 2); the old len/2 indexing returned 30.
        let even = [10u64, 20, 30, 40];
        assert_eq!(percentile(&even, 0.50), 20);
        assert_eq!(percentile(&even, 0.25), 10);
        assert_eq!(percentile(&even, 0.75), 30);
        assert_eq!(percentile(&even, 0.99), 40);
        assert_eq!(percentile(&even, 1.00), 40);

        // Odd count: p50 is the true middle.
        let odd = [1u64, 2, 3, 4, 5];
        assert_eq!(percentile(&odd, 0.50), 3);
        assert_eq!(percentile(&odd, 0.20), 1);
        assert_eq!(percentile(&odd, 0.21), 2);

        // n = 100: p99 must be the 99th value (index 98), not the maximum.
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.99), 99);
        assert_eq!(percentile(&hundred, 0.50), 50);
        assert_eq!(percentile(&hundred, 0.01), 1);

        // Degenerate single sample and out-of-range p clamp.
        assert_eq!(percentile(&[7u64], 0.5), 7);
        assert_eq!(percentile(&even, 0.0), 10);
        assert_eq!(percentile(&even, 2.0), 40);

        // Works for Duration (the Runner's median path).
        let ds: Vec<Duration> = (1..=4).map(Duration::from_micros).collect();
        assert_eq!(percentile(&ds, 0.5), Duration::from_micros(2));
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn percentile_rejects_empty_input() {
        let _ = percentile::<u64>(&[], 0.5);
    }
}
