//! Adjacency-matrix construction (paper Eq. 8).
//!
//! Both the geographic graph and every temporal graph in the HGCN are built
//! the same way: a pairwise distance matrix is passed through a thresholded
//! Gaussian kernel
//!
//! ```text
//! A_ij = exp(−d_ij² / σ²)   if exp(−d_ij² / σ²) ≥ ε, else 0
//! ```
//!
//! where `σ` is the standard deviation of the distances and `ε` controls
//! sparsity (0.1 in the paper).

use st_tensor::Matrix;

/// Builds a Gaussian-kernel adjacency matrix from a symmetric pairwise
/// distance matrix, following the paper's Eq. (8).
///
/// The diagonal is forced to zero (no self loops); self-connections enter
/// the model through the Chebyshev `T_0` term instead. `sigma` defaults to
/// the standard deviation of the off-diagonal distances when `None`.
///
/// # Panics
///
/// Panics if `distances` is not square or `epsilon` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use st_graph::gaussian_adjacency;
/// use st_tensor::Matrix;
///
/// let d = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// let a = gaussian_adjacency(&d, None, 0.1);
/// assert!(a[(0, 1)] > 0.0);
/// assert_eq!(a[(0, 0)], 0.0);
/// ```
pub fn gaussian_adjacency(distances: &Matrix, sigma: Option<f64>, epsilon: f64) -> Matrix {
    let n = distances.rows();
    assert_eq!(distances.cols(), n, "distance matrix must be square");
    assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");

    let sigma = sigma
        .unwrap_or_else(|| {
            let std = off_diagonal_std(distances);
            if std > 1e-12 {
                std
            } else {
                // All pairwise distances equal (e.g. two nodes): fall back to
                // the mean distance so equal weights survive the kernel.
                off_diagonal_mean(distances).max(1.0)
            }
        })
        .max(1e-12);
    let sigma2 = sigma * sigma;
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            return 0.0;
        }
        let d = distances[(i, j)];
        let w = (-d * d / sigma2).exp();
        if w >= epsilon {
            w
        } else {
            0.0
        }
    })
}

fn off_diagonal_mean(m: &Matrix) -> f64 {
    let n = m.rows();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += m[(i, j)];
            }
        }
    }
    sum / (n * n - n) as f64
}

/// Standard deviation of the off-diagonal entries of a square matrix.
///
/// Returns `0.0` for matrices with fewer than two nodes.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn off_diagonal_std(m: &Matrix) -> f64 {
    let n = m.rows();
    assert_eq!(m.cols(), n, "matrix must be square");
    if n < 2 {
        return 0.0;
    }
    let count = (n * n - n) as f64;
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += m[(i, j)];
            }
        }
    }
    let mean = sum / count;
    let mut var = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let d = m[(i, j)] - mean;
                var += d * d;
            }
        }
    }
    (var / count).sqrt()
}

/// Fraction of off-diagonal entries that are exactly zero.
///
/// # Panics
///
/// Panics if the matrix is not square or has fewer than two nodes.
pub fn sparsity(a: &Matrix) -> f64 {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    assert!(n >= 2, "sparsity needs at least two nodes");
    let mut zeros = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j && a[(i, j)] == 0.0 {
                zeros += 1;
            }
        }
    }
    zeros as f64 / (n * n - n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_distances() -> Matrix {
        Matrix::from_rows(&[
            &[0.0, 1.0, 5.0, 9.0],
            &[1.0, 0.0, 4.0, 8.0],
            &[5.0, 4.0, 0.0, 3.0],
            &[9.0, 8.0, 3.0, 0.0],
        ])
    }

    #[test]
    fn adjacency_is_symmetric_with_zero_diagonal() {
        let a = gaussian_adjacency(&sample_distances(), None, 0.1);
        for i in 0..4 {
            assert_eq!(a[(i, i)], 0.0);
            for j in 0..4 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn closer_nodes_get_larger_weights() {
        let a = gaussian_adjacency(&sample_distances(), None, 0.0);
        assert!(a[(0, 1)] > a[(0, 2)]);
        assert!(a[(0, 2)] > a[(0, 3)]);
    }

    #[test]
    fn epsilon_prunes_weak_edges() {
        let dense = gaussian_adjacency(&sample_distances(), None, 0.0);
        let sparse = gaussian_adjacency(&sample_distances(), None, 0.5);
        assert!(sparsity(&sparse) >= sparsity(&dense));
        // The most distant pair must be pruned at a high threshold.
        assert_eq!(sparse[(0, 3)], 0.0);
        assert!(dense[(0, 3)] > 0.0);
    }

    #[test]
    fn explicit_sigma_is_respected() {
        let d = Matrix::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]);
        let a = gaussian_adjacency(&d, Some(2.0), 0.0);
        assert!((a[(0, 1)] - (-1.0_f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn weights_bounded_by_one() {
        let a = gaussian_adjacency(&sample_distances(), None, 0.0);
        assert!(a.as_slice().iter().all(|&w| (0.0..=1.0).contains(&w)));
    }

    #[test]
    fn off_diagonal_std_of_constant_is_zero() {
        let mut d = Matrix::filled(3, 3, 4.0);
        for i in 0..3 {
            d[(i, i)] = 0.0;
        }
        assert_eq!(off_diagonal_std(&d), 0.0);
    }

    #[test]
    fn single_node_graph() {
        let d = Matrix::zeros(1, 1);
        let a = gaussian_adjacency(&d, None, 0.1);
        assert_eq!(a.shape(), (1, 1));
        assert_eq!(a[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = gaussian_adjacency(&Matrix::zeros(2, 3), None, 0.1);
    }
}
