//! STGCN-lite: spatio-temporal graph convolutional network (Yu et al.,
//! IJCAI'18) at reduced depth.
//!
//! The paper's related work cites gated temporal convolution [16] as one of
//! the two standard temporal blocks; STGCN is its canonical carrier. This
//! reduced form keeps the signature "sandwich" block — gated temporal
//! convolution (GLU), Chebyshev graph convolution, gated temporal
//! convolution — followed by the shared FC read-out. No imputation path:
//! expects mean-filled inputs like the other comparators.

use rihgcn_core::Forecaster;
use st_autodiff::Var;
use st_data::{TrafficDataset, WindowSample};
use st_graph::{gaussian_adjacency, scaled_laplacian_from_adjacency};
use st_nn::{Activation, ChebGcn, Linear, ParamStore, Session};
use st_tensor::{rng, Matrix, StRng};

/// Hyper-parameters for [`StgcnLite`].
#[derive(Debug, Clone, PartialEq)]
pub struct StgcnConfig {
    /// Channel width inside the sandwich block.
    pub hidden_dim: usize,
    /// Chebyshev order of the spatial convolution.
    pub cheb_k: usize,
    /// Temporal kernel size of the gated convolutions.
    pub kernel: usize,
    /// History window length.
    pub history: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Adjacency sparsity threshold.
    pub epsilon: f64,
    /// Parameter seed.
    pub seed: u64,
}

impl Default for StgcnConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 12,
            cheb_k: 3,
            kernel: 3,
            history: 12,
            horizon: 12,
            epsilon: 0.1,
            seed: 43,
        }
    }
}

/// A gated (GLU) temporal convolution: `(W_f ⋆ x) ⊙ σ(W_g ⋆ x)` over the
/// window, kernel `k`, padding by clamping at the window start.
struct GatedTemporalConv {
    filter: Linear, // k·C_in → C_out
    gate: Linear,   // k·C_in → C_out
    kernel: usize,
}

impl GatedTemporalConv {
    fn new(
        store: &mut ParamStore,
        init: &mut StRng,
        in_dim: usize,
        out_dim: usize,
        kernel: usize,
        name: &str,
    ) -> Self {
        Self {
            filter: Linear::new(store, init, kernel * in_dim, out_dim, &format!("{name}.f")),
            gate: Linear::new(store, init, kernel * in_dim, out_dim, &format!("{name}.g")),
            kernel,
        }
    }

    fn forward(&self, sess: &mut Session, store: &ParamStore, steps: &[Var]) -> Vec<Var> {
        let t_len = steps.len();
        (0..t_len)
            .map(|t| {
                // Concatenate the k most recent maps, clamping at the start.
                let mut window: Option<Var> = None;
                for offset in (0..self.kernel).rev() {
                    let idx = t.saturating_sub(offset);
                    window = Some(match window {
                        Some(w) => sess.tape.concat_cols(w, steps[idx]),
                        None => steps[idx],
                    });
                }
                let w = window.expect("kernel >= 1");
                let f_pre = self.filter.forward(sess, store, w);
                let f = sess.tape.tanh(f_pre);
                let g_pre = self.gate.forward(sess, store, w);
                let g = sess.tape.sigmoid(g_pre);
                sess.tape.mul(f, g)
            })
            .collect()
    }
}

/// The reduced STGCN comparator: one temporal–spatial–temporal sandwich.
pub struct StgcnLite {
    store: ParamStore,
    cfg: StgcnConfig,
    laplacian: Matrix,
    t_in: GatedTemporalConv,
    spatial: ChebGcn,
    t_out: GatedTemporalConv,
    pred_head: Linear,
    num_features: usize,
}

impl std::fmt::Debug for StgcnLite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StgcnLite({} params)", self.store.num_scalars())
    }
}

impl StgcnLite {
    /// Builds the model on a dataset's geographic graph.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn from_dataset(train: &TrafficDataset, cfg: StgcnConfig) -> Self {
        assert!(cfg.kernel >= 1, "temporal kernel must be at least 1");
        let d = train.num_features();
        let mut init = rng(cfg.seed);
        let mut store = ParamStore::new();

        let adj = gaussian_adjacency(&train.network.road_distance_matrix(), None, cfg.epsilon);
        let laplacian = scaled_laplacian_from_adjacency(&adj);
        let h = cfg.hidden_dim;
        let t_in = GatedTemporalConv::new(&mut store, &mut init, d, h, cfg.kernel, "stgcn.t1");
        let spatial = ChebGcn::new(
            &mut store,
            &mut init,
            h,
            h,
            cfg.cheb_k,
            Activation::Relu,
            "stgcn.gcn",
        );
        let t_out = GatedTemporalConv::new(&mut store, &mut init, h, h, cfg.kernel, "stgcn.t2");
        let pred_head = Linear::new(&mut store, &mut init, h, d * cfg.horizon, "stgcn.pred");

        Self {
            store,
            cfg,
            laplacian,
            t_in,
            spatial,
            t_out,
            pred_head,
            num_features: d,
        }
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn run_sample(&self, sess: &mut Session, sample: &WindowSample) -> (Vec<Var>, Var) {
        assert_eq!(
            sample.history_len(),
            self.cfg.history,
            "history length mismatch"
        );
        assert_eq!(
            sample.horizon_len(),
            self.cfg.horizon,
            "horizon length mismatch"
        );

        let inputs: Vec<Var> = (0..self.cfg.history)
            .map(|t| sess.constant(sample.inputs[t].clone()))
            .collect();
        // Sandwich: gated TCN → GCN (per step) → gated TCN.
        let h1 = self.t_in.forward(sess, &self.store, &inputs);
        let h2: Vec<Var> = h1
            .iter()
            .map(|&s| self.spatial.forward(sess, &self.store, &self.laplacian, s))
            .collect();
        let h3 = self.t_out.forward(sess, &self.store, &h2);

        let last = *h3.last().expect("non-empty history");
        let pred_flat = self.pred_head.forward(sess, &self.store, last);

        let d = self.num_features;
        let mut predictions = Vec::with_capacity(self.cfg.horizon);
        let mut terms = Vec::with_capacity(self.cfg.horizon);
        for hz in 0..self.cfg.horizon {
            let step = sess.tape.slice_cols(pred_flat, hz * d, (hz + 1) * d);
            let target = sess.constant(sample.targets[hz].clone());
            terms.push(sess.tape.masked_mae(step, target, &sample.target_masks[hz]));
            predictions.push(step);
        }
        let mut loss = terms[0];
        for &t in &terms[1..] {
            loss = sess.tape.add(loss, t);
        }
        let loss = sess.tape.scale(loss, 1.0 / self.cfg.horizon as f64);
        (predictions, loss)
    }
}

impl Forecaster for StgcnLite {
    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn accumulate_gradients(&mut self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, loss) = self.run_sample(&mut sess, sample);
        let value = sess.tape.value(loss)[(0, 0)];
        sess.backward(loss);
        sess.write_grads(&mut self.store);
        value
    }

    fn loss(&self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, loss) = self.run_sample(&mut sess, sample);
        sess.tape.value(loss)[(0, 0)]
    }

    fn predict(&self, sample: &WindowSample) -> Vec<Matrix> {
        let mut sess = Session::new(&self.store);
        let (preds, _) = self.run_sample(&mut sess, sample);
        preds.iter().map(|&v| sess.tape.value(v).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean_fill_samples;
    use rihgcn_core::{fit, prepare_split, TrainConfig};
    use st_data::{generate_pems, PemsConfig, WindowSampler};

    fn tiny() -> (TrafficDataset, StgcnConfig) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let cfg = StgcnConfig {
            hidden_dim: 4,
            cheb_k: 2,
            kernel: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        (ds, cfg)
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let (ds, cfg) = tiny();
        let model = StgcnLite::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let preds = model.predict(&sample);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].shape(), (4, 4));
        assert!(preds.iter().all(Matrix::is_finite));
        assert!(model.num_parameters() > 0);
    }

    #[test]
    fn all_sandwich_layers_receive_gradients() {
        let (ds, cfg) = tiny();
        let mut model = StgcnLite::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 3);
        let _ = model.accumulate_gradients(&sample);
        for prefix in ["stgcn.t1", "stgcn.gcn", "stgcn.t2", "stgcn.pred"] {
            let touched = model
                .store
                .ids()
                .filter(|&id| model.store.name(id).starts_with(prefix))
                .any(|id| model.store.grad(id).max_abs() > 0.0);
            assert!(touched, "no gradient reached {prefix}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, cfg) = tiny();
        let split = ds.split_chronological();
        let (norm, _) = prepare_split(&split);
        let sampler = WindowSampler::new(4, 2, 12);
        let train = mean_fill_samples(&sampler.sample(&norm.train)[..6]);
        let mut model = StgcnLite::from_dataset(&norm.train, cfg);
        let tc = TrainConfig {
            max_epochs: 4,
            batch_size: 3,
            learning_rate: 3e-3,
            ..Default::default()
        };
        let report = fit(&mut model, &train, &[], &tc);
        assert!(*report.train_losses.last().unwrap() < report.train_losses[0]);
    }

    #[test]
    fn temporal_kernel_sees_the_past() {
        let (ds, cfg) = tiny();
        let model = StgcnLite::from_dataset(&ds, cfg);
        let sampler = WindowSampler::new(4, 2, 1);
        let sample = sampler.window_at(&ds, 0);
        let base = model.predict(&sample);
        let mut perturbed = sample.clone();
        // Perturbing the second-to-last step must change the forecast
        // (kernel 2 covers it at the final step).
        perturbed.inputs[2] = perturbed.inputs[2].map(|x| x + 5.0);
        let changed = model.predict(&perturbed);
        assert!(base[0].max_abs_diff(&changed[0]) > 1e-9);
    }
}
