//! GraphWaveNet-lite (Wu et al., IJCAI'19) at reduced depth.
//!
//! Keeps the comparator's signature ingredients: a **self-adaptive
//! adjacency matrix** `Ã = softmax(relu(E₁·E₂ᵀ))` learned from node
//! embeddings (no prior graph needed), and **gated temporal convolutions**
//! with growing dilation. Two TCN+graph-conv layers instead of eight, sized
//! for CPU training. Like the original it assumes complete inputs —
//! mean-fill before use.

use rihgcn_core::Forecaster;
use st_autodiff::Var;
use st_data::{TrafficDataset, WindowSample};
use st_nn::{Linear, ParamId, ParamStore, Session};
use st_tensor::{rng, uniform_matrix, Matrix};

/// Hyper-parameters for [`GraphWaveNetLite`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphWaveNetConfig {
    /// Residual channel width.
    pub hidden_dim: usize,
    /// Node-embedding width for the adaptive adjacency.
    pub embed_dim: usize,
    /// History window length.
    pub history: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Dilations of the stacked gated TCN layers.
    pub dilations: Vec<usize>,
    /// Parameter seed.
    pub seed: u64,
}

impl Default for GraphWaveNetConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 12,
            embed_dim: 6,
            history: 12,
            horizon: 12,
            dilations: vec![1, 2],
            seed: 37,
        }
    }
}

struct WaveLayer {
    filter: Linear,   // 2F → F
    gate: Linear,     // 2F → F
    spatial: Linear,  // F → F applied after Ã propagation
    residual: Linear, // F → F skip path
    dilation: usize,
}

/// The reduced Graph WaveNet comparator.
pub struct GraphWaveNetLite {
    store: ParamStore,
    cfg: GraphWaveNetConfig,
    in_proj: Linear,
    e1: ParamId,
    e2: ParamId,
    layers: Vec<WaveLayer>,
    pred_head: Linear,
    num_features: usize,
}

impl std::fmt::Debug for GraphWaveNetLite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GraphWaveNetLite({} params)", self.store.num_scalars())
    }
}

impl GraphWaveNetLite {
    /// Builds the model; only node count matters (the graph is learned).
    pub fn from_dataset(train: &TrafficDataset, cfg: GraphWaveNetConfig) -> Self {
        assert!(!cfg.dilations.is_empty(), "need at least one TCN layer");
        let n = train.num_nodes();
        let d = train.num_features();
        let mut init = rng(cfg.seed);
        let mut store = ParamStore::new();

        let in_proj = Linear::new(&mut store, &mut init, d, cfg.hidden_dim, "gwn.in");
        let e1 = store.add(
            "gwn.e1",
            uniform_matrix(&mut init, n, cfg.embed_dim, -0.5, 0.5),
        );
        let e2 = store.add(
            "gwn.e2",
            uniform_matrix(&mut init, n, cfg.embed_dim, -0.5, 0.5),
        );

        let f = cfg.hidden_dim;
        let layers = cfg
            .dilations
            .iter()
            .enumerate()
            .map(|(i, &dilation)| WaveLayer {
                filter: Linear::new(&mut store, &mut init, 2 * f, f, &format!("gwn.l{i}.filter")),
                gate: Linear::new(&mut store, &mut init, 2 * f, f, &format!("gwn.l{i}.gate")),
                spatial: Linear::new(&mut store, &mut init, f, f, &format!("gwn.l{i}.spatial")),
                residual: Linear::new(&mut store, &mut init, f, f, &format!("gwn.l{i}.res")),
                dilation,
            })
            .collect();

        let pred_head = Linear::new(&mut store, &mut init, 2 * f, d * cfg.horizon, "gwn.pred");

        Self {
            store,
            cfg,
            in_proj,
            e1,
            e2,
            layers,
            pred_head,
            num_features: d,
        }
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// The current adaptive adjacency (row-stochastic), detached.
    pub fn adaptive_adjacency(&self) -> Matrix {
        let mut sess = Session::new(&self.store);
        let a = self.build_adjacency(&mut sess);
        sess.tape.value(a).clone()
    }

    fn build_adjacency(&self, sess: &mut Session) -> Var {
        let e1 = sess.var(&self.store, self.e1);
        let e2 = sess.var(&self.store, self.e2);
        let e2t = sess.tape.transpose(e2);
        let logits = sess.tape.matmul(e1, e2t);
        let act = sess.tape.relu(logits);
        sess.tape.softmax_rows(act)
    }

    fn run_sample(&self, sess: &mut Session, sample: &WindowSample) -> (Vec<Var>, Var) {
        assert_eq!(
            sample.history_len(),
            self.cfg.history,
            "history length mismatch"
        );
        assert_eq!(
            sample.horizon_len(),
            self.cfg.horizon,
            "horizon length mismatch"
        );
        let t_len = self.cfg.history;
        let adj = self.build_adjacency(sess);

        // Input projection per step.
        let mut h: Vec<Var> = (0..t_len)
            .map(|t| {
                let x = sess.constant(sample.inputs[t].clone());
                let p = self.in_proj.forward(sess, &self.store, x);
                sess.tape.relu(p)
            })
            .collect();

        // Stacked gated TCN + adaptive graph convolution layers.
        for layer in &self.layers {
            let mut next = Vec::with_capacity(t_len);
            for t in 0..t_len {
                let past = h[t.saturating_sub(layer.dilation)];
                let pair = sess.tape.concat_cols(past, h[t]);
                let f_pre = layer.filter.forward(sess, &self.store, pair);
                let filter = sess.tape.tanh(f_pre);
                let g_pre = layer.gate.forward(sess, &self.store, pair);
                let gate = sess.tape.sigmoid(g_pre);
                let gated = sess.tape.mul(filter, gate);
                // Adaptive propagation with a residual skip.
                let propagated = sess.tape.matmul(adj, gated);
                let spatial = layer.spatial.forward(sess, &self.store, propagated);
                let res = layer.residual.forward(sess, &self.store, gated);
                let combined = sess.tape.add(spatial, res);
                next.push(sess.tape.relu(combined));
            }
            h = next;
        }

        // Read-out: last step plus the window mean (skip-connection style).
        let mut mean_acc = h[0];
        for &step in &h[1..] {
            mean_acc = sess.tape.add(mean_acc, step);
        }
        let mean = sess.tape.scale(mean_acc, 1.0 / t_len as f64);
        let features = sess.tape.concat_cols(h[t_len - 1], mean);
        let pred_flat = self.pred_head.forward(sess, &self.store, features);

        let d = self.num_features;
        let mut predictions = Vec::with_capacity(self.cfg.horizon);
        let mut terms = Vec::with_capacity(self.cfg.horizon);
        for hz in 0..self.cfg.horizon {
            let step = sess.tape.slice_cols(pred_flat, hz * d, (hz + 1) * d);
            let target = sess.constant(sample.targets[hz].clone());
            terms.push(sess.tape.masked_mae(step, target, &sample.target_masks[hz]));
            predictions.push(step);
        }
        let mut loss = terms[0];
        for &t in &terms[1..] {
            loss = sess.tape.add(loss, t);
        }
        let loss = sess.tape.scale(loss, 1.0 / self.cfg.horizon as f64);
        (predictions, loss)
    }
}

impl Forecaster for GraphWaveNetLite {
    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn accumulate_gradients(&mut self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, loss) = self.run_sample(&mut sess, sample);
        let value = sess.tape.value(loss)[(0, 0)];
        sess.backward(loss);
        sess.write_grads(&mut self.store);
        value
    }

    fn loss(&self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, loss) = self.run_sample(&mut sess, sample);
        sess.tape.value(loss)[(0, 0)]
    }

    fn predict(&self, sample: &WindowSample) -> Vec<Matrix> {
        let mut sess = Session::new(&self.store);
        let (preds, _) = self.run_sample(&mut sess, sample);
        preds.iter().map(|&v| sess.tape.value(v).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean_fill_samples;
    use rihgcn_core::{fit, prepare_split, TrainConfig};
    use st_data::{generate_pems, PemsConfig, WindowSampler};

    fn tiny() -> (TrafficDataset, GraphWaveNetConfig) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let cfg = GraphWaveNetConfig {
            hidden_dim: 4,
            embed_dim: 3,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        (ds, cfg)
    }

    #[test]
    fn forward_shapes() {
        let (ds, cfg) = tiny();
        let model = GraphWaveNetLite::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let preds = model.predict(&sample);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].shape(), (4, 4));
        assert!(preds.iter().all(Matrix::is_finite));
    }

    #[test]
    fn adaptive_adjacency_is_row_stochastic() {
        let (ds, cfg) = tiny();
        let model = GraphWaveNetLite::from_dataset(&ds, cfg);
        let a = model.adaptive_adjacency();
        assert_eq!(a.shape(), (4, 4));
        for r in 0..4 {
            let s: f64 = a.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
            assert!(a.row(r).iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn node_embeddings_receive_gradients() {
        let (ds, cfg) = tiny();
        let mut model = GraphWaveNetLite::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let _ = model.accumulate_gradients(&sample);
        assert!(model.store.grad(model.e1).max_abs() > 0.0, "e1 must learn");
        assert!(model.store.grad(model.e2).max_abs() > 0.0, "e2 must learn");
    }

    #[test]
    fn adjacency_changes_with_training() {
        let (ds, cfg) = tiny();
        let split = ds.split_chronological();
        let (norm, _) = prepare_split(&split);
        let sampler = WindowSampler::new(4, 2, 12);
        let train = mean_fill_samples(&sampler.sample(&norm.train)[..6]);
        let mut model = GraphWaveNetLite::from_dataset(&norm.train, cfg);
        let before = model.adaptive_adjacency();
        let tc = TrainConfig {
            max_epochs: 3,
            batch_size: 3,
            learning_rate: 5e-3,
            ..Default::default()
        };
        let report = fit(&mut model, &train, &[], &tc);
        assert!(*report.train_losses.last().unwrap() < report.train_losses[0]);
        let after = model.adaptive_adjacency();
        assert!(before.max_abs_diff(&after) > 1e-9, "adjacency must adapt");
    }
}
