//! Entry point of the `rihgcn` command-line tool; see `rihgcn_cli::run`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match rihgcn_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
