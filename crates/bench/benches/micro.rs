//! Micro-benchmarks for the computational kernels behind the experiments:
//! dense matmul, Chebyshev GCN forward, LSTM step, DTW, adjacency
//! construction, and a full RIHGCN forward+backward step.
//!
//! Runs on the in-tree timing harness (`rihgcn_bench::timing`) so the
//! workspace needs no external benchmark crate:
//!
//! ```text
//! cargo bench -p rihgcn-bench --bench micro
//! ```

use rihgcn_bench::alloc::{AllocSnapshot, CountingAlloc};
use rihgcn_bench::timing::Runner;
use rihgcn_core::{Forecaster, RihgcnConfig, RihgcnModel};
use st_autodiff::Tape;
use st_data::{generate_pems, DayProfiles, PemsConfig, WindowSampler};
use st_graph::{dtw, gaussian_adjacency, scaled_laplacian_from_adjacency, Interval, RoadNetwork};
use st_nn::{Activation, ChebGcn, LstmCell, ParamStore, Session};
use st_tensor::{rng, uniform_matrix, Matrix};

// Count heap traffic for the mem/* group; a System passthrough otherwise.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn bench_matmul(runner: &mut Runner) {
    for &n in &[16usize, 64, 128] {
        let a = uniform_matrix(&mut rng(1), n, n, -1.0, 1.0);
        let b = uniform_matrix(&mut rng(2), n, n, -1.0, 1.0);
        runner.bench(&format!("matmul/{n}"), || a.matmul(&b));
    }
}

fn bench_gcn_forward(runner: &mut Runner) {
    for &n in &[10usize, 50] {
        let net = RoadNetwork::corridor(n, 1.0);
        let adj = gaussian_adjacency(&net.distance_matrix(), None, 0.1);
        let lap = scaled_laplacian_from_adjacency(&adj);
        let mut store = ParamStore::new();
        let gcn = ChebGcn::new(&mut store, &mut rng(3), 4, 16, 3, Activation::Relu, "g");
        let x0 = uniform_matrix(&mut rng(4), n, 4, -1.0, 1.0);
        runner.bench(&format!("cheb_gcn_forward/{n}"), || {
            let mut sess = Session::new(&store);
            let x = sess.constant(x0.clone());
            gcn.forward(&mut sess, &store, &lap, x)
        });
    }
}

fn bench_lstm_step(runner: &mut Runner) {
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, &mut rng(5), 20, 32, "lstm");
    let x0 = uniform_matrix(&mut rng(6), 16, 20, -1.0, 1.0);
    runner.bench("lstm_step_batch16", || {
        let mut sess = Session::new(&store);
        let state = cell.zero_state(&mut sess, 16);
        let x = sess.constant(x0.clone());
        cell.step(&mut sess, &store, x, &state)
    });
}

fn bench_dtw(runner: &mut Runner) {
    for &len in &[24usize, 288] {
        let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.11 + 0.4).sin()).collect();
        runner.bench(&format!("dtw/{len}"), || dtw(&a, &b));
    }
}

fn bench_adjacency_build(runner: &mut Runner) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 8,
        num_days: 3,
        ..Default::default()
    });
    let profiles = DayProfiles::from_dataset(&ds);
    runner.bench("temporal_adjacency_8nodes", || {
        profiles.interval_adjacency(Interval::new(84, 132), 0.1)
    });
}

fn bench_backward_sweep(runner: &mut Runner) {
    // A deep chain stressing the reverse sweep.
    let w0 = uniform_matrix(&mut rng(7), 16, 16, -0.3, 0.3);
    runner.bench("tape_backward_chain100", || {
        let mut tape = Tape::new();
        let w = tape.parameter(w0.clone());
        let mut x = tape.constant(Matrix::ones(4, 16));
        for _ in 0..100 {
            let h = tape.matmul(x, w);
            x = tape.tanh(h);
        }
        let loss = tape.mean(x);
        tape.backward(loss);
        tape.grad(w)
    });
}

fn bench_imputers(runner: &mut Runner) {
    use rihgcn_baselines::{knn_impute, last_observed_fill, matrix_factorization_impute};
    use st_data::drop_observed;
    let ds = generate_pems(&PemsConfig {
        num_nodes: 8,
        num_days: 2,
        ..Default::default()
    });
    let mask = drop_observed(
        &st_tensor::Tensor3::ones(8, 4, ds.num_times()),
        0.4,
        &mut rng(9),
    );
    runner.bench("imputers/last_observed", || {
        last_observed_fill(&ds.values, &mask)
    });
    runner.bench("imputers/knn_k3", || knn_impute(&ds.values, &mask, 3));
    runner.bench("imputers/mf_rank4_iters5", || {
        matrix_factorization_impute(&ds.values, &mask, 4, 5, 1)
    });
}

fn bench_rihgcn_step(runner: &mut Runner) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 8,
        num_days: 3,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.4, &mut rng(8));
    let cfg = RihgcnConfig {
        gcn_dim: 8,
        lstm_dim: 16,
        num_temporal_graphs: 4,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&ds, cfg);
    let sample = WindowSampler::paper_default().window_at(&ds, 0);
    runner.bench("rihgcn_forward_backward", || {
        model.accumulate_gradients(&sample)
    });
    let model = model;
    runner.bench("rihgcn_forward_only", || model.forward(&sample));
}

fn bench_memory(runner: &mut Runner) {
    // Allocator traffic of a training step: the first step misses the empty
    // buffer pool on every tape buffer (the historical tape-per-step
    // baseline), steady-state steps reuse the recycled session.
    let ds = generate_pems(&PemsConfig {
        num_nodes: 8,
        num_days: 3,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.4, &mut rng(8));
    let cfg = RihgcnConfig {
        gcn_dim: 8,
        lstm_dim: 16,
        num_temporal_graphs: 4,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&ds, cfg);
    let sample = WindowSampler::paper_default().window_at(&ds, 0);

    let fresh = AllocSnapshot::take();
    let _ = model.accumulate_gradients(&sample);
    println!(
        "{:<40} {} allocations, {} bytes",
        "mem/step_fresh_pool",
        fresh.allocations_since(),
        fresh.bytes_since()
    );
    let steady = AllocSnapshot::take();
    let _ = model.accumulate_gradients(&sample);
    println!(
        "{:<40} {} allocations, {} bytes",
        "mem/step_recycled",
        steady.allocations_since(),
        steady.bytes_since()
    );
    runner.bench("mem/recycled_step_time", || {
        model.accumulate_gradients(&sample)
    });
}

fn bench_parallel_speedup(runner: &mut Runner) {
    // Serial-vs-parallel comparisons over the two workloads the tentpole
    // parallelised: large dense matmul and the O(N²) DTW pairwise distance
    // matrix. Thread counts are pinned per measurement; results are
    // bit-identical either way (the st-par determinism contract), so only
    // wall-clock should move. The explicit speedup lines feed BENCH logs.
    let n = 256;
    let a = uniform_matrix(&mut rng(10), n, n, -1.0, 1.0);
    let b = uniform_matrix(&mut rng(11), n, n, -1.0, 1.0);
    st_par::set_num_threads(1);
    let mm_serial = runner.bench(&format!("parallel/matmul{n}/1thread"), || a.matmul(&b));
    st_par::set_num_threads(4);
    let mm_par = runner.bench(&format!("parallel/matmul{n}/4threads"), || a.matmul(&b));

    let series: Vec<Vec<Vec<f64>>> = (0..24)
        .map(|node| {
            vec![(0..288)
                .map(|t| ((t as f64) * 0.05 + node as f64 * 0.31).sin() * (1.0 + node as f64 * 0.1))
                .collect()]
        })
        .collect();
    st_par::set_num_threads(1);
    let dtw_serial = runner.bench("parallel/dtw_pairwise24/1thread", || {
        st_graph::pairwise_distances(&series, st_graph::SeriesDistance::Dtw)
    });
    st_par::set_num_threads(4);
    let dtw_par = runner.bench("parallel/dtw_pairwise24/4threads", || {
        st_graph::pairwise_distances(&series, st_graph::SeriesDistance::Dtw)
    });
    st_par::set_num_threads(0);

    eprintln!(
        "speedup at 4 threads: matmul{n} {:.2}x, dtw_pairwise24 {:.2}x",
        mm_serial.median.as_secs_f64() / mm_par.median.as_secs_f64(),
        dtw_serial.median.as_secs_f64() / dtw_par.median.as_secs_f64()
    );
}

fn main() {
    let mut runner = Runner::from_env();
    bench_matmul(&mut runner);
    bench_gcn_forward(&mut runner);
    bench_lstm_step(&mut runner);
    bench_dtw(&mut runner);
    bench_adjacency_build(&mut runner);
    bench_backward_sweep(&mut runner);
    bench_imputers(&mut runner);
    bench_rihgcn_step(&mut runner);
    bench_memory(&mut runner);
    bench_parallel_speedup(&mut runner);
    eprintln!("{} benchmarks completed", runner.results().len());
}
