//! Figure 4: prediction and imputation performance vs the number of
//! temporal graphs M (PeMS, 40% missing, 12-step horizon). The paper finds
//! a U-shape with the optimum at an intermediate M (8 in their setting).

use rihgcn_bench::{pems_at, rihgcn_imputation, rihgcn_prediction, train_rihgcn, Bench, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let graph_counts: &[usize] = if scale.name == "quick" {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    println!(
        "Figure 4 — PeMS, 40% missing, horizon 12, scale `{}`",
        scale.name
    );

    let ds = pems_at(&scale, 0.4, 600);
    let bench = Bench::prepare(&ds, &scale, 12, 12);

    println!(
        "\n{:>3} | {:>9} {:>9} | {:>9} {:>9}",
        "M", "pred MAE", "pred RMSE", "imp MAE", "imp RMSE"
    );
    println!("{}", "-".repeat(50));
    for &m in graph_counts {
        let t0 = Instant::now();
        let model = train_rihgcn(&bench, m, 1.0);
        let pred = rihgcn_prediction(&model, &bench);
        let imp = rihgcn_imputation(&model, &bench);
        println!(
            "{m:>3} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4}",
            pred.mae, pred.rmse, imp.mae, imp.rmse
        );
        eprintln!("M={m} done in {:?}", t0.elapsed());
    }
}
