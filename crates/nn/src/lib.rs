//! Neural-network building blocks for the RIHGCN reproduction.
//!
//! Built directly on the `st-autodiff` tape:
//!
//! * [`ParamStore`] / [`Session`] — parameter ownership and per-pass tape
//!   binding;
//! * [`Linear`], [`LstmCell`], [`ChebGcn`], [`HgcnBlock`] — the layers the
//!   paper's model and every deep baseline are assembled from;
//! * [`Adam`] with [`ParamStore::clip_grad_norm`] — the paper's optimiser
//!   (lr 0.001, gradient clipping);
//! * [`ErrorAccum`] / [`Metrics`] — MAE/RMSE scoring with masks;
//! * [`EarlyStopping`] — patience-6 early stopping.
//!
//! # Examples
//!
//! ```
//! use st_nn::{Adam, Linear, ParamStore, Session};
//! use st_tensor::{rng, Matrix};
//!
//! // One gradient step on a tiny regression.
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, &mut rng(0), 1, 1, "reg");
//! let mut adam = Adam::new(&store, 0.01);
//!
//! let mut sess = Session::new(&store);
//! let x = sess.constant(Matrix::from_rows(&[&[1.0], &[2.0]]));
//! let y = layer.forward(&mut sess, &store, x);
//! let target = sess.constant(Matrix::from_rows(&[&[3.0], &[5.0]]));
//! let loss = sess.tape.mse(y, target);
//! sess.backward(loss);
//! sess.write_grads(&mut store);
//! adam.step(&mut store);
//! ```

#![warn(missing_docs)]

mod adam;
mod gcn;
mod gru;
mod hgcn;
mod linear;
mod lstm;
mod metrics;
mod params;
mod schedule;
mod stopping;

pub use adam::Adam;
pub use gcn::{Activation, ChebBasis, ChebGcn};
pub use gru::GruCell;
pub use hgcn::HgcnBlock;
pub use linear::Linear;
pub use lstm::{LstmCell, LstmState};
pub use metrics::{mae, mape, rmse, ErrorAccum, Metrics};
pub use params::{ParamId, ParamStore, Session};
pub use schedule::LrSchedule;
pub use stopping::{EarlyStopping, StopDecision};
