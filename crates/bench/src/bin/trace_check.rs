//! Validates a Chrome trace_event JSON file (as written by `--trace` or
//! served by `GET /debug/trace`).
//!
//! ```text
//! cargo run --release -p rihgcn-bench --bin trace_check -- FILE [--require PREFIX]...
//! ```
//!
//! Checks that the document is well-formed JSON in Chrome trace_event
//! format, contains at least one complete ("X") span event, and that the
//! events' timestamps are monotonically non-decreasing in file order (the
//! order `st_obs` emits). Each `--require PREFIX` additionally demands at
//! least one span whose name starts with that prefix — CI uses this to
//! prove a traced training run produced spans from every instrumented
//! layer. Exits non-zero (with a reason on stderr) on any violation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check FILE [--require PREFIX]...");
        return ExitCode::from(2);
    };
    let mut required = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require" => match args.next() {
                Some(prefix) => required.push(prefix),
                None => {
                    eprintln!("--require needs a prefix");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match st_obs::trace::validate_chrome_trace(&text) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("FAIL: {path} is not a valid Chrome trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if stats.span_events == 0 {
        eprintln!("FAIL: {path} is valid but contains no span events");
        return ExitCode::FAILURE;
    }
    let mut missing = false;
    for prefix in &required {
        if !stats.has_prefix(prefix) {
            eprintln!(
                "FAIL: {path} has no span named {prefix}* (names: {:?})",
                stats.names
            );
            missing = true;
        }
    }
    if missing {
        return ExitCode::FAILURE;
    }
    println!(
        "ok: {path} — {} events, {} spans, {} distinct names",
        stats.events,
        stats.span_events,
        stats.names.len()
    );
    ExitCode::SUCCESS
}
