//! End-to-end loopback test: a real server on an ephemeral port, driven
//! through the bundled [`HttpClient`], checked **bit-for-bit** against an
//! identical in-process [`OnlineForecaster`].

use rihgcn_core::{prepare_split, OnlineForecaster, RihgcnConfig, RihgcnModel};
use st_data::{generate_pems, PemsConfig, TrafficDataset};
use st_serve::{wire, HttpClient, ServeConfig, Server};
use st_tensor::rng;
use std::time::Duration;

const HISTORY: usize = 4;

fn forecaster() -> (OnlineForecaster, TrafficDataset) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut rng(3));
    let (norm, z) = prepare_split(&ds.split_chronological());
    let cfg = RihgcnConfig {
        gcn_dim: 3,
        lstm_dim: 4,
        cheb_k: 2,
        num_temporal_graphs: 2,
        history: HISTORY,
        horizon: 2,
        ..Default::default()
    };
    let model = RihgcnModel::from_dataset(&norm.train, cfg);
    (OnlineForecaster::new(model, z), ds)
}

fn start_server() -> (Server, HttpClient, TrafficDataset) {
    let (online, ds) = forecaster();
    let server = Server::start(
        online,
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let client = HttpClient::connect(&server.local_addr().to_string(), Duration::from_secs(10))
        .expect("connect to server");
    (server, client, ds)
}

#[test]
fn http_forecasts_match_in_process_bit_for_bit() {
    let (server, mut client, ds) = start_server();
    // A second forecaster built the same deterministic way is the oracle.
    let (mut oracle, _) = forecaster();

    // Health before any observation.
    let health = client.get_ok("/healthz").expect("healthz");
    assert!(health.contains("nodes 4"), "health: {health}");
    assert!(
        health.contains("buffered 0 ready false"),
        "health: {health}"
    );

    // Forecast before the window fills → 409 Conflict.
    let resp = client.request("GET", "/forecast", "").expect("request");
    assert_eq!(resp.status, 409, "body: {}", resp.body);
    assert!(resp.body.contains("window not full"), "body: {}", resp.body);

    // Fill the window through HTTP and the oracle identically.
    for t in 0..HISTORY {
        let values = ds.values.time_slice(t);
        let mask = ds.mask.time_slice(t);
        let body = wire::format_observation(t, &values, &mask);
        let ack = client.post_ok("/observe", &body).expect("observe");
        assert!(ack.contains(&format!("version {}", t + 1)), "ack: {ack}");
        oracle.push(values, mask, t);
    }

    // Forecast and imputed window must round-trip bit-identically.
    let forecast_text = client.get_ok("/forecast").expect("forecast");
    let (version, steps) = wire::parse_steps(&forecast_text).expect("parse forecast");
    assert_eq!(version, HISTORY as u64);
    assert_eq!(steps, oracle.forecast().expect("oracle forecast"));

    let imputed_text = client.get_ok("/imputed").expect("imputed");
    let (_, imputed) = wire::parse_steps(&imputed_text).expect("parse imputed");
    assert_eq!(imputed, oracle.imputed_window().expect("oracle imputed"));

    // Repeats at the same window version are coalesced onto the cache:
    // still bit-identical, no extra tape runs.
    let runs_before = server.tape_runs();
    let again = client.get_ok("/forecast").expect("forecast again");
    assert_eq!(again, forecast_text, "cache must serve identical bytes");
    let again = client.get_ok("/forecast").expect("forecast again");
    let (_, steps_again) = wire::parse_steps(&again).expect("parse");
    assert_eq!(steps_again, steps);
    assert_eq!(
        server.tape_runs(),
        runs_before,
        "cached repeats run no tape"
    );
    assert!(server.metrics().total_cache_hits() >= 2);

    // A new observation advances the version and invalidates the cache.
    let body = wire::format_observation(
        HISTORY,
        &ds.values.time_slice(HISTORY),
        &ds.mask.time_slice(HISTORY),
    );
    client.post_ok("/observe", &body).expect("observe");
    oracle.push(
        ds.values.time_slice(HISTORY),
        ds.mask.time_slice(HISTORY),
        HISTORY,
    );
    let text = client.get_ok("/forecast").expect("forecast after advance");
    let (version, steps) = wire::parse_steps(&text).expect("parse");
    assert_eq!(version, HISTORY as u64 + 1);
    assert_eq!(steps, oracle.forecast().expect("oracle forecast"));

    // Error paths: malformed observation, unknown route, wrong method
    // (with the Allow header), unknown tenant (404 + JSON body).
    let resp = client
        .request("POST", "/observe", "slot 0\nvalues 1 2\nmask 1 1\n")
        .expect("request");
    assert_eq!(resp.status, 400, "body: {}", resp.body);
    let resp = client.request("GET", "/nope", "").expect("request");
    assert_eq!(resp.status, 404);
    let resp = client.request("DELETE", "/forecast", "").expect("request");
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"), "Allow on 405");
    let resp = client
        .request("GET", "/admin/shutdown", "")
        .expect("request");
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"), "Allow on 405");
    let resp = client
        .request("GET", "/forecast?tenant=ghost", "")
        .expect("request");
    assert_eq!(resp.status, 404, "body: {}", resp.body);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    assert_eq!(
        resp.body,
        "{\"error\":\"unknown tenant\",\"tenant\":\"ghost\"}\n"
    );

    // Metrics reflect the traffic, including the per-tenant families
    // (the ghost-tenant 404 above counts as a forecast-route request).
    let metrics = client.get_ok("/metrics").expect("metrics");
    assert!(
        metrics.contains("st_serve_requests_total{route=\"forecast\"} 6"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("st_serve_cache_hits_total 2"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("st_serve_errors_total"),
        "metrics: {metrics}"
    );
    assert!(metrics.contains("st_serve_models 1"), "metrics: {metrics}");
    assert!(
        metrics.contains("st_serve_tenant_cache_hits_total{tenant=\"default\"} 2"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("st_serve_tenant_model_version{tenant=\"default\"} 1"),
        "metrics: {metrics}"
    );

    // Graceful shutdown over HTTP; the server drains and joins cleanly,
    // returning the default tenant's forecaster with its window state.
    let bye = client.post_ok("/admin/shutdown", "").expect("shutdown");
    assert!(bye.contains("shutting down"), "bye: {bye}");
    let mut drained = server.join();
    assert_eq!(drained.len(), 1, "one resident model");
    let (tenant, online) = drained.remove(0);
    assert_eq!(tenant, st_serve::DEFAULT_TENANT);
    assert_eq!(online.len(), HISTORY, "rolling window stays capped");
    assert_eq!(online.window_version(), HISTORY as u64 + 1);
}

/// Scrapes `/metrics` and `/debug/trace` over real HTTP after a load burst
/// and checks the text surfaces are internally consistent: every sample
/// line parses, histogram buckets are cumulative (monotone), the request
/// total equals the histogram count, and the trace is valid Chrome JSON
/// with spans from the serve, core and tensor layers.
#[test]
fn metrics_and_trace_scrape_over_http() {
    st_obs::set_enabled(true);
    let (server, mut client, ds) = start_server();

    // Load burst: fill the window, then mixed traffic on every route.
    for t in 0..HISTORY {
        let body = wire::format_observation(t, &ds.values.time_slice(t), &ds.mask.time_slice(t));
        client.post_ok("/observe", &body).expect("observe");
    }
    for _ in 0..3 {
        client.get_ok("/forecast").expect("forecast");
    }
    client.get_ok("/imputed").expect("imputed");
    client.get_ok("/healthz").expect("healthz");
    let resp = client.request("GET", "/nope", "").expect("request");
    assert_eq!(resp.status, 404);

    // The scrape is recorded after its response is rendered, so the text it
    // returns covers exactly the burst above — not this request itself.
    let metrics = client.get_ok("/metrics").expect("metrics");

    let mut samples: Vec<(String, f64)> = Vec::new();
    for line in metrics.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("metric value must be numeric: {line}");
        });
        assert!(value.is_finite() && value >= 0.0, "bad sample: {line}");
        samples.push((name.to_string(), value));
    }

    let get = |name: &str| -> f64 {
        samples
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing metric {name}"))
            .1
    };

    // Histogram buckets are cumulative: monotone non-decreasing in order.
    let buckets: Vec<f64> = samples
        .iter()
        .filter(|(n, _)| n.starts_with("st_serve_latency_bucket"))
        .map(|&(_, v)| v)
        .collect();
    assert_eq!(buckets.len(), 6, "metrics: {metrics}");
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "buckets must be cumulative: {buckets:?}"
    );

    // The +inf bucket, the histogram count and the per-route request total
    // all count the same requests.
    let count = get("st_serve_latency_count");
    assert_eq!(*buckets.last().unwrap(), count);
    let requests: f64 = samples
        .iter()
        .filter(|(n, _)| n.starts_with("st_serve_requests_total"))
        .map(|&(_, v)| v)
        .sum();
    assert_eq!(requests, count, "metrics: {metrics}");
    // 4 observes + 3 forecasts + imputed + healthz + the 404.
    assert_eq!(requests, 10.0, "metrics: {metrics}");

    // Per-route counts mirror the request counters.
    for route in ["observe", "forecast", "imputed", "healthz"] {
        assert_eq!(
            get(&format!(
                "st_serve_route_latency_us_count{{route=\"{route}\"}}"
            )),
            get(&format!("st_serve_requests_total{{route=\"{route}\"}}")),
            "route {route}"
        );
    }

    // Engine-side counters: 2 tape runs (forecast + imputed; repeats hit
    // the version cache), pool stats published after the runs.
    assert_eq!(get("st_serve_tape_runs_total"), 2.0);
    assert_eq!(get("st_serve_cache_hits_total"), 2.0);
    assert_eq!(get("st_serve_queue_depth"), 0.0);
    let pool_acquires = get("st_serve_pool_acquires_total{outcome=\"hit\"}")
        + get("st_serve_pool_acquires_total{outcome=\"miss\"}");
    assert!(pool_acquires > 0.0, "pool stats published after tape runs");

    // The trace endpoint returns valid Chrome trace JSON with spans from
    // the serve, core and tensor layers (the engine thread ran the tape).
    let trace = client.get_ok("/debug/trace").expect("trace");
    let stats = st_obs::trace::validate_chrome_trace(&trace).expect("valid Chrome trace");
    assert!(stats.span_events > 0, "trace has spans");
    for prefix in ["serve.", "core.", "tensor."] {
        assert!(
            stats.has_prefix(prefix),
            "trace must contain {prefix}* spans; names: {:?}",
            stats.names
        );
    }
    let resp = client.request("POST", "/debug/trace", "").expect("request");
    assert_eq!(resp.status, 405);

    server.shutdown_handle().shutdown();
    server.join();
    st_obs::set_enabled(false);
}

/// K threads hammer `/forecast` on one tenant while observations keep
/// advancing the window, so the shard's drain loop groups forecasts of
/// distinct window versions into batched tape runs. Every response must
/// still be bit-identical to a sequential in-process oracle replaying the
/// same observation stream, and the scraped `st_serve_batch_size`
/// histogram must have recorded at least one batch of more than one
/// window.
#[test]
fn concurrent_burst_is_bit_identical_and_batches() {
    const THREADS: usize = 6;
    const FORECASTS_PER_THREAD: usize = 30;
    const OBSERVATIONS_PER_ROUND: usize = 60;
    const MAX_ROUNDS: usize = 5;

    let (online, ds) = forecaster();
    let server = Server::start(
        online,
        ServeConfig {
            workers: THREADS + 2,
            // On a loaded single-CPU host the burst can trickle into the
            // shard one request at a time; a linger lets real batches
            // form anyway (results must stay bit-identical either way).
            batch_linger: Duration::from_millis(2),
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut client =
        HttpClient::connect(&addr, Duration::from_secs(10)).expect("connect to server");
    let (mut oracle, _) = forecaster();

    // Fill the window; mirror every push into the oracle.
    for t in 0..HISTORY {
        let body = wire::format_observation(t, &ds.values.time_slice(t), &ds.mask.time_slice(t));
        client.post_ok("/observe", &body).expect("observe");
        oracle.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
    }
    // Oracle forecast per window version, computed sequentially: index v
    // holds the forecast after v observations.
    let mut expected: Vec<Option<Vec<st_tensor::Matrix>>> = vec![None; HISTORY];
    expected.push(Some(oracle.forecast().expect("oracle ready")));

    let mut next_slot = HISTORY;
    let mut batched = false;
    for _round in 0..MAX_ROUNDS {
        // Forecast threads fire continuously on their own connections...
        let readers: Vec<_> = (0..THREADS)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = HttpClient::connect(&addr, Duration::from_secs(10))
                        .expect("connect reader");
                    (0..FORECASTS_PER_THREAD)
                        .map(|_| {
                            let text = client.get_ok("/forecast").expect("burst forecast");
                            wire::parse_steps(&text).expect("parse burst forecast")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        // ...while this thread keeps advancing the window, creating the
        // distinct versions that let the drain form real batches.
        for _ in 0..OBSERVATIONS_PER_ROUND {
            let t = next_slot;
            next_slot += 1;
            let body =
                wire::format_observation(t, &ds.values.time_slice(t), &ds.mask.time_slice(t));
            client.post_ok("/observe", &body).expect("burst observe");
            oracle.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
            expected.push(Some(oracle.forecast().expect("oracle forecast")));
        }

        for reader in readers {
            for (version, steps) in reader.join().expect("reader thread") {
                let want = expected[version as usize]
                    .as_ref()
                    .expect("response version was produced by an observation");
                assert_eq!(
                    &steps, want,
                    "burst response at version {version} must match the sequential oracle"
                );
            }
        }

        let metrics = server.metrics();
        if metrics.total_batched_windows() > metrics.total_batches() {
            batched = true;
            break;
        }
    }
    assert!(
        batched,
        "a saturated single-tenant queue must form at least one batch > 1"
    );

    // The batch-size histogram is visible on the scrape, cumulative, and
    // agrees with the in-process counters.
    let metrics_text = client.get_ok("/metrics").expect("metrics");
    let get = |name: &str| -> f64 {
        metrics_text
            .lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.rsplit_once(' '))
            .unwrap_or_else(|| panic!("missing metric {name}"))
            .1
            .parse()
            .expect("numeric metric")
    };
    let le_one = get("st_serve_batch_size_bucket{le=\"1\"}");
    let count = get("st_serve_batch_size_count");
    let sum = get("st_serve_batch_size_sum");
    assert!(count > 0.0, "batched runs were recorded");
    assert!(
        le_one < count,
        "at least one batch grouped more than one window (le1={le_one}, count={count})"
    );
    assert!(sum > count, "sum counts windows, count counts runs");

    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn shutdown_handle_stops_an_idle_server() {
    let (server, mut client, _) = start_server();
    client.get_ok("/healthz").expect("healthz");
    server.shutdown_handle().shutdown();
    let mut drained = server.join();
    assert_eq!(drained.len(), 1);
    let (tenant, online) = drained.remove(0);
    assert_eq!(tenant, st_serve::DEFAULT_TENANT);
    assert_eq!(online.len(), 0);
}
