//! Edge-case robustness: degenerate graph sizes, extreme missingness and
//! minimal window shapes must not panic or produce non-finite values.

use rihgcn_core::{fit, prepare_split, Forecaster, RihgcnConfig, RihgcnModel, TrainConfig};
use st_data::{generate_pems, PemsConfig, TrafficDataset, WindowSampler};
use st_graph::RoadNetwork;
use st_tensor::{rng, Matrix, Tensor3};

fn cfg(history: usize, horizon: usize) -> RihgcnConfig {
    RihgcnConfig {
        gcn_dim: 3,
        lstm_dim: 4,
        cheb_k: 2,
        num_temporal_graphs: 2,
        history,
        horizon,
        ..Default::default()
    }
}

#[test]
fn single_node_network() {
    let values = Tensor3::from_fn(1, 2, 600, |_, d, t| (t as f64 * 0.01).sin() + d as f64);
    let mask = Tensor3::ones(1, 2, 600);
    let ds = TrafficDataset::new("one", values, mask, RoadNetwork::corridor(1, 1.0), 5);
    let model = RihgcnModel::from_dataset(&ds, cfg(4, 2));
    let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
    let preds = model.predict(&sample);
    assert_eq!(preds[0].shape(), (1, 2));
    assert!(preds.iter().all(Matrix::is_finite));
}

#[test]
fn two_node_network_trains() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 2,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.5, &mut rng(1));
    let (norm, _) = prepare_split(&ds.split_chronological());
    let mut model = RihgcnModel::from_dataset(&norm.train, cfg(4, 2));
    let sampler = WindowSampler::new(4, 2, 48);
    let train = sampler.sample(&norm.train);
    let tc = TrainConfig {
        max_epochs: 2,
        batch_size: 4,
        ..Default::default()
    };
    let report = fit(&mut model, &train, &[], &tc);
    assert!(report.train_losses.iter().all(|l| l.is_finite()));
}

#[test]
fn minimal_history_and_horizon() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 3,
        num_days: 1,
        ..Default::default()
    });
    let model = RihgcnModel::from_dataset(&ds, cfg(1, 1));
    let sample = WindowSampler::new(1, 1, 1).window_at(&ds, 10);
    let preds = model.predict(&sample);
    assert_eq!(preds.len(), 1);
    assert!(preds[0].is_finite());
}

#[test]
fn fully_missing_window_is_finite() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 3,
        num_days: 1,
        ..Default::default()
    });
    let mut ds = ds;
    for t in 0..ds.num_times() {
        for n in 0..3 {
            for f in 0..4 {
                ds.mask[(n, f, t)] = 0.0;
            }
        }
    }
    let model = RihgcnModel::from_dataset(&ds, cfg(4, 2));
    let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
    let preds = model.predict(&sample);
    assert!(preds.iter().all(Matrix::is_finite));
    // Loss must also be finite (imputation terms have nothing observed).
    assert!(model.loss(&sample).is_finite());
}

#[test]
fn chebyshev_order_one_model() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 3,
        num_days: 1,
        ..Default::default()
    });
    let mut c = cfg(3, 2);
    c.cheb_k = 1;
    let model = RihgcnModel::from_dataset(&ds, c);
    let sample = WindowSampler::new(3, 2, 1).window_at(&ds, 0);
    assert!(model.loss(&sample).is_finite());
}

#[test]
fn many_temporal_graphs_cap_at_constraints() {
    // Asking for more graphs than the constrained partition supports must
    // still produce a valid model (partition falls back gracefully).
    let ds = generate_pems(&PemsConfig {
        num_nodes: 3,
        num_days: 2,
        ..Default::default()
    });
    let mut c = cfg(3, 2);
    c.num_temporal_graphs = 12;
    let model = RihgcnModel::from_dataset(&ds, c);
    assert_eq!(model.intervals().len(), 12);
    let sample = WindowSampler::new(3, 2, 1).window_at(&ds, 0);
    assert!(model.loss(&sample).is_finite());
}

#[test]
#[should_panic(expected = "history length mismatch")]
fn wrong_window_shape_is_rejected() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 3,
        num_days: 1,
        ..Default::default()
    });
    let model = RihgcnModel::from_dataset(&ds, cfg(4, 2));
    let sample = WindowSampler::new(6, 2, 1).window_at(&ds, 0);
    let _ = model.predict(&sample);
}
