//! Adam optimiser (Kingma & Ba), the paper's optimiser of choice
//! (learning rate 0.001, gradient clipping).

use crate::ParamStore;
use st_tensor::Matrix;

/// Adam with bias-corrected first/second moment estimates.
///
/// # Examples
///
/// ```
/// use st_nn::{Adam, ParamStore};
/// use st_tensor::Matrix;
///
/// let mut store = ParamStore::new();
/// let p = store.add("p", Matrix::from_rows(&[&[1.0]]));
/// let mut adam = Adam::new(&store, 0.1);
/// store.accumulate_grad(p, &Matrix::from_rows(&[&[2.0]]));
/// adam.step(&mut store);
/// assert!(store.value(p)[(0, 0)] < 1.0); // moved against the gradient
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an optimiser with the standard β₁ = 0.9, β₂ = 0.999,
    /// ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(store: &ParamStore, lr: f64) -> Self {
        Self::with_betas(store, lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an optimiser with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, betas are outside `[0, 1)`, or `eps <= 0`.
    pub fn with_betas(store: &ParamStore, lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas in [0,1)"
        );
        assert!(eps > 0.0, "eps must be positive");
        let m = store
            .ids()
            .map(|id| {
                let (r, c) = store.value(id).shape();
                Matrix::zeros(r, c)
            })
            .collect::<Vec<_>>();
        let v = m.clone();
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m,
            v,
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Changes the learning rate (e.g. for decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update using the gradients accumulated in the store,
    /// then leaves the gradients untouched (call
    /// [`ParamStore::zero_grads`] before the next accumulation).
    ///
    /// # Panics
    ///
    /// Panics if the store gained or lost parameters since construction.
    pub fn step(&mut self, store: &mut ParamStore) {
        assert_eq!(
            store.len(),
            self.m.len(),
            "parameter set changed under the optimiser"
        );
        let params = store.len();
        let _span = st_obs::span!("nn.adam_step", params);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.ids().collect();
        for id in ids {
            // In-place update through the split value/grad borrow: no
            // per-parameter clones in the hot loop.
            let (value, grad) = store.value_grad_mut(id);
            let m = &mut self.m[id.index()];
            let v = &mut self.v[id.index()];
            for i in 0..grad.len() {
                let gi = grad.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gi * gi;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                value.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // Minimise f(x) = (x − 3)² from x = 0.
        let mut store = ParamStore::new();
        let p = store.add("x", Matrix::from_rows(&[&[0.0]]));
        let mut adam = Adam::new(&store, 0.1);
        for _ in 0..300 {
            store.zero_grads();
            let x = store.value(p)[(0, 0)];
            store.accumulate_grad(p, &Matrix::from_rows(&[&[2.0 * (x - 3.0)]]));
            adam.step(&mut store);
        }
        let x = store.value(p)[(0, 0)];
        assert!((x - 3.0).abs() < 1e-2, "converged to {x}");
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, the very first Adam step is ≈ lr for any
        // non-zero gradient.
        let mut store = ParamStore::new();
        let p = store.add("x", Matrix::from_rows(&[&[5.0]]));
        let mut adam = Adam::new(&store, 0.01);
        store.accumulate_grad(p, &Matrix::from_rows(&[&[123.0]]));
        adam.step(&mut store);
        let moved = 5.0 - store.value(p)[(0, 0)];
        assert!((moved - 0.01).abs() < 1e-6, "first step was {moved}");
    }

    #[test]
    fn zero_gradient_means_no_motion() {
        let mut store = ParamStore::new();
        let p = store.add("x", Matrix::from_rows(&[&[1.5]]));
        let mut adam = Adam::new(&store, 0.1);
        adam.step(&mut store);
        assert_eq!(store.value(p)[(0, 0)], 1.5);
    }

    #[test]
    fn handles_multiple_params_independently() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::from_rows(&[&[0.0]]));
        let b = store.add("b", Matrix::from_rows(&[&[0.0]]));
        let mut adam = Adam::new(&store, 0.05);
        for _ in 0..400 {
            store.zero_grads();
            let xa = store.value(a)[(0, 0)];
            let xb = store.value(b)[(0, 0)];
            store.accumulate_grad(a, &Matrix::from_rows(&[&[2.0 * (xa - 1.0)]]));
            store.accumulate_grad(b, &Matrix::from_rows(&[&[2.0 * (xb + 2.0)]]));
            adam.step(&mut store);
        }
        assert!((store.value(a)[(0, 0)] - 1.0).abs() < 1e-2);
        assert!((store.value(b)[(0, 0)] + 2.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "changed under")]
    fn detects_store_mutation() {
        let mut store = ParamStore::new();
        let _ = store.add("a", Matrix::zeros(1, 1));
        let mut adam = Adam::new(&store, 0.1);
        let _ = store.add("b", Matrix::zeros(1, 1));
        adam.step(&mut store);
    }
}
