//! Graph connectivity and neighbourhood utilities.
//!
//! Diagnostics over (weighted) adjacency matrices: connected components,
//! degree statistics and k-hop neighbourhoods. The experiment harness uses
//! them to sanity-check that the ε-sparsified graphs (paper Eq. 8) stay
//! connected enough for information to propagate within `K` Chebyshev hops.

use st_tensor::Matrix;

/// Connected components of a weighted undirected graph (edges are entries
/// `> 0`). Returns one sorted vector of node indices per component, ordered
/// by their smallest member.
///
/// # Panics
///
/// Panics if the adjacency matrix is not square.
pub fn connected_components(adjacency: &Matrix) -> Vec<Vec<usize>> {
    let n = adjacency.rows();
    assert_eq!(adjacency.cols(), n, "adjacency must be square");
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        let mut component = Vec::new();
        seen[start] = true;
        while let Some(u) = stack.pop() {
            component.push(u);
            for v in 0..n {
                if !seen[v] && (adjacency[(u, v)] > 0.0 || adjacency[(v, u)] > 0.0) {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Whether the graph is a single connected component (vacuously true for
/// the empty graph).
pub fn is_connected(adjacency: &Matrix) -> bool {
    adjacency.rows() == 0 || connected_components(adjacency).len() == 1
}

/// Weighted degree (row sum) of every node.
///
/// # Panics
///
/// Panics if the adjacency matrix is not square.
pub fn degrees(adjacency: &Matrix) -> Vec<f64> {
    let n = adjacency.rows();
    assert_eq!(adjacency.cols(), n, "adjacency must be square");
    (0..n).map(|i| adjacency.row(i).iter().sum()).collect()
}

/// All nodes within `k` hops of `start` (excluding `start` itself),
/// sorted.
///
/// # Panics
///
/// Panics if the adjacency matrix is not square or `start` is out of
/// bounds.
pub fn k_hop_neighbourhood(adjacency: &Matrix, start: usize, k: usize) -> Vec<usize> {
    let n = adjacency.rows();
    assert_eq!(adjacency.cols(), n, "adjacency must be square");
    assert!(start < n, "start node out of bounds");
    let mut dist = vec![usize::MAX; n];
    dist[start] = 0;
    let mut frontier = vec![start];
    for hop in 1..=k {
        let mut next = Vec::new();
        for &u in &frontier {
            for v in 0..n {
                if dist[v] == usize::MAX && adjacency[(u, v)] > 0.0 {
                    dist[v] = hop;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    let mut out: Vec<usize> = (0..n).filter(|&v| v != start && dist[v] <= k).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Matrix {
        // {0,1,2} and {3,4,5}, disconnected.
        let mut a = Matrix::zeros(6, 6);
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            a[(i, j)] = 1.0;
            a[(j, i)] = 1.0;
        }
        a
    }

    #[test]
    fn components_found() {
        let comps = connected_components(&two_triangles());
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4, 5]]);
        assert!(!is_connected(&two_triangles()));
    }

    #[test]
    fn path_graph_is_connected() {
        let mut a = Matrix::zeros(4, 4);
        for i in 0..3 {
            a[(i, i + 1)] = 0.5;
            a[(i + 1, i)] = 0.5;
        }
        assert!(is_connected(&a));
        assert_eq!(connected_components(&a).len(), 1);
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let a = Matrix::zeros(3, 3);
        assert_eq!(connected_components(&a).len(), 3);
        assert!(is_connected(&Matrix::zeros(0, 0)));
    }

    #[test]
    fn degrees_weighted() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 0.5], &[2.0, 0.0, 0.0], &[0.5, 0.0, 0.0]]);
        assert_eq!(degrees(&a), vec![2.5, 2.0, 0.5]);
    }

    #[test]
    fn k_hop_expands_with_k() {
        let mut a = Matrix::zeros(5, 5);
        for i in 0..4 {
            a[(i, i + 1)] = 1.0;
            a[(i + 1, i)] = 1.0;
        }
        assert_eq!(k_hop_neighbourhood(&a, 0, 1), vec![1]);
        assert_eq!(k_hop_neighbourhood(&a, 0, 2), vec![1, 2]);
        assert_eq!(k_hop_neighbourhood(&a, 0, 4), vec![1, 2, 3, 4]);
        assert_eq!(k_hop_neighbourhood(&a, 2, 1), vec![1, 3]);
    }

    #[test]
    fn k_hop_stops_at_component_boundary() {
        let a = two_triangles();
        assert_eq!(k_hop_neighbourhood(&a, 0, 10), vec![1, 2]);
    }
}
