//! Mini-batch training loop with early stopping, plus evaluation helpers.

use crate::observe::{EpochStats, NullObserver, StderrPretty, TrainObserver};
use crate::TrainConfig;
use st_data::{DatasetSplit, TrafficDataset, WindowSample, ZScore};
use st_nn::{Adam, EarlyStopping, ErrorAccum, Metrics, ParamStore, StopDecision};
use st_obs::alloc::AllocSnapshot;
use st_tensor::{rng, Matrix};
use std::time::Instant;

/// A trainable sequence-to-sequence traffic forecaster.
///
/// Implemented by [`crate::RihgcnModel`] and by every deep baseline in the
/// `rihgcn-baselines` crate, so they all share one training loop
/// ([`fit`]) and one evaluation path ([`evaluate_prediction`]).
pub trait Forecaster {
    /// The model's parameter store.
    fn params(&self) -> &ParamStore;

    /// Mutable access to the parameter store.
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Forward + backward on one sample, accumulating gradients into the
    /// store; returns the sample's training loss.
    fn accumulate_gradients(&mut self, sample: &WindowSample) -> f64;

    /// Training loss of one sample without touching gradients.
    fn loss(&self, sample: &WindowSample) -> f64;

    /// Horizon predictions for one sample (normalised space), one `N × D`
    /// matrix per step.
    fn predict(&self, sample: &WindowSample) -> Vec<Matrix>;
}

/// A forecaster that also reconstructs the history window (joint
/// imputation models: RIHGCN and the `-I` baselines).
pub trait Imputer: Forecaster {
    /// Imputation estimates `X̂_t` per history step (normalised space).
    fn impute(&self, sample: &WindowSample) -> Vec<Matrix>;
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_losses: Vec<f64>,
    /// Mean validation loss per epoch.
    pub val_losses: Vec<f64>,
    /// Epoch whose parameters were kept (lowest validation loss).
    pub best_epoch: usize,
    /// Best validation loss.
    pub best_val_loss: f64,
}

impl TrainReport {
    /// Number of epochs actually run.
    pub fn epochs(&self) -> usize {
        self.train_losses.len()
    }
}

/// Trains a model with Adam, gradient clipping, per-epoch validation and
/// patience-based early stopping; the parameters with the best validation
/// loss are restored at the end (checkpointing).
///
/// Progress goes to a [`StderrPretty`] observer when `tc.verbose` is set
/// (the classic `epoch N: train … val …` lines), nowhere otherwise; use
/// [`fit_with_observer`] to route it elsewhere.
///
/// # Panics
///
/// Panics if `train` is empty or the configuration is invalid.
pub fn fit<M: Forecaster>(
    model: &mut M,
    train: &[WindowSample],
    val: &[WindowSample],
    tc: &TrainConfig,
) -> TrainReport {
    if tc.verbose {
        fit_with_observer(model, train, val, tc, &mut StderrPretty)
    } else {
        fit_with_observer(model, train, val, tc, &mut NullObserver)
    }
}

/// [`fit`] reporting every epoch to `observer` (see
/// [`TrainObserver`]); `tc.verbose` is ignored — the observer decides what
/// to surface.
///
/// # Panics
///
/// Panics if `train` is empty or the configuration is invalid.
pub fn fit_with_observer<M: Forecaster>(
    model: &mut M,
    train: &[WindowSample],
    val: &[WindowSample],
    tc: &TrainConfig,
    observer: &mut dyn TrainObserver,
) -> TrainReport {
    tc.validate();
    assert!(!train.is_empty(), "no training samples");
    if tc.threads > 0 {
        // Purely a performance knob: results are bit-identical for any
        // thread count (tests/thread_determinism.rs holds us to that).
        st_par::set_num_threads(tc.threads);
    }

    let mut adam = Adam::new(model.params(), tc.learning_rate);
    let mut stopper = EarlyStopping::new(tc.patience);
    let mut shuffle_rng = rng(tc.seed);
    let mut order: Vec<usize> = (0..train.len()).collect();

    let mut best_params: Option<ParamStore> = None;
    let mut train_losses = Vec::new();
    let mut val_losses = Vec::new();

    for epoch in 0..tc.max_epochs {
        let _span = st_obs::span!("core.epoch", epoch);
        let epoch_start = Instant::now();
        let allocs_before = AllocSnapshot::take();
        let lr = tc.lr_schedule.at(tc.learning_rate, epoch);
        adam.set_learning_rate(lr);
        shuffle_rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        let mut batch_count = 0usize;
        model.params_mut().zero_grads();
        for (i, &idx) in order.iter().enumerate() {
            // Implementations recycle their tape across calls (see
            // `RihgcnModel::accumulate_gradients`), so this inner loop runs
            // allocation-free at steady state.
            epoch_loss += model.accumulate_gradients(&train[idx]);
            batch_count += 1;
            let end_of_batch = batch_count == tc.batch_size || i + 1 == order.len();
            if end_of_batch {
                // Average the accumulated gradients over the batch.
                model.params_mut().scale_grads(1.0 / batch_count as f64);
                model.params_mut().clip_grad_norm(tc.clip_norm);
                adam.step(model.params_mut());
                model.params_mut().zero_grads();
                batch_count = 0;
            }
        }
        let train_loss = epoch_loss / train.len() as f64;
        train_losses.push(train_loss);

        let val_loss = if val.is_empty() {
            train_loss
        } else {
            val.iter().map(|s| model.loss(s)).sum::<f64>() / val.len() as f64
        };
        val_losses.push(val_loss);

        let decision = stopper.update(val_loss);
        if decision == StopDecision::Improved {
            best_params = Some(model.params().clone());
        }
        observer.on_epoch(&EpochStats {
            epoch,
            train_loss,
            val_loss,
            wall_ms: epoch_start.elapsed().as_secs_f64() * 1e3,
            learning_rate: lr,
            allocations: allocs_before.allocations_since(),
            alloc_bytes: allocs_before.bytes_since(),
            improved: decision == StopDecision::Improved,
        });
        if decision == StopDecision::Stop {
            break;
        }
    }

    if let Some(best) = best_params {
        *model.params_mut() = best;
    }
    let report = TrainReport {
        train_losses,
        val_losses,
        best_epoch: stopper.best_epoch(),
        best_val_loss: stopper.best(),
    };
    observer.on_complete(&report);
    report
}

/// Normalises a dataset split with Z-score statistics fitted on the
/// *training* portion's observed entries (the only defensible choice under
/// missing data), returning the normalised split and the transform.
pub fn prepare_split(split: &DatasetSplit) -> (DatasetSplit, ZScore) {
    let z = ZScore::fit(&split.train.values, &split.train.mask);
    let norm = |ds: &TrafficDataset| TrafficDataset {
        name: ds.name.clone(),
        values: z.apply(&ds.values),
        mask: ds.mask.clone(),
        network: ds.network.clone(),
        interval_minutes: ds.interval_minutes,
    };
    (
        DatasetSplit {
            train: norm(&split.train),
            val: norm(&split.val),
            test: norm(&split.test),
        },
        z,
    )
}

/// Scores horizon predictions against ground-truth targets in the original
/// data units, using each target's observation mask (for synthetic data the
/// targets are fully observed).
pub fn evaluate_prediction<M: Forecaster>(
    model: &M,
    samples: &[WindowSample],
    z: &ZScore,
) -> Metrics {
    let mut acc = ErrorAccum::new();
    for sample in samples {
        let predictions = model.predict(sample);
        for (h, pred) in predictions.iter().enumerate() {
            let pred_raw = z.invert_matrix(pred);
            let target_raw = z.invert_matrix(&sample.targets[h]);
            acc.update(&pred_raw, &target_raw, Some(&sample.target_masks[h]));
        }
    }
    acc.summary()
}

/// Scores the recurrent imputation against ground truth on *hidden* entries
/// of the history window, in the original data units.
///
/// Synthetic datasets carry complete ground truth, so every hidden entry is
/// scoreable — this mirrors the paper's protocol of randomly removing
/// observed entries and scoring their reconstruction.
pub fn evaluate_imputation<M: Imputer>(model: &M, samples: &[WindowSample], z: &ZScore) -> Metrics {
    let mut acc = ErrorAccum::new();
    for sample in samples {
        let estimates = model.impute(sample);
        for (t, est) in estimates.iter().enumerate() {
            let est_raw = z.invert_matrix(est);
            let truth_raw = z.invert_matrix(&sample.truths[t]);
            let hidden = sample.masks[t].map(|m| 1.0 - m);
            acc.update(&est_raw, &truth_raw, Some(&hidden));
        }
    }
    acc.summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RihgcnConfig, RihgcnModel};
    use st_data::{generate_pems, PemsConfig, WindowSampler};

    fn tiny_training_setup() -> (RihgcnModel, Vec<WindowSample>, Vec<WindowSample>, ZScore) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.3, &mut rng(1));
        let split = ds.split_chronological();
        let (norm, z) = prepare_split(&split);
        let cfg = RihgcnConfig {
            gcn_dim: 3,
            lstm_dim: 4,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        let model = RihgcnModel::from_dataset(&norm.train, cfg);
        let sampler = WindowSampler::new(4, 2, 24);
        let train: Vec<_> = sampler.sample(&norm.train).into_iter().take(8).collect();
        let val: Vec<_> = sampler.sample(&norm.val).into_iter().take(3).collect();
        (model, train, val, z)
    }

    #[test]
    fn fit_decreases_training_loss() {
        let (mut model, train, val, _) = tiny_training_setup();
        let tc = TrainConfig {
            max_epochs: 6,
            batch_size: 4,
            learning_rate: 3e-3,
            ..Default::default()
        };
        let report = fit(&mut model, &train, &val, &tc);
        assert!(report.epochs() >= 1);
        let first = report.train_losses[0];
        let last = *report.train_losses.last().unwrap();
        assert!(last < first, "training loss should fall: {first} → {last}");
        assert!(report.best_val_loss.is_finite());
    }

    #[test]
    fn fit_restores_best_checkpoint() {
        let (mut model, train, val, _) = tiny_training_setup();
        let tc = TrainConfig {
            max_epochs: 4,
            batch_size: 4,
            ..Default::default()
        };
        let report = fit(&mut model, &train, &val, &tc);
        // After restoring, re-computed validation loss equals the best.
        let val_loss: f64 = val.iter().map(|s| model.loss(s)).sum::<f64>() / val.len() as f64;
        assert!(
            (val_loss - report.best_val_loss).abs() < 1e-9,
            "restored params must reproduce best val loss"
        );
    }

    #[test]
    fn evaluation_metrics_are_finite_and_positive() {
        let (mut model, train, val, z) = tiny_training_setup();
        let tc = TrainConfig {
            max_epochs: 2,
            batch_size: 4,
            ..Default::default()
        };
        let _ = fit(&mut model, &train, &val, &tc);
        let pred = evaluate_prediction(&model, &val, &z);
        assert!(pred.mae.is_finite() && pred.mae > 0.0);
        assert!(pred.rmse >= pred.mae);
        let imp = evaluate_imputation(&model, &val, &z);
        assert!(imp.mae.is_finite() && imp.mae > 0.0);
    }

    #[test]
    fn prepare_split_normalises_with_train_stats() {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 3,
            num_days: 2,
            ..Default::default()
        });
        let split = ds.split_chronological();
        let (norm, z) = prepare_split(&split);
        assert_eq!(z.num_features(), 4);
        // Training portion is ~standardised.
        let m = norm.train.values.mean();
        assert!(m.abs() < 0.2, "normalised train mean {m}");
        // Round trip restores raw values.
        let back = z.invert(&norm.test.values);
        let diff = back
            .zip_map(&split.test.values, |a, b| (a - b).abs())
            .mean();
        assert!(diff < 1e-9);
    }

    #[test]
    fn lr_schedule_changes_the_trajectory() {
        let (_, train, val, _) = tiny_training_setup();
        let run = |schedule: st_nn::LrSchedule| {
            let (mut model, ..) = tiny_training_setup();
            let tc = TrainConfig {
                max_epochs: 4,
                batch_size: 4,
                learning_rate: 3e-3,
                lr_schedule: schedule,
                ..Default::default()
            };
            fit(&mut model, &train, &val, &tc).train_losses
        };
        let constant = run(st_nn::LrSchedule::Constant);
        let decayed = run(st_nn::LrSchedule::StepDecay {
            every: 1,
            factor: 0.1,
        });
        assert_eq!(constant[0], decayed[0], "first epoch shares the base rate");
        assert_ne!(
            constant.last(),
            decayed.last(),
            "aggressive decay must alter later epochs"
        );
    }

    #[test]
    fn observer_sees_every_epoch_and_the_report() {
        struct Recorder {
            epochs: Vec<EpochStats>,
            completed: usize,
        }
        impl TrainObserver for Recorder {
            fn on_epoch(&mut self, stats: &EpochStats) {
                self.epochs.push(stats.clone());
            }
            fn on_complete(&mut self, _report: &TrainReport) {
                self.completed += 1;
            }
        }

        let (mut model, train, val, _) = tiny_training_setup();
        let tc = TrainConfig {
            max_epochs: 3,
            batch_size: 4,
            ..Default::default()
        };
        let mut rec = Recorder {
            epochs: Vec::new(),
            completed: 0,
        };
        let report = fit_with_observer(&mut model, &train, &val, &tc, &mut rec);
        assert_eq!(rec.epochs.len(), report.epochs());
        assert_eq!(rec.completed, 1);
        for (i, e) in rec.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert_eq!(e.train_loss, report.train_losses[i]);
            assert_eq!(e.val_loss, report.val_losses[i]);
            assert!(e.wall_ms > 0.0);
            assert_eq!(e.learning_rate, tc.learning_rate);
        }
        // The first epoch always improves on "no best yet".
        assert!(rec.epochs[0].improved);
    }

    #[test]
    fn observed_training_matches_plain_fit_bitwise() {
        // The observer must not influence training: identical setups with
        // and without one produce identical losses.
        let tc = TrainConfig {
            max_epochs: 3,
            batch_size: 4,
            ..Default::default()
        };
        let (mut plain_model, train, val, _) = tiny_training_setup();
        let plain = fit(&mut plain_model, &train, &val, &tc);
        let (mut observed_model, ..) = tiny_training_setup();
        let mut sink = crate::JsonlObserver::new(Vec::new());
        let observed = fit_with_observer(&mut observed_model, &train, &val, &tc, &mut sink);
        assert_eq!(plain, observed);
        let jsonl = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(jsonl.lines().count(), plain.epochs() + 1);
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn fit_rejects_empty_training_set() {
        let (mut model, _, val, _) = tiny_training_setup();
        let _ = fit(&mut model, &[], &val, &TrainConfig::default());
    }
}
