//! GFLOP/s scoreboard for the blocked matmul microkernels.
//!
//! Times the cache-blocked packed-panel kernels (`matmul`, `matmul_tn`,
//! `matmul_nt`) against the retained naive triple-loop references at
//! model-relevant shapes, reports GFLOP/s per kernel per shape next to a
//! measured roofline estimate, and writes the results to a JSON report
//! (default `BENCH_kernels.json`).
//!
//! ```text
//! cargo run --release -p rihgcn-bench --bin bench_kernels -- [--smoke] [--out FILE]
//! ```
//!
//! Before timing anything the binary proves correctness: every kernel ×
//! shape is checked bit-identical to its naive reference at 1, 2 and 4
//! worker threads (with the parallel threshold forced low so the banded
//! path actually runs). Exits non-zero on any bit divergence, any
//! non-finite metric, or — outside `--smoke` — a blocked-vs-naive matmul
//! speedup below 4× at a model shape.
//!
//! Roofline methodology (see DESIGN.md §10): the compute roof is measured,
//! not assumed — a register-resident multiply-add sweep in the same
//! mul-then-add (no FMA) style as the microkernels; the memory roof comes
//! from a streaming sum over a cache-busting array. Each shape's roofline
//! is `min(compute roof, bandwidth × arithmetic intensity)` with intensity
//! computed from compulsory traffic `8·(m·k + k·n + 2·m·n)` bytes.

use rihgcn_bench::timing::Runner;
use st_tensor::Matrix;
use std::fmt::Write as _;
use std::hint::black_box;

/// Speedup floor enforced at model shapes outside `--smoke`.
const MIN_MODEL_SPEEDUP: f64 = 4.0;

/// One benchmarked problem size: `out (m×n) = lhs (m×k) · rhs (k×n)`.
struct Shape {
    /// Report label; encodes which model matmul the shape stands in for.
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    /// Whether this is a "model size" the ≥4× gate applies to.
    model: bool,
}

/// Shapes taken from the RIHGCN forward/backward pass: the bench_step
/// smoke model (8 nodes), the hidden-dim GCN products, PeMS-scale
/// (207 nodes) Chebyshev propagation and imputation blocks, and the
/// widened `(N, B·F)` right operands the batched forecast path feeds the
/// same kernels (`batch_*`, B ∈ {1, 4, 16}).
const SHAPES: &[Shape] = &[
    Shape {
        name: "step_8x8x16",
        m: 8,
        k: 8,
        n: 16,
        model: false,
    },
    Shape {
        name: "gcn_64x64x64",
        m: 64,
        k: 64,
        n: 64,
        model: true,
    },
    Shape {
        name: "cheb_207x207x64",
        m: 207,
        k: 207,
        n: 64,
        model: true,
    },
    Shape {
        name: "imputation_207x76x64",
        m: 207,
        k: 76,
        n: 64,
        model: true,
    },
    Shape {
        name: "batch1_207x76x64",
        m: 207,
        k: 76,
        n: 64,
        model: false,
    },
    Shape {
        name: "batch4_207x76x256",
        m: 207,
        k: 76,
        n: 256,
        model: false,
    },
    Shape {
        name: "batch16_207x76x1024",
        m: 207,
        k: 76,
        n: 1024,
        model: false,
    },
];

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_kernels.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_kernels [--smoke] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Deterministic operand with entries spanning magnitudes and exact zeros,
/// so bit comparisons are sensitive to reassociation and zero-skipping.
fn operand(seed: u64, r: usize, c: usize) -> Matrix {
    let mut rng = st_tensor::rng(seed);
    Matrix::from_fn(r, c, |i, j| {
        if (i + 2 * j) % 11 == 0 {
            0.0
        } else {
            (rng.gen_f64() - 0.5) * 10f64.powi((rng.next_u64() % 7) as i32 - 3)
        }
    })
}

/// The three product kernels under test.
#[derive(Clone, Copy, PartialEq)]
enum Kernel {
    Nn,
    Tn,
    Nt,
}

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::Nn => "matmul",
            Kernel::Tn => "matmul_tn",
            Kernel::Nt => "matmul_nt",
        }
    }

    /// Operands shaped so the output is `m×n` with reduction depth `k`.
    fn operands(self, s: &Shape) -> (Matrix, Matrix) {
        match self {
            Kernel::Nn => (operand(1, s.m, s.k), operand(2, s.k, s.n)),
            Kernel::Tn => (operand(3, s.k, s.m), operand(4, s.k, s.n)),
            Kernel::Nt => (operand(5, s.m, s.k), operand(6, s.n, s.k)),
        }
    }

    fn blocked(self, a: &Matrix, b: &Matrix) -> Matrix {
        match self {
            Kernel::Nn => a.matmul(b),
            Kernel::Tn => a.matmul_tn(b),
            Kernel::Nt => a.matmul_nt(b),
        }
    }

    fn naive(self, a: &Matrix, b: &Matrix) -> Matrix {
        match self {
            Kernel::Nn => a.matmul_naive(b),
            Kernel::Tn => a.matmul_tn_naive(b),
            Kernel::Nt => a.matmul_nt_naive(b),
        }
    }
}

const KERNELS: [Kernel; 3] = [Kernel::Nn, Kernel::Tn, Kernel::Nt];

/// Checks every kernel × shape bit-identical to naive at 1, 2 and 4 worker
/// threads; exits non-zero on divergence.
fn verify_bit_identity() {
    let saved = st_tensor::parallel_threshold();
    st_tensor::set_parallel_threshold(1); // force the banded parallel path
    for shape in SHAPES {
        for kernel in KERNELS {
            let (a, b) = kernel.operands(shape);
            let reference = kernel.naive(&a, &b);
            for threads in [1usize, 2, 4] {
                st_par::set_num_threads(threads);
                let got = kernel.blocked(&a, &b);
                for (idx, (x, y)) in got.as_slice().iter().zip(reference.as_slice()).enumerate() {
                    if x.to_bits() != y.to_bits() {
                        eprintln!(
                            "FAIL: {} {} diverged from naive at {threads} threads \
                             (element {idx}: {x} vs {y})",
                            kernel.name(),
                            shape.name
                        );
                        std::process::exit(1);
                    }
                }
            }
        }
    }
    st_par::set_num_threads(0);
    st_tensor::set_parallel_threshold(saved);
}

/// Measured compute roof: a register-resident multiply-add sweep in the
/// same scalar-`mul`-then-`add` (no FMA) style the microkernels compile to.
fn measure_peak_gflops(runner: &mut Runner) -> f64 {
    const LANES: usize = 16;
    const INNER: usize = 2048;
    let r = runner.bench("roof/muladd_peak", || {
        let mut acc = [0.0f64; LANES];
        for (i, slot) in acc.iter_mut().enumerate() {
            *slot = 1.0 + i as f64 * 1e-3;
        }
        let c = black_box(0.999_999_9f64);
        let d = black_box(1e-9f64);
        for _ in 0..INNER {
            for slot in acc.iter_mut() {
                *slot = *slot * c + d;
            }
        }
        acc
    });
    let flops = (2 * LANES * INNER) as f64;
    flops / r.median.as_secs_f64() / 1e9
}

/// Measured memory roof: a streaming sum over an array far larger than L2.
fn measure_mem_bw_gbps(runner: &mut Runner) -> f64 {
    const LEN: usize = 1 << 22; // 32 MiB of f64
    let data: Vec<f64> = (0..LEN).map(|i| (i % 97) as f64 * 0.125).collect();
    let r = runner.bench("roof/stream_sum", || {
        let mut partial = [0.0f64; 8];
        for chunk in data.chunks_exact(8) {
            for (p, &x) in partial.iter_mut().zip(chunk) {
                *p += x;
            }
        }
        partial
    });
    (LEN * 8) as f64 / r.median.as_secs_f64() / 1e9
}

struct Row {
    kernel: &'static str,
    shape: &'static str,
    m: usize,
    k: usize,
    n: usize,
    model: bool,
    gflops_blocked: f64,
    gflops_naive: f64,
    speedup: f64,
    roofline_gflops: f64,
    roof_fraction: f64,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();

    println!("verifying bit-identity to the naive references at 1/2/4 threads…");
    verify_bit_identity();
    println!("bit-identity ok\n");

    let (samples, sample_ms) = if args.smoke { (5, 2) } else { (15, 10) };
    let mut runner = Runner::with_settings(samples, sample_ms);

    let peak_gflops = measure_peak_gflops(&mut runner);
    let mem_bw_gbps = measure_mem_bw_gbps(&mut runner);

    let mut rows: Vec<Row> = Vec::new();
    for shape in SHAPES {
        let flops = (2 * shape.m * shape.k * shape.n) as f64;
        // Compulsory traffic: read both operands, read+write the output.
        let bytes = (8 * (shape.m * shape.k + shape.k * shape.n + 2 * shape.m * shape.n)) as f64;
        let intensity = flops / bytes;
        let roofline_gflops = peak_gflops.min(mem_bw_gbps * intensity);
        for kernel in KERNELS {
            let (a, b) = kernel.operands(shape);
            let blocked = runner
                .bench(&format!("{}/{}/blocked", kernel.name(), shape.name), || {
                    kernel.blocked(&a, &b)
                });
            let naive = runner.bench(&format!("{}/{}/naive", kernel.name(), shape.name), || {
                kernel.naive(&a, &b)
            });
            let gflops_blocked = flops / blocked.median.as_secs_f64() / 1e9;
            let gflops_naive = flops / naive.median.as_secs_f64() / 1e9;
            rows.push(Row {
                kernel: kernel.name(),
                shape: shape.name,
                m: shape.m,
                k: shape.k,
                n: shape.n,
                model: shape.model,
                gflops_blocked,
                gflops_naive,
                speedup: gflops_blocked / gflops_naive,
                roofline_gflops,
                roof_fraction: gflops_blocked / roofline_gflops,
            });
        }
    }

    let min_model_speedup = rows
        .iter()
        .filter(|r| r.model && r.kernel == "matmul")
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"rihgcn_kernel_scoreboard\",");
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(json, "  \"threads\": {},", st_par::num_threads());
    let _ = writeln!(json, "  \"peak_gflops\": {},", json_f64(peak_gflops));
    let _ = writeln!(json, "  \"mem_bw_gbps\": {},", json_f64(mem_bw_gbps));
    let _ = writeln!(
        json,
        "  \"min_model_speedup\": {},",
        json_f64(min_model_speedup)
    );
    let _ = writeln!(json, "  \"kernels\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"model\": {}, \"gflops_blocked\": {}, \"gflops_naive\": {}, \"speedup\": {}, \
             \"roofline_gflops\": {}, \"roof_fraction\": {}}}{comma}",
            r.kernel,
            r.shape,
            r.m,
            r.k,
            r.n,
            r.model,
            json_f64(r.gflops_blocked),
            json_f64(r.gflops_naive),
            json_f64(r.speedup),
            json_f64(r.roofline_gflops),
            json_f64(r.roof_fraction),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&args.out, &json).expect("write report");
    print!("\n{json}");

    // Validation: every metric finite, and the model-shape speedup floor.
    let mut all_metrics: Vec<(String, f64)> = vec![
        ("peak_gflops".into(), peak_gflops),
        ("mem_bw_gbps".into(), mem_bw_gbps),
        ("min_model_speedup".into(), min_model_speedup),
    ];
    for r in &rows {
        for (metric, value) in [
            ("gflops_blocked", r.gflops_blocked),
            ("gflops_naive", r.gflops_naive),
            ("speedup", r.speedup),
            ("roofline_gflops", r.roofline_gflops),
            ("roof_fraction", r.roof_fraction),
        ] {
            all_metrics.push((format!("{}/{}/{}", r.kernel, r.shape, metric), value));
        }
    }
    for (name, value) in &all_metrics {
        if !value.is_finite() {
            eprintln!("FAIL: metric {name} is not finite");
            std::process::exit(1);
        }
    }
    if !args.smoke && min_model_speedup < MIN_MODEL_SPEEDUP {
        eprintln!(
            "FAIL: blocked matmul is only {min_model_speedup:.2}x the scalar baseline at \
             model shapes (floor {MIN_MODEL_SPEEDUP:.0}x)"
        );
        std::process::exit(1);
    }
    eprintln!(
        "scoreboard ok: peak {peak_gflops:.2} GFLOP/s, stream {mem_bw_gbps:.2} GB/s, \
         min model matmul speedup {min_model_speedup:.2}x"
    );
}
