//! Descriptive statistics over slices and matrices.
//!
//! Small, allocation-light helpers used by the dataset quality reports,
//! the synthetic-generator tests and the experiment harness: moments,
//! quantiles, Pearson correlation, autocorrelation and correlation
//! matrices.

use crate::Matrix;

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of a sample.
///
/// Returns `None` for an empty slice or a `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Pearson correlation of two equal-length samples; `0.0` when either side
/// is constant.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson needs equal-length samples");
    if a.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    let denom = (va * vb).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        cov / denom
    }
}

/// Autocorrelation of a series at the given lag; `0.0` when undefined.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if lag == 0 {
        return 1.0;
    }
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    pearson(&xs[..xs.len() - lag], &xs[lag..])
}

/// Autocorrelation at the given lag restricted to co-observed pairs: the
/// Pearson correlation of `(xs[t], xs[t + lag])` over every `t` where
/// `mask` is nonzero at both positions; `0.0` when undefined.
///
/// Unlike filling the gaps and calling [`autocorrelation`], this measures
/// the seasonality of the *signal* rather than of the fill, so it stays
/// meaningful on heavily missing (e.g. roving-sensor) series.
///
/// # Panics
///
/// Panics if `xs` and `mask` have different lengths.
pub fn masked_autocorrelation(xs: &[f64], mask: &[f64], lag: usize) -> f64 {
    assert_eq!(xs.len(), mask.len(), "mask must match the series length");
    if lag == 0 {
        return 1.0;
    }
    if xs.len() <= lag + 1 {
        return 0.0;
    }
    let mut head = Vec::new();
    let mut tail = Vec::new();
    for t in 0..xs.len() - lag {
        if mask[t] != 0.0 && mask[t + lag] != 0.0 {
            head.push(xs[t]);
            tail.push(xs[t + lag]);
        }
    }
    pearson(&head, &tail)
}

/// Pearson correlation matrix of a set of equal-length series.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn correlation_matrix(series: &[Vec<f64>]) -> Matrix {
    let n = series.len();
    if n == 0 {
        return Matrix::zeros(0, 0);
    }
    let len = series[0].len();
    for s in series {
        assert_eq!(s.len(), len, "correlation matrix needs equal-length series");
    }
    let mut out = Matrix::identity(n);
    for i in 0..n {
        for j in i + 1..n {
            let r = pearson(&series[i], &series[j]);
            out[(i, j)] = r;
            out[(j, i)] = r;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_known_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_and_short_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 1.5), None);
        // Order-independent.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(median(&shuffled), Some(2.5));
    }

    #[test]
    fn pearson_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &down) + 1.0).abs() < 1e-12);
        let constant = [5.0; 4];
        assert_eq!(pearson(&a, &constant), 0.0);
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        let xs: Vec<f64> = (0..200)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 20.0).sin())
            .collect();
        assert_eq!(autocorrelation(&xs, 0), 1.0);
        assert!(autocorrelation(&xs, 20) > 0.95, "period-20 signal");
        assert!(autocorrelation(&xs, 10) < -0.95, "half-period anti-phase");
    }

    #[test]
    fn masked_autocorrelation_ignores_hidden_entries() {
        let xs: Vec<f64> = (0..200)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 20.0).sin())
            .collect();
        // Corrupt every third entry and hide it; the statistic must still
        // see a clean period-20 signal.
        let mut noisy = xs.clone();
        let mut mask = vec![1.0; xs.len()];
        for i in (0..xs.len()).step_by(3) {
            noisy[i] = 1e6;
            mask[i] = 0.0;
        }
        assert_eq!(masked_autocorrelation(&noisy, &mask, 0), 1.0);
        assert!(masked_autocorrelation(&noisy, &mask, 20) > 0.95);
        // Fully observed it matches the plain statistic.
        let full = vec![1.0; xs.len()];
        let a = masked_autocorrelation(&xs, &full, 20);
        let b = autocorrelation(&xs, 20);
        assert!((a - b).abs() < 1e-12);
        // All-hidden is undefined.
        assert_eq!(masked_autocorrelation(&xs, &vec![0.0; xs.len()], 20), 0.0);
    }

    #[test]
    fn correlation_matrix_properties() {
        let series = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![4.0, 3.0, 2.0, 1.0],
        ];
        let m = correlation_matrix(&series);
        assert_eq!(m.shape(), (3, 3));
        for i in 0..3 {
            assert_eq!(m[(i, i)], 1.0);
        }
        assert!((m[(0, 1)] - 1.0).abs() < 1e-12);
        assert!((m[(0, 2)] + 1.0).abs() < 1e-12);
        assert_eq!(m[(1, 2)], m[(2, 1)]);
        assert_eq!(correlation_matrix(&[]).shape(), (0, 0));
    }
}
