//! Baseline models for the RIHGCN comparison tables.
//!
//! Everything the paper compares against, reimplemented from scratch:
//!
//! * classical forecasters — [`HistoricalAverage`], [`VarModel`];
//! * the deep baseline family [`StBaseline`] covering FC-LSTM, FC-GCN,
//!   GCN-LSTM and their imputation-enhanced `-I` variants (one
//!   implementation, selected by [`BaselineKind`]);
//! * reduced comparators [`AstgcnLite`], [`GraphWaveNetLite`] and
//!   [`DcrnnLite`] / [`StgcnLite`];
//! * classical imputers — [`last_observed_fill`], [`knn_impute`],
//!   [`matrix_factorization_impute`], [`cp_impute`] and [`mice_impute`]
//!   (the paper's Last / KNN / MF / TD rows plus the MICE method its
//!   related work cites).
//!
//! All deep models implement [`rihgcn_core::Forecaster`] and share the
//! core crate's training loop and evaluation path; non-imputing models
//! expect mean-filled inputs (see [`mean_fill_samples`]), mirroring the
//! paper's preprocessing.
//!
//! # Examples
//!
//! ```no_run
//! use rihgcn_baselines::{BaselineConfig, BaselineKind, StBaseline, mean_fill_samples};
//! use rihgcn_core::{fit, prepare_split, evaluate_prediction, TrainConfig};
//! use st_data::{generate_pems, PemsConfig, WindowSampler};
//!
//! let ds = generate_pems(&PemsConfig::default());
//! let (norm, z) = prepare_split(&ds.split_chronological());
//! let sampler = WindowSampler::paper_default();
//! let train = mean_fill_samples(&sampler.sample(&norm.train));
//!
//! let mut model = StBaseline::from_dataset(&norm.train, BaselineKind::GcnLstm, BaselineConfig::default());
//! fit(&mut model, &train, &[], &TrainConfig::default());
//! let test = mean_fill_samples(&sampler.sample(&norm.test));
//! println!("{}", evaluate_prediction(&model, &test, &z));
//! ```

#![warn(missing_docs)]

mod astgcn;
mod dcrnn;
mod graph_wavenet;
mod ha;
mod imputation;
mod stgcn;
mod stmodel;
mod var;

pub use astgcn::{AstgcnConfig, AstgcnLite};
pub use dcrnn::{DcrnnConfig, DcrnnLite};
pub use graph_wavenet::{GraphWaveNetConfig, GraphWaveNetLite};
pub use ha::HistoricalAverage;
pub use imputation::{
    cp_impute, knn_impute, last_observed_fill, matrix_factorization_impute, mice_impute,
};
pub use stgcn::{StgcnConfig, StgcnLite};
pub use stmodel::{mean_fill_sample, mean_fill_samples, BaselineConfig, BaselineKind, StBaseline};
pub use var::VarModel;
