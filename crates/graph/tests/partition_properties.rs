//! Property-based tests for the interval-partitioning solver.

use proptest::prelude::*;
use st_graph::{partition_day, partition_day_circular, Interval, IntervalConfig};
use st_tensor::Matrix;

fn random_profile() -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.0f64..100.0, 24).prop_map(|hourly| {
        // Expand 24 hourly levels to a smooth 288-slot profile.
        Matrix::from_fn(288, 1, |r, _| {
            let h = r / 12;
            let next = (h + 1) % 24;
            let frac = (r % 12) as f64 / 12.0;
            hourly[h] * (1.0 - frac) + hourly[next] * frac
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partition_always_covers_day(profile in random_profile(), m in 2usize..6) {
        let cfg = IntervalConfig::paper_defaults(m);
        let p = partition_day(&[profile], &cfg);
        prop_assert_eq!(p.intervals.len(), m);
        prop_assert_eq!(p.intervals[0].start, 0);
        prop_assert_eq!(p.intervals.last().unwrap().end, 288);
        for w in p.intervals.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn partition_respects_length_bounds(profile in random_profile(), m in 2usize..6) {
        let cfg = IntervalConfig::paper_defaults(m);
        let p = partition_day(&[profile], &cfg);
        for iv in &p.intervals {
            prop_assert!(iv.len() >= cfg.min_len);
            prop_assert!(iv.len() <= cfg.max_len);
            prop_assert_eq!(iv.start % cfg.candidate_step, 0);
        }
    }

    #[test]
    fn score_is_nonnegative_and_finite(profile in random_profile(), m in 2usize..5) {
        let cfg = IntervalConfig::paper_defaults(m);
        let p = partition_day(&[profile], &cfg);
        prop_assert!(p.score.is_finite());
        prop_assert!(p.score >= 0.0);
    }

    #[test]
    fn circular_never_worse_than_fixed(profile in random_profile(), m in 2usize..4) {
        let cfg = IntervalConfig::paper_defaults(m);
        let fixed = partition_day(&[profile.clone()], &cfg);
        let circ = partition_day_circular(&[profile], &cfg);
        // Offset 0 is in the search space, so a constraint-satisfying fixed
        // solution can never beat the circular optimum.
        if fixed.constraints_satisfied {
            prop_assert!(circ.partition.score >= fixed.score - 1e-9);
        }
        prop_assert!(circ.offset < 288);
    }

    #[test]
    fn interval_weights_cover_every_slot(slot in 0usize..288) {
        let intervals = vec![
            Interval::new(0, 120),
            Interval::new(120, 204),
            Interval::new(204, 288),
        ];
        let w = st_graph::interval_weights(slot, &intervals, 288, 6.0);
        prop_assert_eq!(w.len(), 3);
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
