//! Road-network topology: node positions and geographic distances.
//!
//! The geographic graph in the paper is built from road-network distances
//! between sensor locations (plus metadata such as lane counts and speed
//! limits for the Stampede dataset). [`RoadNetwork`] carries exactly that
//! information and produces the pairwise distance matrix consumed by
//! [`crate::gaussian_adjacency`].

use st_tensor::Matrix;

/// Static description of one road segment / sensor location.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadSegment {
    /// Segment identifier (index into the network).
    pub id: usize,
    /// Planar x coordinate in kilometres.
    pub x: f64,
    /// Planar y coordinate in kilometres.
    pub y: f64,
    /// Number of lanes per direction.
    pub lanes: usize,
    /// Speed limit in km/h.
    pub speed_limit: f64,
    /// Number of traffic lights on the segment.
    pub traffic_lights: usize,
}

/// A road network: an ordered collection of [`RoadSegment`]s.
///
/// # Examples
///
/// ```
/// use st_graph::RoadNetwork;
///
/// let net = RoadNetwork::corridor(5, 1.2);
/// assert_eq!(net.len(), 5);
/// let d = net.distance_matrix();
/// assert!(d[(0, 4)] > d[(0, 1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoadNetwork {
    segments: Vec<RoadSegment>,
}

impl RoadNetwork {
    /// Creates a network from explicit segments.
    pub fn new(segments: Vec<RoadSegment>) -> Self {
        Self { segments }
    }

    /// Builds a highway **corridor**: `n` sensors in a line, `spacing_km`
    /// apart, with gentle curvature so the layout is not degenerate.
    ///
    /// Models the PeMS district setting (mainline loop detectors along a
    /// freeway). All segments get 4 lanes and a 105 km/h (~65 mph) limit.
    pub fn corridor(n: usize, spacing_km: f64) -> Self {
        let segments = (0..n)
            .map(|i| {
                let s = i as f64 * spacing_km;
                RoadSegment {
                    id: i,
                    x: s,
                    y: (s * 0.15).sin() * 2.0,
                    lanes: 4,
                    speed_limit: 105.0,
                    traffic_lights: 0,
                }
            })
            .collect();
        Self { segments }
    }

    /// Builds an urban **loop**: `n` segments evenly spaced on a circle of
    /// the given radius, with varying lane counts and traffic lights.
    ///
    /// Models the Stampede shuttle route (12 urban road segments).
    pub fn loop_route(n: usize, radius_km: f64) -> Self {
        let segments = (0..n)
            .map(|i| {
                let angle = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
                RoadSegment {
                    id: i,
                    x: radius_km * angle.cos(),
                    y: radius_km * angle.sin(),
                    lanes: 1 + i % 3,
                    speed_limit: 40.0 + 10.0 * (i % 3) as f64,
                    traffic_lights: 1 + (i * 7) % 4,
                }
            })
            .collect();
        Self { segments }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the network has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The segments, in id order.
    pub fn segments(&self) -> &[RoadSegment] {
        &self.segments
    }

    /// Segment by index, or `None` when out of range.
    pub fn get(&self, id: usize) -> Option<&RoadSegment> {
        self.segments.get(id)
    }

    /// Builds a sub-network keeping only the given segments (re-indexed in
    /// the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, keep: &[usize]) -> Self {
        let segments = keep
            .iter()
            .enumerate()
            .map(|(new_id, &old)| {
                let mut seg = self.segments[old].clone();
                seg.id = new_id;
                seg
            })
            .collect();
        Self { segments }
    }

    /// Pairwise Euclidean distance matrix in kilometres.
    pub fn distance_matrix(&self) -> Matrix {
        let n = self.segments.len();
        Matrix::from_fn(n, n, |i, j| {
            let (a, b) = (&self.segments[i], &self.segments[j]);
            ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt()
        })
    }

    /// Road-distance matrix: Euclidean distance inflated by a detour factor
    /// that grows with the number of traffic lights between the endpoints —
    /// a simple stand-in for true over-the-network driving distance.
    pub fn road_distance_matrix(&self) -> Matrix {
        let n = self.segments.len();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                return 0.0;
            }
            let (a, b) = (&self.segments[i], &self.segments[j]);
            let euclid = ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
            let lights = (a.traffic_lights + b.traffic_lights) as f64;
            euclid * (1.0 + 0.05 * lights)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corridor_layout_monotone_distance() {
        let net = RoadNetwork::corridor(6, 2.0);
        let d = net.distance_matrix();
        assert!(d[(0, 1)] < d[(0, 3)]);
        assert!(d[(0, 3)] < d[(0, 5)]);
        for i in 0..6 {
            assert_eq!(d[(i, i)], 0.0);
        }
    }

    #[test]
    fn distance_matrix_symmetric() {
        let net = RoadNetwork::loop_route(8, 1.5);
        let d = net.distance_matrix();
        for i in 0..8 {
            for j in 0..8 {
                assert!((d[(i, j)] - d[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn loop_route_wraps() {
        let net = RoadNetwork::loop_route(12, 2.0);
        let d = net.distance_matrix();
        // Adjacent around the circle, including the wrap 11–0.
        assert!((d[(11, 0)] - d[(0, 1)]).abs() < 1e-9);
        // Opposite points are the farthest.
        assert!(d[(0, 6)] > d[(0, 3)]);
    }

    #[test]
    fn road_distance_at_least_euclidean() {
        let net = RoadNetwork::loop_route(6, 1.0);
        let euclid = net.distance_matrix();
        let road = net.road_distance_matrix();
        for i in 0..6 {
            for j in 0..6 {
                assert!(road[(i, j)] >= euclid[(i, j)] - 1e-12);
            }
        }
    }

    #[test]
    fn metadata_populated() {
        let net = RoadNetwork::loop_route(12, 2.0);
        assert!(net.segments().iter().all(|s| s.lanes >= 1));
        assert!(net.segments().iter().all(|s| s.traffic_lights >= 1));
        assert!(net.get(11).is_some());
        assert!(net.get(12).is_none());
    }

    #[test]
    fn subset_reindexes() {
        let net = RoadNetwork::loop_route(6, 1.0);
        let sub = net.subset(&[4, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(0).unwrap().x, net.get(4).unwrap().x);
        assert_eq!(sub.get(1).unwrap().lanes, net.get(1).unwrap().lanes);
        assert_eq!(sub.get(0).unwrap().id, 0);
    }

    #[test]
    #[should_panic]
    fn subset_rejects_out_of_range() {
        let _ = RoadNetwork::corridor(3, 1.0).subset(&[5]);
    }

    #[test]
    fn empty_network() {
        let net = RoadNetwork::default();
        assert!(net.is_empty());
        assert_eq!(net.distance_matrix().shape(), (0, 0));
    }
}
