//! ASTGCN-lite: attention-based spatial-temporal GCN (Guo et al., AAAI'19),
//! reimplemented at reduced depth.
//!
//! Keeps the comparator's three architectural ingredients — **spatial
//! attention** modulating graph propagation, **temporal attention** over the
//! window, and **temporal convolution** — in a single-block form sized for
//! CPU training. Like the original, it has no mechanism for missing values:
//! inputs are expected mean-filled, which is exactly the failure mode the
//! paper's Table I comparison exercises.

use rihgcn_core::Forecaster;
use st_autodiff::Var;
use st_data::{TrafficDataset, WindowSample};
use st_graph::{gaussian_adjacency, scaled_laplacian_from_adjacency};
use st_nn::{Activation, ChebGcn, Linear, ParamStore, Session};
use st_tensor::{rng, xavier_matrix, Matrix};

/// Hyper-parameters for [`AstgcnLite`].
#[derive(Debug, Clone, PartialEq)]
pub struct AstgcnConfig {
    /// GCN filter count.
    pub gcn_dim: usize,
    /// Chebyshev order (paper comparator: 3).
    pub cheb_k: usize,
    /// History window length.
    pub history: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Adjacency sparsity threshold.
    pub epsilon: f64,
    /// Parameter seed.
    pub seed: u64,
}

impl Default for AstgcnConfig {
    fn default() -> Self {
        Self {
            gcn_dim: 12,
            cheb_k: 3,
            history: 12,
            horizon: 12,
            epsilon: 0.1,
            seed: 31,
        }
    }
}

/// The reduced ASTGCN comparator.
pub struct AstgcnLite {
    store: ParamStore,
    cfg: AstgcnConfig,
    gcn: ChebGcn,
    laplacian: Matrix,
    spatial_att: st_nn::ParamId,  // F × F bilinear form
    temporal_att: st_nn::ParamId, // F × 1 scoring vector
    temporal_conv: Linear,        // 2F → F
    pred_head: Linear,            // 2F → D·horizon
    num_features: usize,
}

impl std::fmt::Debug for AstgcnLite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AstgcnLite({} params)", self.store.num_scalars())
    }
}

impl AstgcnLite {
    /// Builds the model on a dataset's geographic graph.
    pub fn from_dataset(train: &TrafficDataset, cfg: AstgcnConfig) -> Self {
        let d = train.num_features();
        let mut init = rng(cfg.seed);
        let mut store = ParamStore::new();

        let adj = gaussian_adjacency(&train.network.road_distance_matrix(), None, cfg.epsilon);
        let laplacian = scaled_laplacian_from_adjacency(&adj);
        let gcn = ChebGcn::new(
            &mut store,
            &mut init,
            d,
            cfg.gcn_dim,
            cfg.cheb_k,
            Activation::Relu,
            "astgcn.gcn",
        );
        let f = cfg.gcn_dim;
        let spatial_att = store.add("astgcn.satt", xavier_matrix(&mut init, f, f));
        let temporal_att = store.add("astgcn.tatt", xavier_matrix(&mut init, f, 1));
        let temporal_conv = Linear::new(&mut store, &mut init, 2 * f, f, "astgcn.tconv");
        let pred_head = Linear::new(&mut store, &mut init, 2 * f, d * cfg.horizon, "astgcn.pred");

        Self {
            store,
            cfg,
            gcn,
            laplacian,
            spatial_att,
            temporal_att,
            temporal_conv,
            pred_head,
            num_features: d,
        }
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn run_sample(&self, sess: &mut Session, sample: &WindowSample) -> (Vec<Var>, Var) {
        assert_eq!(
            sample.history_len(),
            self.cfg.history,
            "history length mismatch"
        );
        assert_eq!(
            sample.horizon_len(),
            self.cfg.horizon,
            "horizon length mismatch"
        );
        let t_len = self.cfg.history;

        // Per-step embeddings with spatial attention.
        let watt = sess.var(&self.store, self.spatial_att);
        let mut embeddings = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let x = sess.constant(sample.inputs[t].clone());
            let s = self.gcn.forward(sess, &self.store, &self.laplacian, x);
            // Spatial attention: softmax_rows(S·W·Sᵀ) · S.
            let sw = sess.tape.matmul(s, watt);
            let st = sess.tape.transpose(s);
            let logits = sess.tape.matmul(sw, st);
            let att = sess.tape.softmax_rows(logits);
            let s_att = sess.tape.matmul(att, s);
            embeddings.push(s_att);
        }

        // Temporal attention: per-step scalar scores → softmax over time.
        let va = sess.var(&self.store, self.temporal_att);
        let mut scores: Option<Var> = None;
        for &s in &embeddings {
            let proj = sess.tape.matmul(s, va); // N × 1
            let score = sess.tape.mean(proj); // 1 × 1
            scores = Some(match scores {
                Some(acc) => sess.tape.concat_cols(acc, score),
                None => score,
            });
        }
        let alphas = sess.tape.softmax_rows(scores.expect("non-empty history")); // 1 × T
        let mut context: Option<Var> = None;
        for (t, &s) in embeddings.iter().enumerate() {
            let a_t = sess.tape.slice_cols(alphas, t, t + 1); // 1 × 1
            let weighted = sess.tape.scale_var(s, a_t);
            context = Some(match context {
                Some(acc) => sess.tape.add(acc, weighted),
                None => weighted,
            });
        }
        let context = context.expect("non-empty history");

        // Temporal convolution (kernel 2) along the window; keep the last map.
        let mut conv_last = embeddings[0];
        for t in 1..t_len {
            let pair = sess.tape.concat_cols(embeddings[t - 1], embeddings[t]);
            let c = self.temporal_conv.forward(sess, &self.store, pair);
            conv_last = sess.tape.relu(c);
        }

        let features = sess.tape.concat_cols(context, conv_last);
        let pred_flat = self.pred_head.forward(sess, &self.store, features);

        let d = self.num_features;
        let mut predictions = Vec::with_capacity(self.cfg.horizon);
        let mut terms = Vec::with_capacity(self.cfg.horizon);
        for h in 0..self.cfg.horizon {
            let step = sess.tape.slice_cols(pred_flat, h * d, (h + 1) * d);
            let target = sess.constant(sample.targets[h].clone());
            terms.push(sess.tape.masked_mae(step, target, &sample.target_masks[h]));
            predictions.push(step);
        }
        let mut loss = terms[0];
        for &t in &terms[1..] {
            loss = sess.tape.add(loss, t);
        }
        let loss = sess.tape.scale(loss, 1.0 / self.cfg.horizon as f64);
        (predictions, loss)
    }
}

impl Forecaster for AstgcnLite {
    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn accumulate_gradients(&mut self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, loss) = self.run_sample(&mut sess, sample);
        let value = sess.tape.value(loss)[(0, 0)];
        sess.backward(loss);
        sess.write_grads(&mut self.store);
        value
    }

    fn loss(&self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, loss) = self.run_sample(&mut sess, sample);
        sess.tape.value(loss)[(0, 0)]
    }

    fn predict(&self, sample: &WindowSample) -> Vec<Matrix> {
        let mut sess = Session::new(&self.store);
        let (preds, _) = self.run_sample(&mut sess, sample);
        preds.iter().map(|&v| sess.tape.value(v).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean_fill_samples;
    use rihgcn_core::{fit, prepare_split, TrainConfig};
    use st_data::{generate_pems, PemsConfig, WindowSampler};

    fn tiny() -> (TrafficDataset, AstgcnConfig) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let cfg = AstgcnConfig {
            gcn_dim: 4,
            cheb_k: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        (ds, cfg)
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let (ds, cfg) = tiny();
        let model = AstgcnLite::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let preds = model.predict(&sample);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].shape(), (4, 4));
        assert!(preds.iter().all(Matrix::is_finite));
        assert!(model.num_parameters() > 0);
    }

    #[test]
    fn gradients_reach_attention_parameters() {
        let (ds, cfg) = tiny();
        let mut model = AstgcnLite::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let _ = model.accumulate_gradients(&sample);
        assert!(
            model.store.grad(model.spatial_att).max_abs() > 0.0,
            "spatial attention"
        );
        assert!(
            model.store.grad(model.temporal_att).max_abs() > 0.0,
            "temporal attention"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, cfg) = tiny();
        let split = ds.split_chronological();
        let (norm, _) = prepare_split(&split);
        let sampler = WindowSampler::new(4, 2, 12);
        let train = mean_fill_samples(&sampler.sample(&norm.train)[..6]);
        let mut model = AstgcnLite::from_dataset(&norm.train, cfg);
        let tc = TrainConfig {
            max_epochs: 4,
            batch_size: 3,
            learning_rate: 3e-3,
            ..Default::default()
        };
        let report = fit(&mut model, &train, &[], &tc);
        assert!(*report.train_losses.last().unwrap() < report.train_losses[0]);
    }
}
