//! Multi-tenant model registry: routes tenants onto engine shards and
//! manages the model lifecycle (hot load, explicit unload, LRU eviction).
//!
//! The registry owns `N` shard threads (see [`crate::shard`]) and a
//! directory mapping tenant names to their shard and live counters. Routing
//! is **deterministic**: [`shard_of`] hashes the tenant name with FNV-1a
//! (64-bit) and reduces modulo the shard count, so the same tenant always
//! lands on the same shard for a given `--shards` setting — clients and
//! load generators can compute the placement themselves.
//!
//! ## Load / unload ordering
//!
//! Each shard's channel is FIFO. [`Registry::load`] inserts the directory
//! entry and enqueues the `Load` request **while holding the directory
//! write lock**, so any request that resolves the tenant afterwards is
//! enqueued after the `Load` and necessarily observes the new model; a
//! freshly loaded tenant can never race into a transient 404. The load ack
//! is awaited *outside* the lock — other shards keep serving while a model
//! installs, which is what lets `/admin/load` swap one tenant's checkpoint
//! without stalling in-flight requests elsewhere.
//!
//! ## Eviction
//!
//! Under a `max_models` cap, loading a **new** tenant first evicts the
//! least-recently-used one (a lock-protected scan of per-tenant last-used
//! ticks from a global logical clock). Reloading an existing tenant never
//! evicts — it replaces in place and bumps the tenant's model version.

use crate::metrics::Metrics;
use crate::shard::{spawn_shard, ModelInfo, ShardRequest, TenantCounters, ENGINE_REPLY_TIMEOUT};
use rihgcn_core::OnlineForecaster;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Deterministic tenant → shard routing: FNV-1a (64-bit) of the tenant
/// name, reduced modulo the shard count. Exported so clients and load
/// generators can compute placements without asking the server.
pub fn shard_of(tenant: &str, shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in tenant.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % shards.max(1) as u64) as usize
}

/// Whether a tenant name is servable: non-empty, at most 64 bytes, and
/// restricted to `[A-Za-z0-9._-]` so names embed verbatim in URLs, metric
/// labels and wire bodies without any escaping.
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Registry shape: shard count, model cap and per-shard queue depth.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Engine shards to spawn (min 1).
    pub shards: usize,
    /// Maximum resident models; 0 means unlimited. Loading a new tenant at
    /// the cap evicts the least-recently-used one.
    pub max_models: usize,
    /// Bounded queue depth per shard.
    pub queue_depth: usize,
    /// Maximum distinct windows a shard answers from one batched forecast
    /// run when draining a saturated queue (min 1; 1 disables batching).
    pub max_batch: usize,
    /// How long a drain cycle may hold parked forecasts once its queue
    /// goes empty, waiting for more arrivals to fill a batch. Zero (the
    /// default) flushes immediately at queue-empty; a small linger trades
    /// up to that much added latency for fuller batches when producers
    /// and the drain race (see [`crate::shard`]).
    pub batch_linger: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            max_models: 0,
            queue_depth: 128,
            max_batch: 16,
            batch_linger: Duration::ZERO,
        }
    }
}

/// Registry-side failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No model is loaded for the tenant.
    UnknownTenant(String),
    /// The tenant name fails [`valid_tenant`].
    InvalidTenant(String),
    /// The shard threads are gone (server shutting down).
    ShuttingDown,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownTenant(t) => write!(f, "unknown tenant: {t}"),
            RegistryError::InvalidTenant(t) => write!(
                f,
                "invalid tenant name {t:?} (want 1-64 chars of [A-Za-z0-9._-])"
            ),
            RegistryError::ShuttingDown => write!(f, "registry is shutting down"),
        }
    }
}

/// What [`Registry::load`] did.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Shard the tenant routes to.
    pub shard: usize,
    /// Model version after the load (1 for a first load).
    pub model_version: u64,
    /// Whether an existing model was hot-swapped.
    pub reloaded: bool,
    /// Tenant evicted to make room, if the cap forced one out.
    pub evicted: Option<String>,
}

/// A directory snapshot row for `/admin/tenants` and the metrics render.
#[derive(Debug, Clone)]
pub struct TenantStatus {
    /// Tenant name.
    pub name: String,
    /// Shard the tenant routes to.
    pub shard: usize,
    /// Static model facts.
    pub info: ModelInfo,
    /// Live counters (shared with the shard).
    pub counters: Arc<TenantCounters>,
}

/// A resolved tenant, ready to address shard requests.
#[derive(Clone)]
pub struct ResolvedTenant {
    /// Shared tenant key (same allocation as the directory key).
    pub key: Arc<str>,
    /// Shard the tenant routes to.
    pub shard: usize,
    /// Static model facts.
    pub info: ModelInfo,
}

struct TenantMeta {
    shard: usize,
    info: ModelInfo,
    counters: Arc<TenantCounters>,
    last_used: AtomicU64,
}

struct RegistryInner {
    cfg: RegistryConfig,
    metrics: Arc<Metrics>,
    senders: Vec<SyncSender<ShardRequest>>,
    joins: Mutex<Vec<JoinHandle<Vec<(String, OnlineForecaster)>>>>,
    directory: RwLock<HashMap<Arc<str>, TenantMeta>>,
    clock: AtomicU64,
    model_loads: AtomicU64,
    evictions: AtomicU64,
}

/// Cheaply clonable handle to the shard fleet and tenant directory. The
/// shard threads exit once every `Registry` clone is dropped (their
/// channel senders go with it) and their queues drain.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Spawns the shard threads and an empty directory.
    pub fn new(cfg: RegistryConfig, metrics: Arc<Metrics>) -> Self {
        let shards = cfg.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut joins = Vec::with_capacity(shards);
        for index in 0..shards {
            let (tx, join) = spawn_shard(
                index,
                Arc::clone(&metrics),
                cfg.queue_depth,
                cfg.max_batch,
                cfg.batch_linger,
            );
            senders.push(tx);
            joins.push(join);
        }
        Self {
            inner: Arc::new(RegistryInner {
                cfg,
                metrics,
                senders,
                joins: Mutex::new(joins),
                directory: RwLock::new(HashMap::new()),
                clock: AtomicU64::new(0),
                model_loads: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            }),
        }
    }

    /// Number of engine shards.
    pub fn num_shards(&self) -> usize {
        self.inner.senders.len()
    }

    /// The model cap (0 = unlimited).
    pub fn max_models(&self) -> usize {
        self.inner.cfg.max_models
    }

    /// Resident model count.
    pub fn model_count(&self) -> usize {
        self.inner.directory.read().expect("directory lock").len()
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Total models evicted by the LRU cap.
    pub fn total_evictions(&self) -> u64 {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    fn tick(&self) -> u64 {
        self.inner.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks a tenant up and touches its LRU tick. `None` when no model is
    /// loaded under the name.
    pub fn resolve(&self, tenant: &str) -> Option<ResolvedTenant> {
        let dir = self.inner.directory.read().expect("directory lock");
        let (key, meta) = dir.get_key_value(tenant)?;
        meta.last_used.store(self.tick(), Ordering::Relaxed);
        Some(ResolvedTenant {
            key: Arc::clone(key),
            shard: meta.shard,
            info: meta.info,
        })
    }

    /// Submits a request to a shard, maintaining the queue-depth gauge.
    ///
    /// # Errors
    ///
    /// Returns an error message when the shard thread is gone.
    pub fn submit(&self, shard: usize, req: ShardRequest) -> Result<(), String> {
        let metrics = &self.inner.metrics;
        metrics.queue_enter(shard);
        self.inner.senders[shard].send(req).map_err(|_| {
            metrics.queue_drop(shard);
            "inference engine has shut down".to_string()
        })
    }

    /// Installs (or hot-swaps) a tenant's forecaster.
    ///
    /// The directory entry and the shard's `Load` request are committed
    /// under the write lock (see the module docs for why); the ack is
    /// awaited after the lock drops. A reload keeps the tenant's counters
    /// and bumps its model version; a first load at the `max_models` cap
    /// evicts the least-recently-used tenant.
    ///
    /// # Errors
    ///
    /// [`RegistryError::InvalidTenant`] for malformed names,
    /// [`RegistryError::ShuttingDown`] when the shards are gone.
    pub fn load(
        &self,
        tenant: &str,
        online: OnlineForecaster,
    ) -> Result<LoadReport, RegistryError> {
        if !valid_tenant(tenant) {
            return Err(RegistryError::InvalidTenant(tenant.to_string()));
        }
        let info = ModelInfo::of(&online);
        let (reply, ack) = channel();
        let report = {
            let mut dir = self.inner.directory.write().expect("directory lock");
            if let Some((key, meta)) = dir.get_key_value(tenant) {
                let key = Arc::clone(key);
                let counters = Arc::clone(&meta.counters);
                let model_version = counters.bump_model_version();
                meta.last_used.store(self.tick(), Ordering::Relaxed);
                let shard = meta.shard;
                dir.get_mut(tenant).expect("entry present").info = info;
                self.send_locked(
                    shard,
                    ShardRequest::Load {
                        tenant: key,
                        online: Box::new(online),
                        counters,
                        reply,
                    },
                )?;
                LoadReport {
                    shard,
                    model_version,
                    reloaded: true,
                    evicted: None,
                }
            } else {
                let mut evicted = None;
                let cap = self.inner.cfg.max_models;
                if cap > 0 && dir.len() >= cap {
                    let victim = dir
                        .iter()
                        .min_by_key(|(name, meta)| {
                            (meta.last_used.load(Ordering::Relaxed), Arc::clone(name))
                        })
                        .map(|(name, meta)| (Arc::clone(name), meta.shard));
                    if let Some((name, shard)) = victim {
                        dir.remove(&name);
                        let (evict_reply, _evict_ack) = channel();
                        self.send_locked(
                            shard,
                            ShardRequest::Unload {
                                tenant: Arc::clone(&name),
                                reply: evict_reply,
                            },
                        )?;
                        self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                        evicted = Some(name.to_string());
                    }
                }
                let key: Arc<str> = Arc::from(tenant);
                let counters = Arc::new(TenantCounters::new());
                let shard = shard_of(tenant, self.num_shards());
                let meta = TenantMeta {
                    shard,
                    info,
                    counters: Arc::clone(&counters),
                    last_used: AtomicU64::new(self.tick()),
                };
                self.send_locked(
                    shard,
                    ShardRequest::Load {
                        tenant: Arc::clone(&key),
                        online: Box::new(online),
                        counters,
                        reply,
                    },
                )?;
                dir.insert(key, meta);
                LoadReport {
                    shard,
                    model_version: 1,
                    reloaded: false,
                    evicted,
                }
            }
        };
        ack.recv_timeout(ENGINE_REPLY_TIMEOUT)
            .map_err(|_| RegistryError::ShuttingDown)?;
        self.inner.model_loads.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    /// Drops a tenant's model and directory entry.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] when no model is loaded under the
    /// name, [`RegistryError::ShuttingDown`] when the shards are gone.
    pub fn unload(&self, tenant: &str) -> Result<(), RegistryError> {
        let (reply, ack) = channel();
        {
            let mut dir = self.inner.directory.write().expect("directory lock");
            let (key, meta) = dir
                .remove_entry(tenant)
                .ok_or_else(|| RegistryError::UnknownTenant(tenant.to_string()))?;
            self.send_locked(meta.shard, ShardRequest::Unload { tenant: key, reply })?;
        }
        ack.recv_timeout(ENGINE_REPLY_TIMEOUT)
            .map_err(|_| RegistryError::ShuttingDown)?;
        Ok(())
    }

    /// A channel send while holding the directory write lock (FIFO-orders
    /// the request before anything a later lookup submits).
    fn send_locked(&self, shard: usize, req: ShardRequest) -> Result<(), RegistryError> {
        let metrics = &self.inner.metrics;
        metrics.queue_enter(shard);
        self.inner.senders[shard].send(req).map_err(|_| {
            metrics.queue_drop(shard);
            RegistryError::ShuttingDown
        })
    }

    /// Directory snapshot sorted by tenant name.
    pub fn tenants(&self) -> Vec<TenantStatus> {
        let dir = self.inner.directory.read().expect("directory lock");
        let mut rows: Vec<TenantStatus> = dir
            .iter()
            .map(|(name, meta)| TenantStatus {
                name: name.to_string(),
                shard: meta.shard,
                info: meta.info,
                counters: Arc::clone(&meta.counters),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Renders the shared service metrics plus the registry families:
    /// model-count gauge, load/eviction counters and per-tenant counters.
    pub fn render_metrics(&self) -> String {
        let mut out = self.inner.metrics.render();
        let header = |out: &mut String, name: &str, kind: &str, help: &str| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        };
        let rows = self.tenants();

        header(
            &mut out,
            "st_serve_models",
            "gauge",
            "Models resident in the registry.",
        );
        out.push_str(&format!("st_serve_models {}\n", rows.len()));

        header(
            &mut out,
            "st_serve_model_loads_total",
            "counter",
            "Checkpoint loads (first loads and hot reloads).",
        );
        out.push_str(&format!(
            "st_serve_model_loads_total {}\n",
            self.inner.model_loads.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_evictions_total",
            "counter",
            "Models evicted by the LRU max-models cap.",
        );
        out.push_str(&format!(
            "st_serve_evictions_total {}\n",
            self.inner.evictions.load(Ordering::Relaxed)
        ));

        header(
            &mut out,
            "st_serve_tenant_requests_total",
            "counter",
            "Engine requests handled, by tenant.",
        );
        for row in &rows {
            out.push_str(&format!(
                "st_serve_tenant_requests_total{{tenant=\"{}\"}} {}\n",
                row.name,
                row.counters.requests()
            ));
        }

        header(
            &mut out,
            "st_serve_tenant_observations_total",
            "counter",
            "Observations applied, by tenant.",
        );
        for row in &rows {
            out.push_str(&format!(
                "st_serve_tenant_observations_total{{tenant=\"{}\"}} {}\n",
                row.name,
                row.counters.observations()
            ));
        }

        header(
            &mut out,
            "st_serve_tenant_tape_runs_total",
            "counter",
            "Model evaluations run (cache misses), by tenant.",
        );
        for row in &rows {
            out.push_str(&format!(
                "st_serve_tenant_tape_runs_total{{tenant=\"{}\"}} {}\n",
                row.name,
                row.counters.tape_runs()
            ));
        }

        header(
            &mut out,
            "st_serve_tenant_cache_hits_total",
            "counter",
            "Requests served from the window-version cache, by tenant.",
        );
        for row in &rows {
            out.push_str(&format!(
                "st_serve_tenant_cache_hits_total{{tenant=\"{}\"}} {}\n",
                row.name,
                row.counters.cache_hits()
            ));
        }

        header(
            &mut out,
            "st_serve_tenant_model_version",
            "gauge",
            "Model version (1 on first load, +1 per hot reload), by tenant.",
        );
        for row in &rows {
            out.push_str(&format!(
                "st_serve_tenant_model_version{{tenant=\"{}\"}} {}\n",
                row.name,
                row.counters.model_version()
            ));
        }

        header(
            &mut out,
            "st_serve_tenant_pool_hit_rate",
            "gauge",
            "Inference tape buffer-pool hit rate, by tenant, 0 to 1.",
        );
        for row in &rows {
            out.push_str(&format!(
                "st_serve_tenant_pool_hit_rate{{tenant=\"{}\"}} {:.6}\n",
                row.name,
                row.counters.pool_hit_rate()
            ));
        }

        out
    }

    /// Takes the shard join handles; used once by graceful shutdown.
    pub(crate) fn take_joins(&self) -> Vec<JoinHandle<Vec<(String, OnlineForecaster)>>> {
        std::mem::take(&mut *self.inner.joins.lock().expect("joins lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rihgcn_core::{prepare_split, RihgcnConfig, RihgcnModel};
    use st_data::{generate_pems, PemsConfig};
    use st_tensor::rng;

    fn forecaster(seed: u64) -> OnlineForecaster {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.3, &mut rng(seed));
        let (norm, z) = prepare_split(&ds.split_chronological());
        let cfg = RihgcnConfig {
            gcn_dim: 3,
            lstm_dim: 4,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        let model = RihgcnModel::from_dataset(&norm.train, cfg);
        OnlineForecaster::new(model, z)
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        for shards in [1, 2, 3, 8] {
            for name in ["a", "default", "tenant-42", "x.y_z"] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards), "stable for {name}");
            }
        }
        // FNV-1a actually spreads names across shards.
        let spread: std::collections::BTreeSet<usize> = (0..32)
            .map(|i| shard_of(&format!("tenant-{i}"), 4))
            .collect();
        assert!(spread.len() > 1, "hash must not collapse to one shard");
    }

    #[test]
    fn tenant_name_validation() {
        assert!(valid_tenant("default"));
        assert!(valid_tenant("city-12.v2_final"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("has space"));
        assert!(!valid_tenant("q?a"));
        assert!(!valid_tenant(&"x".repeat(65)));
    }

    #[test]
    fn load_resolve_unload_lifecycle() {
        let registry = Registry::new(
            RegistryConfig {
                shards: 2,
                ..Default::default()
            },
            Arc::new(Metrics::with_shards(2)),
        );
        assert!(registry.resolve("alpha").is_none());
        assert!(matches!(
            registry.load("bad name", forecaster(1)),
            Err(RegistryError::InvalidTenant(_))
        ));

        let report = registry.load("alpha", forecaster(1)).unwrap();
        assert_eq!(report.shard, shard_of("alpha", 2));
        assert_eq!(report.model_version, 1);
        assert!(!report.reloaded);

        let resolved = registry.resolve("alpha").unwrap();
        assert_eq!(resolved.shard, report.shard);
        assert_eq!(resolved.info.nodes, 4);

        // Reload bumps the model version in place.
        let report = registry.load("alpha", forecaster(2)).unwrap();
        assert!(report.reloaded);
        assert_eq!(report.model_version, 2);
        assert_eq!(registry.model_count(), 1);

        registry.unload("alpha").unwrap();
        assert!(registry.resolve("alpha").is_none());
        assert!(matches!(
            registry.unload("alpha"),
            Err(RegistryError::UnknownTenant(_))
        ));
    }

    #[test]
    fn lru_eviction_under_cap() {
        let registry = Registry::new(
            RegistryConfig {
                shards: 2,
                max_models: 2,
                ..Default::default()
            },
            Arc::new(Metrics::with_shards(2)),
        );
        registry.load("a", forecaster(1)).unwrap();
        registry.load("b", forecaster(2)).unwrap();
        // Touch `a` so `b` is the LRU victim.
        registry.resolve("a").unwrap();
        let report = registry.load("c", forecaster(3)).unwrap();
        assert_eq!(report.evicted.as_deref(), Some("b"));
        assert_eq!(registry.model_count(), 2);
        assert!(registry.resolve("b").is_none());
        assert!(registry.resolve("a").is_some());
        assert!(registry.resolve("c").is_some());
        assert_eq!(registry.total_evictions(), 1);
        // Reloading a resident tenant at the cap evicts nothing.
        let report = registry.load("a", forecaster(4)).unwrap();
        assert!(report.reloaded && report.evicted.is_none());
        assert_eq!(registry.model_count(), 2);
    }
}
