//! Model persistence: train RIHGCN briefly, save the parameters to a file,
//! rebuild the model from its configuration, load the parameters back and
//! verify the restored model produces identical forecasts.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example save_load_model
//! ```

use rihgcn::core::{
    fit, load_params, prepare_split, save_params, RihgcnConfig, RihgcnModel, TrainConfig,
};
use rihgcn::data::{generate_pems, PemsConfig, WindowSampler};
use std::error::Error;
use std::fs::File;
use std::io::BufReader;

fn main() -> Result<(), Box<dyn Error>> {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 6,
        num_days: 4,
        ..Default::default()
    });
    let (norm, _z) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(12, 12, 24);
    let train = sampler.sample(&norm.train);
    let test = sampler.sample(&norm.test);

    let cfg = RihgcnConfig {
        gcn_dim: 6,
        lstm_dim: 8,
        num_temporal_graphs: 2,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&norm.train, cfg.clone());
    let tc = TrainConfig {
        max_epochs: 3,
        ..Default::default()
    };
    fit(&mut model, &train, &[], &tc);

    // Save.
    let path = std::env::temp_dir().join("rihgcn-example.params");
    save_params(model.params(), File::create(&path)?)?;
    println!(
        "saved {} parameters to {}",
        model.num_parameters(),
        path.display()
    );

    // Rebuild with the same configuration (graphs are deterministic given
    // the same training data), then load.
    let mut restored = RihgcnModel::from_dataset(&norm.train, cfg);
    load_params(restored.params_mut(), BufReader::new(File::open(&path)?))?;

    // Identical forecasts bit-for-bit.
    let original = model.forward(&test[0]);
    let reloaded = restored.forward(&test[0]);
    let max_diff = original
        .predictions
        .iter()
        .zip(&reloaded.predictions)
        .map(|(a, b)| a.max_abs_diff(b))
        .fold(0.0_f64, f64::max);
    println!("max forecast difference after reload: {max_diff:e}");
    assert_eq!(
        max_diff, 0.0,
        "restored model must reproduce forecasts exactly"
    );
    println!("restored model reproduces the original forecasts exactly.");
    std::fs::remove_file(&path).ok();
    Ok(())
}
