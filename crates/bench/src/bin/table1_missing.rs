//! Table I (upper): PeMS prediction performance vs missing rate
//! {20, 40, 60, 80}% at a 60-minute horizon.

use rihgcn_bench::{pems_at, print_table, Bench, Method, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let rates = [0.2, 0.4, 0.6, 0.8];
    let columns: Vec<String> = rates
        .iter()
        .map(|r| format!("{:.0}% missing", r * 100.0))
        .collect();
    println!(
        "Table I (upper) — PeMS, horizon 60 min, scale `{}`",
        scale.name
    );

    let mut rows = Vec::new();
    for method in Method::roster() {
        let t0 = Instant::now();
        let mut metrics = Vec::new();
        for &rate in &rates {
            // One base dataset for every column: only the mask differs, so
            // the columns isolate the effect of the missing rate.
            let ds = pems_at(&scale, rate, 100);
            let bench = Bench::prepare(&ds, &scale, 12, 12);
            metrics.push(rihgcn_bench::run_method(method, &bench, 4));
        }
        eprintln!("{:<16} done in {:?}", method.name(), t0.elapsed());
        rows.push((method.name().to_string(), metrics));
    }
    print_table("Table I (upper): MAE/RMSE vs missing rate", &columns, &rows);
}
