//! Whole-pipeline determinism: with every stochastic component flowing
//! through the in-tree seeded RNG, two training runs from the same seed
//! must agree bit for bit — per-epoch losses and every final parameter.

use rihgcn::core::{fit, prepare_split, RihgcnConfig, RihgcnModel, TrainConfig};
use rihgcn::data::{generate_pems, PemsConfig, WindowSampler};
use rihgcn::tensor::{rng, Matrix};

fn train_once() -> (Vec<f64>, Vec<f64>, Vec<(String, Matrix)>) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut rng(9));
    let (norm, _) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(6, 3, 24);
    let train = sampler.sample(&norm.train);
    let val = sampler.sample(&norm.val);

    let mut model = RihgcnModel::from_dataset(
        &norm.train,
        RihgcnConfig {
            gcn_dim: 4,
            lstm_dim: 6,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 6,
            horizon: 3,
            ..Default::default()
        },
    );
    let tc = TrainConfig {
        max_epochs: 3,
        batch_size: 4,
        ..Default::default()
    };
    let report = fit(&mut model, &train, &val, &tc);

    let store = model.params();
    let params = store
        .ids()
        .map(|id| (store.name(id).to_string(), store.value(id).clone()))
        .collect();
    (report.train_losses, report.val_losses, params)
}

#[test]
fn training_is_bitwise_reproducible() {
    let (train_a, val_a, params_a) = train_once();
    let (train_b, val_b, params_b) = train_once();

    // Losses must match exactly — not within a tolerance. Any hidden source
    // of nondeterminism (iteration order, shared global RNG state, time-
    // dependent code) shows up here first.
    assert_eq!(
        train_a.len(),
        train_b.len(),
        "epoch counts diverged: {} vs {}",
        train_a.len(),
        train_b.len()
    );
    for (epoch, (a, b)) in train_a.iter().zip(&train_b).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "train loss diverged at epoch {epoch}: {a} vs {b}"
        );
    }
    for (epoch, (a, b)) in val_a.iter().zip(&val_b).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "val loss diverged at epoch {epoch}: {a} vs {b}"
        );
    }

    // Every final parameter matrix must be bit-identical too.
    assert_eq!(params_a.len(), params_b.len(), "parameter counts diverged");
    for ((name_a, m_a), (name_b, m_b)) in params_a.iter().zip(&params_b) {
        assert_eq!(name_a, name_b, "parameter order diverged");
        assert_eq!(m_a.shape(), m_b.shape(), "shape diverged for {name_a}");
        for (x, y) in m_a.as_slice().iter().zip(m_b.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "parameter {name_a} diverged: {x} vs {y}"
            );
        }
    }
}

#[test]
fn different_training_seeds_actually_diverge() {
    // Sanity check for the test above: if the pipeline ignored its seeds,
    // bitwise equality would pass vacuously.
    let run = |seed| {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.3, &mut rng(9));
        let (norm, _) = prepare_split(&ds.split_chronological());
        let train = WindowSampler::new(6, 3, 24).sample(&norm.train);
        let mut model = RihgcnModel::from_dataset(
            &norm.train,
            RihgcnConfig {
                gcn_dim: 4,
                lstm_dim: 6,
                cheb_k: 2,
                num_temporal_graphs: 2,
                history: 6,
                horizon: 3,
                ..Default::default()
            },
        );
        let tc = TrainConfig {
            max_epochs: 2,
            batch_size: 4,
            seed,
            ..Default::default()
        };
        fit(&mut model, &train, &[], &tc).train_losses
    };
    assert_ne!(
        run(1),
        run(2),
        "different shuffle seeds must change the loss trajectory"
    );
}
