//! Registry behaviour over real HTTP: sharded multi-tenant forecasts
//! bit-identical to independent single-model servers, hot checkpoint
//! reload under concurrent traffic on the other shard, LRU eviction, and
//! the admin error contract (405 + `Allow`, 404 + JSON).

use rihgcn_core::{prepare_split, save_checkpoint, OnlineForecaster, RihgcnConfig, RihgcnModel};
use st_data::{generate_pems, PemsConfig, TrafficDataset};
use st_serve::{shard_of, wire, HttpClient, ServeConfig, Server};
use st_tensor::rng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const HISTORY: usize = 4;

fn forecaster(seed: u64) -> (OnlineForecaster, TrafficDataset) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut rng(seed));
    let (norm, z) = prepare_split(&ds.split_chronological());
    let cfg = RihgcnConfig {
        gcn_dim: 3,
        lstm_dim: 4,
        cheb_k: 2,
        num_temporal_graphs: 2,
        history: HISTORY,
        horizon: 2,
        ..Default::default()
    };
    let model = RihgcnModel::from_dataset(&norm.train, cfg);
    (OnlineForecaster::new(model, z), ds)
}

fn connect(server: &Server) -> HttpClient {
    HttpClient::connect(&server.local_addr().to_string(), Duration::from_secs(10))
        .expect("connect to server")
}

fn observe_tenant(client: &mut HttpClient, tenant: &str, ds: &TrafficDataset, t: usize) {
    let body = wire::format_observation(t, &ds.values.time_slice(t), &ds.mask.time_slice(t));
    client
        .post_ok(&format!("/observe?tenant={tenant}"), &body)
        .unwrap_or_else(|e| panic!("observe {tenant} t={t}: {e}"));
}

fn save_temp_checkpoint(tag: &str, online: &OnlineForecaster) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "st_serve_registry_{}_{tag}.ckpt",
        std::process::id()
    ));
    let file = std::fs::File::create(&path).expect("create checkpoint file");
    save_checkpoint(
        online.model(),
        online.zscore(),
        std::io::BufWriter::new(file),
    )
    .expect("save checkpoint");
    path
}

/// First name in the pool routing to `shard` under 2 shards.
fn tenant_on_shard(pool: &[&str], shard: usize) -> String {
    pool.iter()
        .find(|name| shard_of(name, 2) == shard)
        .unwrap_or_else(|| panic!("no pool name routes to shard {shard}"))
        .to_string()
}

#[test]
fn sharded_forecasts_match_single_model_servers_bit_for_bit() {
    let names = ["alpha", "beta", "gamma", "delta"];
    let seeds = [11u64, 12, 13, 14];
    let mut models = Vec::new();
    let mut datasets = Vec::new();
    for (name, seed) in names.iter().zip(seeds) {
        let (online, ds) = forecaster(seed);
        models.push((name.to_string(), online));
        datasets.push(ds);
    }
    let server = Server::start_with_models(
        models,
        ServeConfig {
            workers: 2,
            shards: 2,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let mut client = connect(&server);

    // The directory lists every tenant on its FNV-determined shard, and
    // the chosen names actually exercise both shards.
    let listing = client.get_ok("/admin/tenants").expect("tenants");
    assert!(
        listing.starts_with("shards 2 models 4"),
        "listing: {listing}"
    );
    for name in names {
        let expected = format!("tenant {name} shard {}", shard_of(name, 2));
        assert!(listing.contains(&expected), "listing: {listing}");
    }
    let used: std::collections::BTreeSet<usize> = names.iter().map(|n| shard_of(n, 2)).collect();
    assert_eq!(used.len(), 2, "test names must cover both shards");

    // Fill all four windows interleaved through the sharded server, the
    // worst case for cross-tenant isolation.
    for t in 0..HISTORY {
        for (name, ds) in names.iter().zip(&datasets) {
            observe_tenant(&mut client, name, ds, t);
        }
    }

    // Fetch every tenant's responses up front (building the comparison
    // servers below takes longer than the connection read timeout).
    let mut sharded = Vec::new();
    for name in names {
        let forecast = client
            .get_ok(&format!("/forecast?tenant={name}"))
            .expect("sharded forecast");
        let imputed = client
            .get_ok(&format!("/imputed?tenant={name}"))
            .expect("sharded imputed");
        sharded.push((forecast, imputed));
    }

    // Per-shard request counters sum to the aggregate engine counter.
    let metrics = client.get_ok("/metrics").expect("metrics");
    let value = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("missing metric {name}: {metrics}"))
    };
    let per_shard = value("st_serve_shard_requests_total{shard=\"0\"}")
        + value("st_serve_shard_requests_total{shard=\"1\"}");
    assert_eq!(per_shard, value("st_serve_engine_requests_total"));
    drop(client);

    // Every tenant's forecast and imputed window must be byte-identical
    // to an independent single-model server built the same way.
    for (((name, seed), ds), (sharded_forecast, sharded_imputed)) in
        names.iter().zip(seeds).zip(&datasets).zip(&sharded)
    {
        let (single_online, _) = forecaster(seed);
        let single = Server::start(
            single_online,
            ServeConfig {
                workers: 1,
                ..Default::default()
            },
        )
        .expect("bind single-model server");
        let mut single_client = connect(&single);
        for t in 0..HISTORY {
            let body =
                wire::format_observation(t, &ds.values.time_slice(t), &ds.mask.time_slice(t));
            single_client.post_ok("/observe", &body).expect("observe");
        }
        let single_forecast = single_client.get_ok("/forecast").expect("single forecast");
        let single_imputed = single_client.get_ok("/imputed").expect("single imputed");
        assert_eq!(
            sharded_forecast, &single_forecast,
            "tenant {name}: sharded forecast must match a dedicated server byte-for-byte"
        );
        assert_eq!(
            sharded_imputed, &single_imputed,
            "tenant {name}: sharded imputed window must match byte-for-byte"
        );
        single.shutdown();
    }

    let drained = server.shutdown();
    assert_eq!(drained.len(), 4, "all four tenants drained");
    let drained_names: Vec<&str> = drained.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(drained_names, ["alpha", "beta", "delta", "gamma"], "sorted");
    for (_, online) in &drained {
        assert_eq!(online.len(), HISTORY);
    }
}

#[test]
fn hot_reload_bumps_version_without_disrupting_other_shard() {
    let pool = ["t0", "t1", "t2", "t3", "t4", "t5"];
    let reloaded = tenant_on_shard(&pool, 0);
    let steady = tenant_on_shard(&pool, 1);

    let (online_a, ds_a) = forecaster(21);
    let (online_b, ds_b) = forecaster(22);
    // The replacement model, persisted as a checkpoint v2 file; the oracle
    // loads the same bytes, so HTTP results must match it bit-for-bit.
    let (replacement, _) = forecaster(23);
    let path = save_temp_checkpoint("reload", &replacement);
    let file = std::fs::File::open(&path).expect("open checkpoint");
    let mut oracle = OnlineForecaster::from_checkpoint(&mut std::io::BufReader::new(file))
        .expect("oracle from checkpoint");

    let server = Server::start_with_models(
        vec![(reloaded.clone(), online_a), (steady.clone(), online_b)],
        ServeConfig {
            workers: 3,
            shards: 2,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let mut client = connect(&server);

    // Fill the steady tenant's window and capture its forecast bytes.
    for t in 0..HISTORY {
        observe_tenant(&mut client, &steady, &ds_b, t);
    }
    let steady_forecast = client
        .get_ok(&format!("/forecast?tenant={steady}"))
        .expect("steady forecast");

    // Hammer the steady tenant (other shard) from a second connection
    // while the reload happens; every response must stay a byte-identical
    // 200 — the reload must not drop or disturb in-flight requests.
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let hammer = {
        let stop = Arc::clone(&stop);
        let served = Arc::clone(&served);
        let addr = server.local_addr().to_string();
        let steady = steady.clone();
        let expected = steady_forecast.clone();
        std::thread::spawn(move || {
            let mut client =
                HttpClient::connect(&addr, Duration::from_secs(10)).expect("hammer connect");
            while !stop.load(Ordering::SeqCst) {
                let body = client
                    .get_ok(&format!("/forecast?tenant={steady}"))
                    .expect("steady forecast during reload");
                assert_eq!(body, expected, "steady tenant bytes must not change");
                served.fetch_add(1, Ordering::SeqCst);
            }
        })
    };

    // Hot-swap the reloaded tenant's checkpoint over HTTP.
    let ack = client
        .post_ok(
            "/admin/load",
            &wire::format_admin_load(&reloaded, path.to_str().expect("utf-8 path")),
        )
        .expect("admin load");
    assert!(
        ack.contains("model_version 2") && ack.contains("reloaded true"),
        "ack: {ack}"
    );

    // The swapped tenant starts with an empty window at model version 2.
    let health = client
        .get_ok(&format!("/healthz?tenant={reloaded}"))
        .expect("healthz");
    assert!(
        health.contains("buffered 0 ready false") && health.contains("model_version 2"),
        "health: {health}"
    );

    // Refill and compare against the oracle loaded from the same bytes.
    for t in 0..HISTORY {
        observe_tenant(&mut client, &reloaded, &ds_a, t);
        oracle.push(ds_a.values.time_slice(t), ds_a.mask.time_slice(t), t);
    }
    let text = client
        .get_ok(&format!("/forecast?tenant={reloaded}"))
        .expect("forecast after reload");
    let (_, steps) = wire::parse_steps(&text).expect("parse forecast");
    assert_eq!(steps, oracle.forecast().expect("oracle forecast"));

    // Let the hammer observe some post-reload traffic too, then stop it.
    let already = served.load(Ordering::SeqCst);
    while served.load(Ordering::SeqCst) < already + 3 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::SeqCst);
    hammer.join().expect("hammer thread");
    assert!(served.load(Ordering::SeqCst) > 0, "hammer made progress");

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lru_eviction_and_admin_error_contract_over_http() {
    let (online_a, _) = forecaster(31);
    let (online_b, _) = forecaster(32);
    let (extra, _) = forecaster(33);
    let path = save_temp_checkpoint("evict", &extra);

    let server = Server::start_with_models(
        vec![("a".to_string(), online_a), ("b".to_string(), online_b)],
        ServeConfig {
            workers: 2,
            shards: 2,
            max_models: 2,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let mut client = connect(&server);

    // Touch `a` so `b` is the LRU victim, then load `c` over the cap.
    client.get_ok("/healthz?tenant=a").expect("touch a");
    let ack = client
        .post_ok(
            "/admin/load",
            &wire::format_admin_load("c", path.to_str().expect("utf-8 path")),
        )
        .expect("admin load");
    assert!(ack.contains("evicted b"), "ack: {ack}");

    // The evicted tenant now 404s with a JSON error body.
    let resp = client
        .request("GET", "/forecast?tenant=b", "")
        .expect("request");
    assert_eq!(resp.status, 404, "body: {}", resp.body);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    assert_eq!(
        resp.body,
        "{\"error\":\"unknown tenant\",\"tenant\":\"b\"}\n"
    );

    // Wrong methods on /admin/* answer 405 with an Allow header.
    let resp = client.request("GET", "/admin/load", "").expect("request");
    assert_eq!(resp.status, 405, "body: {}", resp.body);
    assert_eq!(resp.header("allow"), Some("POST"));
    let resp = client
        .request("POST", "/admin/tenants", "")
        .expect("request");
    assert_eq!(resp.status, 405, "body: {}", resp.body);
    assert_eq!(resp.header("allow"), Some("GET"));

    // Unloading an unknown tenant is the same JSON 404; unloading a
    // resident one works and shrinks the directory.
    let resp = client
        .request("POST", "/admin/unload", &wire::format_admin_unload("ghost"))
        .expect("request");
    assert_eq!(resp.status, 404, "body: {}", resp.body);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let bye = client
        .post_ok("/admin/unload", &wire::format_admin_unload("c"))
        .expect("unload c");
    assert!(bye.contains("ok tenant c unloaded"), "bye: {bye}");
    let listing = client.get_ok("/admin/tenants").expect("tenants");
    assert!(
        listing.starts_with("shards 2 models 1 max_models 2"),
        "listing: {listing}"
    );

    // The metrics surface records the eviction.
    let metrics = client.get_ok("/metrics").expect("metrics");
    assert!(
        metrics.contains("st_serve_evictions_total 1"),
        "metrics: {metrics}"
    );
    assert!(metrics.contains("st_serve_models 1"), "metrics: {metrics}");

    let drained = server.shutdown();
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].0, "a");
    let _ = std::fs::remove_file(&path);
}
