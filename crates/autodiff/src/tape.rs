//! Reverse-mode automatic differentiation tape.
//!
//! The [`Tape`] records a computation as a sequence of matrix-valued nodes.
//! Nodes are created in topological order (an operation can only reference
//! earlier nodes), so [`Tape::backward`] is a single reverse sweep that
//! accumulates gradients into every node that transitively depends on a
//! parameter.
//!
//! This is exactly the machinery the paper's "imputed values are trainable
//! variables" trick needs: the estimated matrix `X̂_{t+1}` stays a tape node,
//! so the prediction loss at later timestamps sends *delayed gradients* back
//! through the imputation at earlier timestamps.

use st_tensor::Matrix;

/// Handle to a node on a [`Tape`].
///
/// `Var`s are cheap copyable indices; they are only meaningful for the tape
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The raw node index on the owning tape.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Matmul(usize, usize),
    Scale(usize, f64),
    AddScalar(usize),
    AddBias { x: usize, bias: usize },
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    Abs(usize),
    ConcatCols(usize, usize),
    SliceCols { x: usize, start: usize },
    Sum(usize),
    Mean(usize),
    SoftmaxRows(usize),
    ScaleVar { x: usize, s: usize },
    Transpose(usize),
    Exp(usize),
    Ln(usize),
    Sqrt(usize),
    Div(usize, usize),
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    needs_grad: bool,
}

/// A reverse-mode autodiff tape over dense matrices.
///
/// # Examples
///
/// ```
/// use st_autodiff::Tape;
/// use st_tensor::Matrix;
///
/// let mut tape = Tape::new();
/// let x = tape.parameter(Matrix::from_rows(&[&[3.0]]));
/// let y = tape.mul(x, x); // y = x²
/// let loss = tape.sum(y);
/// tape.backward(loss);
/// assert_eq!(tape.grad(x)[(0, 0)], 6.0); // dy/dx = 2x
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant: gradients are not tracked through it.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Records a trainable parameter leaf.
    pub fn parameter(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// The forward value of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node; a zero matrix if [`Tape::backward`]
    /// has not reached it.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn grad(&self, v: Var) -> Matrix {
        let node = &self.nodes[v.0];
        node.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(node.value.rows(), node.value.cols()))
    }

    /// Whether gradients flow through this node.
    pub fn needs_grad(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    fn binary_needs(&self, a: Var, b: Var) -> bool {
        self.nodes[a.0].needs_grad || self.nodes[b.0].needs_grad
    }

    /// Elementwise sum `a + b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value + &self.nodes[b.0].value;
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Add(a.0, b.0), ng)
    }

    /// Elementwise difference `a − b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value - &self.nodes[b.0].value;
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Sub(a.0, b.0), ng)
    }

    /// Elementwise (Hadamard) product `a ⊙ b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Mul(a.0, b.0), ng)
    }

    /// Matrix product `a · b`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Matmul(a.0, b.0), ng)
    }

    /// Scalar multiple `s · a`.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let v = self.nodes[a.0].value.scale(s);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Scale(a.0, s), ng)
    }

    /// Adds the scalar `s` to every element.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        let v = self.nodes[a.0].value.map(|x| x + s);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::AddScalar(a.0), ng)
    }

    /// Adds the `1 × C` row vector `bias` to every row of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a row vector of matching width.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let v = self.nodes[x.0]
            .value
            .add_row_broadcast(&self.nodes[bias.0].value);
        let ng = self.binary_needs(x, bias);
        self.push(
            v,
            Op::AddBias {
                x: x.0,
                bias: bias.0,
            },
            ng,
        )
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Sigmoid(a.0), ng)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::tanh);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Tanh(a.0), ng)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Relu(a.0), ng)
    }

    /// Elementwise absolute value (subgradient 0 at the origin).
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::abs);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Abs(a.0), ng)
    }

    /// Horizontal concatenation `[a; b]` along columns.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hcat(&self.nodes[b.0].value);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::ConcatCols(a.0, b.0), ng)
    }

    /// Columns `[start, end)` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_cols(&mut self, x: Var, start: usize, end: usize) -> Var {
        let v = self.nodes[x.0].value.slice_cols(start, end);
        let ng = self.nodes[x.0].needs_grad;
        self.push(v, Op::SliceCols { x: x.0, start }, ng)
    }

    /// Sum of all elements as a `1 × 1` matrix.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Matrix::from_rows(&[&[self.nodes[a.0].value.sum()]]);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Sum(a.0), ng)
    }

    /// Mean of all elements as a `1 × 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty.
    pub fn mean(&mut self, a: Var) -> Var {
        assert!(!self.nodes[a.0].value.is_empty(), "mean of empty matrix");
        let v = Matrix::from_rows(&[&[self.nodes[a.0].value.mean()]]);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Mean(a.0), ng)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let mut v = x.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut denom = 0.0;
            for e in row.iter_mut() {
                *e = (*e - max).exp();
                denom += *e;
            }
            for e in row.iter_mut() {
                *e /= denom;
            }
        }
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::SoftmaxRows(a.0), ng)
    }

    /// Scales `x` by the `1 × 1` variable `s` (both gradients tracked).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not `1 × 1`.
    pub fn scale_var(&mut self, x: Var, s: Var) -> Var {
        let sv = &self.nodes[s.0].value;
        assert_eq!(sv.shape(), (1, 1), "scale_var scalar must be 1x1");
        let v = self.nodes[x.0].value.scale(sv[(0, 0)]);
        let ng = self.binary_needs(x, s);
        self.push(v, Op::ScaleVar { x: x.0, s: s.0 }, ng)
    }

    /// Transpose of `x`.
    pub fn transpose(&mut self, x: Var) -> Var {
        let v = self.nodes[x.0].value.transpose();
        let ng = self.nodes[x.0].needs_grad;
        self.push(v, Op::Transpose(x.0), ng)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::exp);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Exp(a.0), ng)
    }

    /// Elementwise natural logarithm.
    ///
    /// # Panics
    ///
    /// Panics if any element is not strictly positive.
    pub fn ln(&mut self, a: Var) -> Var {
        assert!(
            self.nodes[a.0].value.as_slice().iter().all(|&x| x > 0.0),
            "ln requires strictly positive inputs"
        );
        let v = self.nodes[a.0].value.map(f64::ln);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Ln(a.0), ng)
    }

    /// Elementwise square root.
    ///
    /// # Panics
    ///
    /// Panics if any element is negative.
    pub fn sqrt(&mut self, a: Var) -> Var {
        assert!(
            self.nodes[a.0].value.as_slice().iter().all(|&x| x >= 0.0),
            "sqrt requires non-negative inputs"
        );
        let v = self.nodes[a.0].value.map(f64::sqrt);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Sqrt(a.0), ng)
    }

    /// Elementwise division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or any divisor is zero.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        assert!(
            self.nodes[b.0].value.as_slice().iter().all(|&x| x != 0.0),
            "division by zero"
        );
        let v = self.nodes[a.0]
            .value
            .zip_map(&self.nodes[b.0].value, |x, y| x / y);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Div(a.0, b.0), ng)
    }

    // ----- composite conveniences -------------------------------------

    /// Mean absolute error `mean(|a − b|)` as a `1 × 1` node.
    pub fn mae(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let d = self.abs(d);
        self.mean(d)
    }

    /// Mean squared error `mean((a − b)²)` as a `1 × 1` node.
    pub fn mse(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.mul(d, d);
        self.mean(sq)
    }

    /// Masked mean absolute error: `sum(|a − b| ⊙ mask) / max(1, sum(mask))`.
    ///
    /// `mask` is a constant `{0,1}` matrix of the same shape.
    pub fn masked_mae(&mut self, a: Var, b: Var, mask: &Matrix) -> Var {
        let count = mask.sum().max(1.0);
        let m = self.constant(mask.clone());
        let d = self.sub(a, b);
        let d = self.abs(d);
        let d = self.mul(d, m);
        let s = self.sum(d);
        self.scale(s, 1.0 / count)
    }

    /// Runs the reverse sweep from `loss`, which must be a `1 × 1` node.
    ///
    /// Gradients accumulate into every node with `needs_grad`; read them back
    /// with [`Tape::grad`]. Calling `backward` twice accumulates twice.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss node"
        );
        self.seed_and_sweep(loss, Matrix::ones(1, 1));
    }

    fn seed_and_sweep(&mut self, root: Var, seed: Matrix) {
        if !self.nodes[root.0].needs_grad {
            return;
        }
        // Per-sweep scratch gradients: using a separate buffer (instead of the
        // persistent `grad` slots) gives PyTorch-like semantics where calling
        // `backward` twice adds d(loss)/d(node) twice, rather than compounding
        // previously-stored gradients through the sweep.
        let mut scratch: Vec<Option<Matrix>> = vec![None; root.0 + 1];
        acc(&self.nodes, &mut scratch, root.0, &seed);

        for i in (0..=root.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let g = match &scratch[i] {
                Some(g) => g.clone(),
                None => continue,
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    acc(&self.nodes, &mut scratch, a, &g);
                    acc(&self.nodes, &mut scratch, b, &g);
                }
                Op::Sub(a, b) => {
                    acc(&self.nodes, &mut scratch, a, &g);
                    let neg = -&g;
                    acc(&self.nodes, &mut scratch, b, &neg);
                }
                Op::Mul(a, b) => {
                    let ga = g.hadamard(&self.nodes[b].value);
                    let gb = g.hadamard(&self.nodes[a].value);
                    acc(&self.nodes, &mut scratch, a, &ga);
                    acc(&self.nodes, &mut scratch, b, &gb);
                }
                Op::Matmul(a, b) => {
                    if self.nodes[a].needs_grad {
                        let ga = g.matmul_nt(&self.nodes[b].value);
                        acc(&self.nodes, &mut scratch, a, &ga);
                    }
                    if self.nodes[b].needs_grad {
                        let gb = self.nodes[a].value.matmul_tn(&g);
                        acc(&self.nodes, &mut scratch, b, &gb);
                    }
                }
                Op::Scale(a, s) => {
                    let ga = g.scale(s);
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::AddScalar(a) => acc(&self.nodes, &mut scratch, a, &g),
                Op::AddBias { x, bias } => {
                    acc(&self.nodes, &mut scratch, x, &g);
                    if self.nodes[bias].needs_grad {
                        let gb = g.sum_cols();
                        acc(&self.nodes, &mut scratch, bias, &gb);
                    }
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.zip_map(y, |gi, yi| gi * yi * (1.0 - yi));
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.zip_map(y, |gi, yi| gi * (1.0 - yi * yi));
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[a].value;
                    let ga = g.zip_map(x, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::Abs(a) => {
                    let x = &self.nodes[a].value;
                    let ga = g.zip_map(x, |gi, xi| gi * sign(xi));
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a].value.cols();
                    let ga = g.slice_cols(0, ca);
                    let gb = g.slice_cols(ca, g.cols());
                    acc(&self.nodes, &mut scratch, a, &ga);
                    acc(&self.nodes, &mut scratch, b, &gb);
                }
                Op::SliceCols { x, start } => {
                    if self.nodes[x].needs_grad {
                        let parent = &self.nodes[x].value;
                        let mut gx = Matrix::zeros(parent.rows(), parent.cols());
                        for r in 0..g.rows() {
                            for c in 0..g.cols() {
                                gx[(r, start + c)] = g[(r, c)];
                            }
                        }
                        acc(&self.nodes, &mut scratch, x, &gx);
                    }
                }
                Op::Sum(a) => {
                    let s = g[(0, 0)];
                    let shape = self.nodes[a].value.shape();
                    let ga = Matrix::filled(shape.0, shape.1, s);
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::Mean(a) => {
                    let shape = self.nodes[a].value.shape();
                    let s = g[(0, 0)] / (shape.0 * shape.1) as f64;
                    let ga = Matrix::filled(shape.0, shape.1, s);
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let mut ga = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let yr = y.row(r);
                        let gr = g.row(r);
                        let dot: f64 = yr.iter().zip(gr).map(|(&yi, &gi)| yi * gi).sum();
                        for c in 0..y.cols() {
                            ga[(r, c)] = yr[c] * (gr[c] - dot);
                        }
                    }
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::ScaleVar { x, s } => {
                    let sv = self.nodes[s].value[(0, 0)];
                    if self.nodes[x].needs_grad {
                        let gx = g.scale(sv);
                        acc(&self.nodes, &mut scratch, x, &gx);
                    }
                    if self.nodes[s].needs_grad {
                        let gs = g.hadamard(&self.nodes[x].value).sum();
                        let gs = Matrix::from_rows(&[&[gs]]);
                        acc(&self.nodes, &mut scratch, s, &gs);
                    }
                }
                Op::Transpose(x) => {
                    let gx = g.transpose();
                    acc(&self.nodes, &mut scratch, x, &gx);
                }
                Op::Exp(a) => {
                    // d(eˣ) = eˣ — reuse the stored output.
                    let ga = g.hadamard(&self.nodes[i].value);
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::Ln(a) => {
                    let x = &self.nodes[a].value;
                    let ga = g.zip_map(x, |gi, xi| gi / xi);
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::Sqrt(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.zip_map(y, |gi, yi| gi / (2.0 * yi.max(1e-300)));
                    acc(&self.nodes, &mut scratch, a, &ga);
                }
                Op::Div(a, b) => {
                    let bv = &self.nodes[b].value;
                    let ga = g.zip_map(bv, |gi, bi| gi / bi);
                    acc(&self.nodes, &mut scratch, a, &ga);
                    if self.nodes[b].needs_grad {
                        let av = &self.nodes[a].value;
                        let gb = Matrix::from_fn(g.rows(), g.cols(), |r, c| {
                            -g[(r, c)] * av[(r, c)] / (bv[(r, c)] * bv[(r, c)])
                        });
                        acc(&self.nodes, &mut scratch, b, &gb);
                    }
                }
            }
        }

        // Merge the sweep's gradients into the persistent per-node slots.
        for (i, g) in scratch.into_iter().enumerate() {
            if let Some(g) = g {
                match &mut self.nodes[i].grad {
                    Some(existing) => existing.axpy(1.0, &g),
                    slot @ None => *slot = Some(g),
                }
            }
        }
    }
}

fn acc(nodes: &[Node], scratch: &mut [Option<Matrix>], idx: usize, g: &Matrix) {
    if !nodes[idx].needs_grad {
        return;
    }
    match &mut scratch[idx] {
        Some(existing) => existing.axpy(1.0, g),
        slot @ None => *slot = Some(g.clone()),
    }
}

impl Tape {
    /// Summary of one node for rendering: label, parent indices, whether it
    /// is a leaf, and whether gradients flow through it.
    pub(crate) fn node_summary(&self, idx: usize) -> (String, Vec<usize>, bool, bool) {
        let node = &self.nodes[idx];
        let (name, parents): (&str, Vec<usize>) = match &node.op {
            Op::Leaf => (if node.needs_grad { "param" } else { "const" }, Vec::new()),
            Op::Add(a, b) => ("add", vec![*a, *b]),
            Op::Sub(a, b) => ("sub", vec![*a, *b]),
            Op::Mul(a, b) => ("mul", vec![*a, *b]),
            Op::Matmul(a, b) => ("matmul", vec![*a, *b]),
            Op::Scale(a, _) => ("scale", vec![*a]),
            Op::AddScalar(a) => ("add_scalar", vec![*a]),
            Op::AddBias { x, bias } => ("add_bias", vec![*x, *bias]),
            Op::Sigmoid(a) => ("sigmoid", vec![*a]),
            Op::Tanh(a) => ("tanh", vec![*a]),
            Op::Relu(a) => ("relu", vec![*a]),
            Op::Abs(a) => ("abs", vec![*a]),
            Op::ConcatCols(a, b) => ("concat", vec![*a, *b]),
            Op::SliceCols { x, .. } => ("slice", vec![*x]),
            Op::Sum(a) => ("sum", vec![*a]),
            Op::Mean(a) => ("mean", vec![*a]),
            Op::SoftmaxRows(a) => ("softmax", vec![*a]),
            Op::ScaleVar { x, s } => ("scale_var", vec![*x, *s]),
            Op::Transpose(a) => ("transpose", vec![*a]),
            Op::Exp(a) => ("exp", vec![*a]),
            Op::Ln(a) => ("ln", vec![*a]),
            Op::Sqrt(a) => ("sqrt", vec![*a]),
            Op::Div(a, b) => ("div", vec![*a, *b]),
        };
        let (r, c) = node.value.shape();
        (
            format!("{name} {r}x{c}"),
            parents,
            matches!(node.op, Op::Leaf),
            node.needs_grad,
        )
    }
}

fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}
