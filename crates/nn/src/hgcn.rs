//! Heterogeneous GCN block (paper §III-D).
//!
//! One [`ChebGcn`] over the geographic graph plus one per temporal graph
//! (each temporal graph corresponds to a time-of-day interval and is built
//! from historical-pattern DTW similarities). For an input sample observed
//! at time-of-day slot `s`, the temporal branches are combined by a weighted
//! sum whose weights decay with the circular distance between `s` and each
//! branch's interval; the result is concatenated with the geographic
//! branch's output to form the block's embedding.

use crate::{Activation, ChebBasis, ChebGcn, ParamId, ParamStore, Session};
use st_autodiff::Var;
use st_graph::{interval_weights, scaled_laplacian_from_adjacency, Interval};
use st_tensor::{Matrix, StRng};

/// The heterogeneous graph-convolution block.
///
/// Output width is `2 × gcn_dim` when temporal graphs are present
/// (geographic ‖ temporal) and `gcn_dim` otherwise.
///
/// At construction the block turns every adjacency (geographic plus the M
/// temporal graphs) into a scaled Laplacian and a precomputed
/// [`ChebBasis`]; that per-graph fan-out runs across `st-par` workers, with
/// each graph processed wholly by one worker so the result is bit-identical
/// at any thread count. [`HgcnBlock::forward`] then spends one constant
/// matmul per Chebyshev order per graph.
#[derive(Debug, Clone)]
pub struct HgcnBlock {
    geo: ChebGcn,
    gate: Option<ParamId>,
    temporal: Vec<ChebGcn>,
    geo_basis: ChebBasis,
    temporal_bases: Vec<ChebBasis>,
    intervals: Vec<Interval>,
    // interval_weights(slot, …, tau) for every time-of-day slot, precomputed
    // at construction so the training hot loop never allocates for them.
    weight_cache: Vec<Vec<f64>>,
    slots_per_day: usize,
    num_nodes: usize,
}

impl HgcnBlock {
    /// Builds the block from pre-computed adjacency matrices.
    ///
    /// `temporal_graphs` pairs each time-of-day [`Interval`] with its
    /// adjacency matrix; pass an empty vector for a plain-GCN ablation
    /// (the `GCN-LSTM-I` baseline).
    ///
    /// # Panics
    ///
    /// Panics if adjacency shapes are inconsistent or `tau <= 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StRng,
        in_dim: usize,
        gcn_dim: usize,
        k: usize,
        geo_adjacency: &Matrix,
        temporal_graphs: Vec<(Interval, Matrix)>,
        slots_per_day: usize,
        tau: f64,
        name: &str,
    ) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        let n = geo_adjacency.rows();
        assert_eq!(
            geo_adjacency.cols(),
            n,
            "geographic adjacency must be square"
        );
        for (_, adj) in &temporal_graphs {
            assert_eq!(adj.shape(), (n, n), "temporal adjacency shape mismatch");
        }

        let geo = ChebGcn::new(
            store,
            rng,
            in_dim,
            gcn_dim,
            k,
            Activation::Relu,
            &format!("{name}.geo"),
        );

        // Learnable gate on the temporal branch, initialised near zero so
        // the block starts out as a plain geographic GCN and smoothly
        // learns how much heterogeneous-graph signal to mix in. This keeps
        // the extra capacity of the temporal branch from acting as noise
        // early in training (a gated-residual refinement of the paper's
        // weighted aggregation).
        let gate = (!temporal_graphs.is_empty())
            .then(|| store.add(format!("{name}.gate"), Matrix::from_rows(&[&[0.1]])));

        // Parameter initialisation must stay strictly sequential (the RNG
        // stream defines the reproducibility contract), so only the layer
        // construction happens in this loop.
        let mut temporal = Vec::with_capacity(temporal_graphs.len());
        let mut intervals = Vec::with_capacity(temporal_graphs.len());
        for (i, (interval, _)) in temporal_graphs.iter().enumerate() {
            temporal.push(ChebGcn::new(
                store,
                rng,
                in_dim,
                gcn_dim,
                k,
                Activation::Relu,
                &format!("{name}.t{i}"),
            ));
            intervals.push(*interval);
        }

        // Per-graph fan-out: the geographic graph and the M temporal graphs
        // each need a scaled Laplacian and a Chebyshev basis. Each graph is
        // processed wholly by one st-par worker (slot-disjoint writes), so
        // the bases are bit-identical at any thread count.
        let adjacencies: Vec<&Matrix> = std::iter::once(geo_adjacency)
            .chain(temporal_graphs.iter().map(|(_, adj)| adj))
            .collect();
        let mut bases: Vec<Option<ChebBasis>> = vec![None; adjacencies.len()];
        st_par::par_chunks_mut(&mut bases, 1, |idx, slot| {
            let laplacian = scaled_laplacian_from_adjacency(adjacencies[idx]);
            slot[0] = Some(ChebBasis::new(&laplacian, k));
        });
        let mut bases = bases.into_iter().map(|b| b.expect("basis computed"));
        let geo_basis = bases.next().expect("geographic basis");

        let weight_cache = if intervals.is_empty() || slots_per_day == 0 {
            Vec::new()
        } else {
            (0..slots_per_day)
                .map(|slot| interval_weights(slot, &intervals, slots_per_day, tau))
                .collect()
        };

        Self {
            geo,
            gate,
            temporal,
            geo_basis,
            temporal_bases: bases.collect(),
            intervals,
            weight_cache,
            slots_per_day,
            num_nodes: n,
        }
    }

    /// Number of graph nodes the block was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of temporal graphs.
    pub fn num_temporal_graphs(&self) -> usize {
        self.temporal.len()
    }

    /// Embedding width `p` produced by [`HgcnBlock::forward`].
    pub fn out_dim(&self) -> usize {
        if self.temporal.is_empty() {
            self.geo.out_dim()
        } else {
            2 * self.geo.out_dim()
        }
    }

    /// The soft interval weights used for a given time-of-day slot.
    pub fn weights_for_slot(&self, slot: usize) -> Vec<f64> {
        if self.intervals.is_empty() {
            return Vec::new();
        }
        self.weights_for_slot_cached(slot).to_vec()
    }

    /// Cached (allocation-free) variant of [`HgcnBlock::weights_for_slot`].
    /// Requires at least one temporal graph.
    fn weights_for_slot_cached(&self, slot: usize) -> &[f64] {
        &self.weight_cache[slot % self.slots_per_day]
    }

    /// Computes the node embeddings `S = HGCN(x)` for a sample observed at
    /// time-of-day `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have one row per node.
    pub fn forward(&self, sess: &mut Session, store: &ParamStore, slot: usize, x: Var) -> Var {
        assert_eq!(
            sess.tape.value(x).rows(),
            self.num_nodes,
            "input must have one row per node"
        );
        let geo_out = self.geo.forward_with_basis(sess, store, &self.geo_basis, x);
        if self.temporal.is_empty() {
            return geo_out;
        }
        let weights = self.weights_for_slot_cached(slot);
        let mut acc: Option<Var> = None;
        for ((gcn, basis), &w) in self.temporal.iter().zip(&self.temporal_bases).zip(weights) {
            let out = gcn.forward_with_basis(sess, store, basis, x);
            let weighted = sess.tape.scale(out, w);
            acc = Some(match acc {
                Some(a) => sess.tape.add(a, weighted),
                None => weighted,
            });
        }
        let temporal_out = acc.expect("temporal branch list is non-empty");
        let gate = sess.var(store, self.gate.expect("gate exists with temporal graphs"));
        let gated = sess.tape.scale_var(temporal_out, gate);
        sess.tape.concat_cols(geo_out, gated)
    }

    /// [`HgcnBlock::forward`] over a batch of `slots.len()` windows.
    ///
    /// `x` is the row-stacked `(B·N) × in_dim` batch; window `b` occupies
    /// rows `[b·N, (b+1)·N)` and was observed at time-of-day `slots[b]`.
    /// The wide `N × (B·in_dim)` permutation is computed once here and
    /// shared by the geographic convolution and every temporal branch, so
    /// each Chebyshev propagation is a single packed-panel matmul over all
    /// windows. Per-window interval weights enter as a `B × 1` constant
    /// through `scale_blocks` — the same one-multiply-per-element scaling
    /// the unbatched path applies per window — and the learnable gate is
    /// one scalar shared by every window, exactly as in the single path.
    /// Block `b` of the output is bit-identical to
    /// `forward(sess, store, slots[b], window_b)`.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty or `x` is not `(B·N) × in_dim`.
    pub fn forward_batched(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        slots: &[usize],
        x: Var,
    ) -> Var {
        let b = slots.len();
        assert!(b > 0, "batched forward needs at least one window");
        assert_eq!(
            sess.tape.value(x).rows(),
            b * self.num_nodes,
            "input must have one row per (window, node) pair"
        );
        let x_wide = sess.tape.to_wide(x, b);
        let geo_out =
            self.geo
                .forward_with_basis_batched(sess, store, &self.geo_basis, x, x_wide, b);
        if self.temporal.is_empty() {
            return geo_out;
        }
        let mut acc: Option<Var> = None;
        for (branch, (gcn, basis)) in self.temporal.iter().zip(&self.temporal_bases).enumerate() {
            let out = gcn.forward_with_basis_batched(sess, store, basis, x, x_wide, b);
            let s = sess
                .tape
                .constant_col_with(b, |w| self.weights_for_slot_cached(slots[w])[branch]);
            let weighted = sess.tape.scale_blocks(out, s);
            acc = Some(match acc {
                Some(a) => sess.tape.add(a, weighted),
                None => weighted,
            });
        }
        let temporal_out = acc.expect("temporal branch list is non-empty");
        let gate = sess.var(store, self.gate.expect("gate exists with temporal graphs"));
        let gated = sess.tape.scale_var(temporal_out, gate);
        sess.tape.concat_cols(geo_out, gated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::{gaussian_adjacency, RoadNetwork};
    use st_tensor::rng;

    fn geo_adj(n: usize) -> Matrix {
        let net = RoadNetwork::corridor(n, 1.0);
        gaussian_adjacency(&net.distance_matrix(), None, 0.1)
    }

    fn temporal_pair(n: usize) -> Vec<(Interval, Matrix)> {
        // Two crude temporal graphs: "day" fully connected, "night" sparse.
        let day = Matrix::from_fn(n, n, |i, j| if i != j { 0.8 } else { 0.0 });
        let night = Matrix::from_fn(n, n, |i, j| {
            if i != j && i.abs_diff(j) == 1 {
                0.5
            } else {
                0.0
            }
        });
        vec![
            (Interval::new(72, 216), day), // 6:00–18:00
            (Interval::new(0, 72), night), // 0:00–6:00 (rest of day wraps)
        ]
    }

    #[test]
    fn out_dim_doubles_with_temporal_graphs() {
        let mut store = ParamStore::new();
        let block = HgcnBlock::new(
            &mut store,
            &mut rng(1),
            2,
            4,
            3,
            &geo_adj(5),
            temporal_pair(5),
            288,
            4.0,
            "hgcn",
        );
        assert_eq!(block.out_dim(), 8);
        assert_eq!(block.num_temporal_graphs(), 2);

        let mut store2 = ParamStore::new();
        let plain = HgcnBlock::new(
            &mut store2,
            &mut rng(1),
            2,
            4,
            3,
            &geo_adj(5),
            Vec::new(),
            288,
            4.0,
            "gcn",
        );
        assert_eq!(plain.out_dim(), 4);
    }

    #[test]
    fn forward_shapes() {
        let mut store = ParamStore::new();
        let block = HgcnBlock::new(
            &mut store,
            &mut rng(2),
            3,
            4,
            3,
            &geo_adj(6),
            temporal_pair(6),
            288,
            4.0,
            "hgcn",
        );
        let mut sess = Session::new(&store);
        let x = sess.constant(Matrix::ones(6, 3));
        let y = block.forward(&mut sess, &store, 100, x);
        assert_eq!(sess.tape.value(y).shape(), (6, 8));
        assert!(sess.tape.value(y).is_finite());
    }

    #[test]
    fn slot_changes_output_through_interval_weights() {
        let mut store = ParamStore::new();
        let block = HgcnBlock::new(
            &mut store,
            &mut rng(3),
            2,
            4,
            3,
            &geo_adj(5),
            temporal_pair(5),
            288,
            4.0,
            "hgcn",
        );
        let x0 = Matrix::from_fn(5, 2, |r, c| (r + c) as f64 * 0.3);
        let run = |slot: usize| {
            let mut sess = Session::new(&store);
            let x = sess.constant(x0.clone());
            let y = block.forward(&mut sess, &store, slot, x);
            sess.tape.value(y).clone()
        };
        let noon = run(144);
        let midnight = run(12);
        assert!(
            noon.max_abs_diff(&midnight) > 1e-9,
            "slot must modulate the output"
        );
        // Geographic half is slot-independent.
        assert!(
            noon.slice_cols(0, 4)
                .max_abs_diff(&midnight.slice_cols(0, 4))
                < 1e-12
        );
    }

    #[test]
    fn weights_prefer_containing_interval() {
        let mut store = ParamStore::new();
        let block = HgcnBlock::new(
            &mut store,
            &mut rng(4),
            2,
            4,
            2,
            &geo_adj(4),
            temporal_pair(4),
            288,
            4.0,
            "hgcn",
        );
        let w_noon = block.weights_for_slot(144);
        assert!(w_noon[0] > w_noon[1]); // noon is inside the "day" interval
        let w_night = block.weights_for_slot(36);
        assert!(w_night[1] > w_night[0]);
    }

    #[test]
    fn temporal_gate_starts_small_and_receives_gradients() {
        let mut store = ParamStore::new();
        let block = HgcnBlock::new(
            &mut store,
            &mut rng(6),
            2,
            3,
            2,
            &geo_adj(4),
            temporal_pair(4),
            288,
            4.0,
            "hgcn",
        );
        let gate_id = store
            .ids()
            .find(|&id| store.name(id).ends_with(".gate"))
            .expect("gate param exists");
        assert_eq!(store.value(gate_id)[(0, 0)], 0.1);
        let mut sess = Session::new(&store);
        let x = sess.constant(Matrix::ones(4, 2));
        let y = block.forward(&mut sess, &store, 144, x);
        let loss = sess.tape.mean(y);
        sess.backward(loss);
        sess.write_grads(&mut store);
        assert!(store.grad(gate_id).max_abs() > 0.0, "gate must learn");
    }

    #[test]
    fn gradients_reach_temporal_branch_weights() {
        let mut store = ParamStore::new();
        let block = HgcnBlock::new(
            &mut store,
            &mut rng(5),
            2,
            3,
            2,
            &geo_adj(4),
            temporal_pair(4),
            288,
            4.0,
            "hgcn",
        );
        let before = store.num_scalars();
        assert!(before > 0);
        let mut sess = Session::new(&store);
        let x = sess.constant(Matrix::ones(4, 2));
        let y = block.forward(&mut sess, &store, 144, x);
        let loss = sess.tape.mean(y);
        sess.backward(loss);
        sess.write_grads(&mut store);
        // At least one temporal parameter must receive non-zero gradient.
        let got_temporal_grad = store
            .ids()
            .filter(|&id| store.name(id).contains(".t0"))
            .any(|id| store.grad(id).max_abs() > 0.0);
        assert!(got_temporal_grad, "temporal branch got no gradient");
    }
}
