//! Seeded input generation for property cases.

use st_tensor::{Matrix, StRng, Tensor3};

/// Source of random test inputs for one property case.
///
/// Thin convenience wrapper over [`StRng`]: each case gets its own `Gen`
/// seeded from the suite seed and the case index, so any failure can be
/// replayed from the numbers in the panic message.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: StRng,
}

impl Gen {
    /// Creates a generator for the given case seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StRng::seed_from_u64(seed),
        }
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut StRng {
        &mut self.rng
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Vector of `len` uniform draws from `[lo, hi)`.
    pub fn vec_f64(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// Uniform index into a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.usize_in(0, len)
    }

    /// Uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// `rows × cols` matrix with entries uniform in `[lo, hi)`.
    pub fn matrix(&mut self, rows: usize, cols: usize, lo: f64, hi: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.f64_in(lo, hi))
    }

    /// `n × d × t` tensor with entries uniform in `[lo, hi)`.
    pub fn tensor3(&mut self, n: usize, d: usize, t: usize, lo: f64, hi: f64) -> Tensor3 {
        let mut cube = Tensor3::zeros(n, d, t);
        for x in cube.as_mut_slice() {
            *x = self.f64_in(lo, hi);
        }
        cube
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_inputs() {
        let mut a = Gen::new(5);
        let mut b = Gen::new(5);
        assert_eq!(a.vec_f64(10, -1.0, 1.0), b.vec_f64(10, -1.0, 1.0));
        assert_eq!(a.usize_in(0, 100), b.usize_in(0, 100));
    }

    #[test]
    fn matrix_has_requested_shape_and_bounds() {
        let m = Gen::new(1).matrix(3, 4, -2.0, 2.0);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| (-2.0..2.0).contains(&x)));
    }

    #[test]
    fn tensor3_fills_every_entry() {
        let t = Gen::new(2).tensor3(2, 3, 4, 1.0, 2.0);
        assert_eq!(t.shape(), (2, 3, 4));
        assert!(t.as_slice().iter().all(|&x| (1.0..2.0).contains(&x)));
    }

    #[test]
    fn choose_returns_member() {
        let items = [10, 20, 30];
        let mut g = Gen::new(3);
        for _ in 0..20 {
            assert!(items.contains(g.choose(&items)));
        }
    }
}
