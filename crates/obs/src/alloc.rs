//! Heap-allocation counting for benchmarks and the training observer.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every allocation
//! (and its byte size) into process-global atomics. Install it with
//!
//! ```text
//! #[global_allocator]
//! static ALLOC: st_obs::alloc::CountingAlloc = st_obs::alloc::CountingAlloc;
//! ```
//!
//! **in a binary or test crate only** — installing it from a library would
//! silently impose the wrapper on every binary in the workspace. The
//! counters are process-wide, so measurements are only meaningful when a
//! single thread of interest allocates (the training kernels below
//! `st_par::parallel_threshold` run serially, which is what the allocation
//! benchmarks rely on) or when the whole process is the unit of account.
//! Code that merely *reads* the counters (e.g. the trainer's per-epoch
//! allocation report) sees zeros when no binary installed the allocator.
//!
//! Counting uses relaxed atomics: the counters impose no ordering and cost
//! one `fetch_add` per allocation, so the wrapper does not perturb what it
//! measures beyond the noise floor.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of heap allocations since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Bytes requested by those allocations.
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocations and bytes.
///
/// Reallocations count as one allocation of the new size (they may move and
/// copy, which is the cost the benchmarks care about); frees are not
/// tracked — the benchmarks measure allocator traffic, not live bytes.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Allocations made by the whole process so far.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Bytes requested by the whole process so far.
    pub fn allocated_bytes() -> u64 {
        ALLOCATED_BYTES.load(Ordering::Relaxed)
    }
}

// SAFETY: delegates every operation to `System`; the counter updates have no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// A point-in-time reading of the allocation counters, for measuring the
/// traffic of a code region.
///
/// # Examples
///
/// ```
/// use st_obs::alloc::AllocSnapshot;
///
/// let before = AllocSnapshot::take();
/// let v = vec![0u8; 4096];
/// drop(v);
/// // Counts are zero here unless CountingAlloc is the global allocator.
/// let _ = before.allocations_since();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    allocations: u64,
    bytes: u64,
}

impl AllocSnapshot {
    /// Reads the current counters.
    pub fn take() -> Self {
        Self {
            allocations: CountingAlloc::allocations(),
            bytes: CountingAlloc::allocated_bytes(),
        }
    }

    /// Allocations made since this snapshot.
    pub fn allocations_since(&self) -> u64 {
        CountingAlloc::allocations() - self.allocations
    }

    /// Bytes requested since this snapshot.
    pub fn bytes_since(&self) -> u64 {
        CountingAlloc::allocated_bytes() - self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_are_monotonic() {
        // The counting allocator is not installed in the library's own test
        // binary, so the counters stay frozen — deltas are exactly zero.
        let snap = AllocSnapshot::take();
        let _v = vec![1u8; 128];
        assert_eq!(snap.allocations_since(), snap.allocations_since());
        let later = AllocSnapshot::take();
        assert!(later.allocations >= snap.allocations);
    }
}
