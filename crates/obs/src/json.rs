//! A minimal recursive-descent JSON parser.
//!
//! Exists so CI and tests can structurally validate emitted Chrome-trace
//! files (see [`crate::trace::validate_chrome_trace`]) without pulling in
//! serde — the workspace is dependency-free by charter. It parses the full
//! JSON grammar into a [`Json`] tree; numbers become `f64` (ample for
//! microsecond timestamps), objects keep their key order as a `Vec` of
//! pairs (no map type needed, and duplicate keys stay visible).
//!
//! This is a *validator's* parser: small inputs, clear errors with byte
//! offsets, no streaming. It is not intended as a general-purpose JSON
//! library.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as key/value pairs in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')
                                    .and_then(|()| self.expect(b'u'))
                                    .map_err(|_| self.err("lone high surrogate"))?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.bytes[digits_from] == b'0' && self.pos > digits_from + 1 {
            return Err(self.err("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("unparseable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"traceEvents":[{"name":"x","ts":1.5,"args":{"m":3}}],"ok":true}"#;
        let root = parse(doc).unwrap();
        let Json::Arr(events) = root.get("traceEvents").unwrap() else {
            panic!("not an array");
        };
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name"), Some(&Json::Str("x".into())));
        assert_eq!(events[0].get("ts"), Some(&Json::Num(1.5)));
        assert_eq!(
            events[0].get("args").unwrap().get("m"),
            Some(&Json::Num(3.0))
        );
        assert_eq!(root.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn decodes_unicode_escapes() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "nul",
            "[1] trailing",
            "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[ ]").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = parse("[1, }").unwrap_err();
        assert!(err.contains("byte 4"), "{err}");
    }
}
