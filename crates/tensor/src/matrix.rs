//! Dense row-major matrix of `f64` values.
//!
//! [`Matrix`] is the workhorse value type of the whole workspace: autodiff
//! tape nodes, GCN propagation, LSTM states and dataset slices are all
//! matrices. The matmul family runs on cache-blocked packed-panel
//! microkernels (see the `MR`/`NR`/`KC` constants) that are branch-free in
//! the inner loop and bit-identical to the retained naive references
//! ([`Matrix::matmul_naive`] and friends) for any thread count.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// Output rows per microkernel register tile.
///
/// With [`NR`] this sizes the accumulator grid at `MR × NR = 16` f64 — eight
/// SSE2 vectors — leaving registers free for the broadcast lhs value and the
/// rhs row, so the tile stays resident for a whole k-panel.
pub const MR: usize = 4;

/// Output columns per microkernel register tile (see [`MR`]).
pub const NR: usize = 4;

/// Reduction-depth (k) panel length.
///
/// Packed lhs tiles are `MR × KC` f64 (8 KiB) and live on the stack, well
/// inside L1; one panel's rhs rows stream through L2.
pub const KC: usize = 256;

/// Cache-blocked packed-panel GEMM over one horizontal band of the output.
///
/// Accumulates `out[i][j] += Σ_k a_at(i, k) · rhs[k*n + j]` for the band of
/// whole output rows `row0..row0 + block.len()/n` held in `block`.
/// `a_at(i, k)` abstracts the lhs layout so one driver serves both
/// `matmul` (row reads) and `matmul_tn` (column reads); each call site gets
/// a monomorphised copy with the packing loop inlined.
///
/// Exactness contract: every output element accumulates its k-terms in
/// ascending order through a single accumulator — carried through `out`
/// between k-panels — so the result is bit-identical to the naive triple
/// loop regardless of the band decomposition (thread count) or the
/// `MR`/`NR`/`KC` tile sizes. The inner loop is branch-free: zero lhs
/// values are multiplied through, never skipped, so `0·NaN` and `0·∞`
/// propagate as IEEE 754 requires.
#[inline(always)]
fn gemm_band(
    a_at: impl Fn(usize, usize) -> f64,
    kk: usize,
    rhs: &[f64],
    n: usize,
    row0: usize,
    block: &mut [f64],
) {
    let nrows = block.len() / n;
    let mut apack = [0.0f64; MR * KC];
    let mut kp = 0;
    while kp < kk {
        let kc = KC.min(kk - kp);
        let mut it = 0;
        while it < nrows {
            let mr = MR.min(nrows - it);
            // Pack the lhs tile k-major: apack[k*MR + r] = A[row0+it+r][kp+k].
            // Rows past `mr` are zero-padded; their accumulators are computed
            // but never stored.
            for (k, col) in apack.chunks_exact_mut(MR).take(kc).enumerate() {
                for (r, slot) in col.iter_mut().enumerate() {
                    *slot = if r < mr {
                        a_at(row0 + it + r, kp + k)
                    } else {
                        0.0
                    };
                }
            }
            let mut j = 0;
            while j + NR <= n {
                // Full-width microkernel: an MR×NR register tile swept over
                // the k-panel, 4-wide accumulator rows the compiler
                // autovectorises.
                let mut acc = [[0.0f64; NR]; MR];
                for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                    let row = &block[(it + r) * n + j..(it + r) * n + j + NR];
                    acc_row.copy_from_slice(row);
                }
                for k in 0..kc {
                    let a = &apack[k * MR..(k + 1) * MR];
                    let b = &rhs[(kp + k) * n + j..(kp + k) * n + j + NR];
                    for (acc_row, &ar) in acc.iter_mut().zip(a) {
                        for (slot, &bc) in acc_row.iter_mut().zip(b) {
                            *slot += ar * bc;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    let row = &mut block[(it + r) * n + j..(it + r) * n + j + NR];
                    row.copy_from_slice(acc_row);
                }
                j += NR;
            }
            if j < n {
                // Column tail (n not a multiple of NR): same ascending-k
                // per-element accumulation at partial width.
                let ncols = n - j;
                let mut acc = [[0.0f64; NR]; MR];
                for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                    let row = &block[(it + r) * n + j..(it + r) * n + j + ncols];
                    acc_row[..ncols].copy_from_slice(row);
                }
                for k in 0..kc {
                    let a = &apack[k * MR..(k + 1) * MR];
                    let b = &rhs[(kp + k) * n + j..(kp + k) * n + j + ncols];
                    for (acc_row, &ar) in acc.iter_mut().zip(a) {
                        for (slot, &bc) in acc_row.iter_mut().zip(b) {
                            *slot += ar * bc;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    let row = &mut block[(it + r) * n + j..(it + r) * n + j + ncols];
                    row.copy_from_slice(&acc_row[..ncols]);
                }
            }
            it += mr;
        }
        kp += kc;
    }
}

/// [`gemm_band`]'s sibling for `self · rhsᵀ`: both operands are walked along
/// k in row-major order, so the rhs tile is packed k-major instead.
///
/// Accumulates `out[i][j] += Σ_k lhs[i*lc + k] · rhs[j*lc + k]` for the band
/// of whole output rows starting at `row0`; `n` is the rhs row count (the
/// output width). The same exactness contract as [`gemm_band`] holds:
/// single accumulator per element, ascending k.
#[inline(always)]
fn gemm_band_nt(lhs: &[f64], lc: usize, rhs: &[f64], n: usize, row0: usize, block: &mut [f64]) {
    let nrows = block.len() / n;
    let mut bpack = [0.0f64; NR * KC];
    let mut kp = 0;
    while kp < lc {
        let kc = KC.min(lc - kp);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            // Pack the rhs tile k-major: bpack[k*NR + c] = B[j+c][kp+k],
            // zero-padding columns past `nr`.
            for (k, row) in bpack.chunks_exact_mut(NR).take(kc).enumerate() {
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot = if c < nr {
                        rhs[(j + c) * lc + kp + k]
                    } else {
                        0.0
                    };
                }
            }
            let mut it = 0;
            while it < nrows {
                let mr = MR.min(nrows - it);
                // Tail rows alias the last valid lhs row: their accumulators
                // are computed (branch-free inner loop) but never stored.
                let mut arows = [&lhs[..0]; MR];
                for (r, slot) in arows.iter_mut().enumerate() {
                    let rr = row0 + it + r.min(mr - 1);
                    *slot = &lhs[rr * lc..(rr + 1) * lc];
                }
                let mut acc = [[0.0f64; NR]; MR];
                for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                    let row = &block[(it + r) * n + j..(it + r) * n + j + nr];
                    acc_row[..nr].copy_from_slice(row);
                }
                for k in 0..kc {
                    let b = &bpack[k * NR..(k + 1) * NR];
                    for (acc_row, arow) in acc.iter_mut().zip(&arows) {
                        let a = arow[kp + k];
                        for (slot, &bc) in acc_row.iter_mut().zip(b) {
                            *slot += a * bc;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    let row = &mut block[(it + r) * n + j..(it + r) * n + j + nr];
                    row.copy_from_slice(&acc_row[..nr]);
                }
                it += mr;
            }
            j += nr;
        }
        kp += kc;
    }
}

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use st_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a matrix of ones of the given shape.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row lengths in from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds for {} rows",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {} out of bounds for {} rows",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col {} out of bounds for {} cols",
            c,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Element access returning `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Splits `out` into row blocks and runs `per_block(first_row, block)`
    /// for each — serially below the work threshold, across `st-par`
    /// workers above it. Every output row is produced wholly by one call of
    /// `per_block`, so results are bit-identical for any thread count as
    /// long as `per_block` itself is deterministic per row.
    fn rowwise_product(
        out: &mut Matrix,
        flops: usize,
        per_block: impl Fn(usize, &mut [f64]) + Sync,
    ) {
        let out_cols = out.cols;
        if out.rows == 0 || out_cols == 0 {
            return;
        }
        let workers = st_par::num_threads();
        if workers <= 1 || flops < crate::parallel_threshold() {
            per_block(0, &mut out.data);
            return;
        }
        // Aim for a few blocks per worker so a slow block can't straggle.
        let block_rows = out.rows.div_ceil(workers * 4).max(1);
        st_par::par_chunks_mut(&mut out.data, block_rows * out_cols, |idx, block| {
            per_block(idx * block_rows, block);
        });
    }

    /// Matrix product `self · rhs`.
    ///
    /// Row-blocked and parallelised across `st-par` workers above the
    /// [`crate::parallel_threshold`] work estimate; results are
    /// bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_body(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a caller-provided buffer.
    ///
    /// `out` is fully overwritten (its prior contents may be arbitrary, e.g.
    /// a recycled pool buffer). Bit-identical to `matmul` for any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out` is not
    /// `self.rows() × rhs.cols()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_into output shape mismatch"
        );
        out.fill(0.0);
        self.matmul_body(rhs, out);
    }

    fn matmul_body(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let _span = st_obs::span!("tensor.matmul", m, k, n);
        let flops = self.rows * self.cols * rhs.cols;
        let lc = self.cols;
        Self::rowwise_product(out, flops, |row0, block| {
            gemm_band(
                |i, k| self.data[i * lc + k],
                lc,
                &rhs.data,
                rhs.cols,
                row0,
                block,
            );
        });
    }

    /// Reference `self · rhs`: the textbook scalar i-j-k triple loop.
    ///
    /// Retained as ground truth for the blocked kernels (which must match it
    /// bit for bit — see `tests/kernel_properties.rs`) and as the scalar
    /// baseline of the `bench_kernels` GFLOP/s scoreboard. Always serial.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * rhs.data[k * rhs.cols + j];
                }
                out.data[i * rhs.cols + j] = acc;
            }
        }
        out
    }

    /// Reference `selfᵀ · rhs` triple loop (see [`Matrix::matmul_naive`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for i in 0..self.cols {
            for j in 0..rhs.cols {
                let mut acc = 0.0;
                for k in 0..self.rows {
                    acc += self.data[k * self.cols + i] * rhs.data[k * rhs.cols + j];
                }
                out.data[i * rhs.cols + j] = acc;
            }
        }
        out
    }

    /// Reference `self · rhsᵀ` triple loop (see [`Matrix::matmul_naive`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            for j in 0..rhs.rows {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * rhs.data[j * rhs.cols + k];
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Matrix product `selfᵀ · rhs` without materialising the transpose.
    ///
    /// Row-blocked over the *output* rows (columns of `self`), each
    /// accumulated over `k` in ascending order — the same per-element order
    /// as the serial path, so results are bit-identical for any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_tn_body(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] writing into a caller-provided buffer.
    ///
    /// `out` is fully overwritten. Bit-identical to `matmul_tn` for any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()` or `out` is not
    /// `self.cols() × rhs.cols()`.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, rhs.cols),
            "matmul_tn_into output shape mismatch"
        );
        out.fill(0.0);
        self.matmul_tn_body(rhs, out);
    }

    fn matmul_tn_body(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        let _span = st_obs::span!("tensor.matmul_tn", m, k, n);
        let flops = self.rows * self.cols * rhs.cols;
        let lc = self.cols;
        Self::rowwise_product(out, flops, |row0, block| {
            // Output row i is column i of `self`: the packing closure reads
            // down a column, everything else matches `matmul`.
            gemm_band(
                |i, k| self.data[k * lc + i],
                self.rows,
                &rhs.data,
                rhs.cols,
                row0,
                block,
            );
        });
    }

    /// Matrix product `self · rhsᵀ` without materialising the transpose.
    ///
    /// Row-blocked and parallelised like [`Matrix::matmul`]; bit-identical
    /// for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_body(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] writing into a caller-provided buffer.
    ///
    /// `out` is fully overwritten (its prior contents may be arbitrary, e.g.
    /// a recycled pool buffer). Bit-identical to `matmul_nt` for any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()` or `out` is not
    /// `self.rows() × rhs.rows()`.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows),
            "matmul_nt_into output shape mismatch"
        );
        out.fill(0.0);
        self.matmul_nt_body(rhs, out);
    }

    fn matmul_nt_body(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if self.cols == 0 {
            return; // empty reduction: out stays zero
        }
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let _span = st_obs::span!("tensor.matmul_nt", m, k, n);
        let flops = self.rows * self.cols * rhs.rows;
        let lc = self.cols;
        Self::rowwise_product(out, flops, |row0, block| {
            gemm_band_nt(&self.data, lc, &rhs.data, rhs.rows, row0, block);
        });
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose of `self` into `out`, fully overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `self.cols() × self.rows()`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into output shape mismatch"
        );
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Elementwise product written into `out`, fully overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if any of the three shapes differ.
    pub fn hadamard_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.zip_map_into(rhs, out, |a, b| a * b);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Overwrites `self` with the contents of `src` (a shape-checked
    /// memcpy — the bit pattern of every element is preserved exactly).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Writes `f(x)` for every element of `self` into `out`, fully
    /// overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if `out`'s shape differs from `self`'s.
    pub fn map_into(&self, out: &mut Matrix, mut f: impl FnMut(f64) -> f64) {
        assert_eq!(self.shape(), out.shape(), "map_into shape mismatch");
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
    }

    /// Combines two equal-shaped matrices elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, rhs: &Matrix, mut f: impl FnMut(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "zip_map shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Writes `f(a, b)` for every element pair into `out`, fully
    /// overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if any of the three shapes differ.
    pub fn zip_map_into(&self, rhs: &Matrix, out: &mut Matrix, mut f: impl FnMut(f64, f64) -> f64) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "zip_map shape mismatch: {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            self.shape(),
            out.shape(),
            "zip_map_into output shape mismatch"
        );
        for (o, (&a, &b)) in out.data.iter_mut().zip(self.data.iter().zip(&rhs.data)) {
            *o = f(a, b);
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds `rhs` scaled by `alpha` into `self` in place (`self += alpha * rhs`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Adds the single-row matrix `bias` to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_assign(bias);
        out
    }

    /// [`Matrix::add_row_broadcast`] written into `out`, fully overwriting
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols()` or `out`'s shape differs
    /// from `self`'s.
    pub fn add_row_broadcast_into(&self, bias: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.shape(),
            out.shape(),
            "add_row_broadcast_into output shape mismatch"
        );
        out.copy_from(self);
        out.add_row_broadcast_assign(bias);
    }

    fn add_row_broadcast_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Column vector containing the sum of each row.
    pub fn sum_rows(&self) -> Matrix {
        Matrix::from_fn(self.rows, 1, |r, _| self.row(r).iter().sum())
    }

    /// Row vector containing the sum of each column.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.sum_cols_body(&mut out);
        out
    }

    /// [`Matrix::sum_cols`] written into `out`, fully overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `1 × self.cols()`.
    pub fn sum_cols_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (1, self.cols),
            "sum_cols_into output shape mismatch"
        );
        out.fill(0.0);
        self.sum_cols_body(out);
    }

    fn sum_cols_body(&self, out: &mut Matrix) {
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
    }

    /// Maximum absolute value of any element; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Horizontally concatenates `self` and `rhs` (same row count).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat row count mismatch");
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(rhs.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// [`Matrix::hcat`] written into `out`, fully overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or `out` is not
    /// `self.rows() × (self.cols() + rhs.cols())`.
    pub fn hcat_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "hcat row count mismatch");
        let cols = self.cols + rhs.cols;
        assert_eq!(
            out.shape(),
            (self.rows, cols),
            "hcat_into output shape mismatch"
        );
        for r in 0..self.rows {
            let out_row = &mut out.data[r * cols..(r + 1) * cols];
            out_row[..self.cols].copy_from_slice(self.row(r));
            out_row[self.cols..].copy_from_slice(rhs.row(r));
        }
    }

    /// Vertically concatenates `self` and `rhs` (same column count).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "vcat column count mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns columns `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols range out of bounds"
        );
        Matrix::from_fn(self.rows, end - start, |r, c| self[(r, start + c)])
    }

    /// Columns `[start, end)` written into `out`, fully overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `out` is not
    /// `self.rows() × (end - start)`.
    pub fn slice_cols_into(&self, start: usize, end: usize, out: &mut Matrix) {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols range out of bounds"
        );
        let width = end - start;
        assert_eq!(
            out.shape(),
            (self.rows, width),
            "slice_cols_into output shape mismatch"
        );
        for r in 0..self.rows {
            let src = &self.data[r * self.cols + start..r * self.cols + end];
            out.data[r * width..(r + 1) * width].copy_from_slice(src);
        }
    }

    /// Returns rows `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows range out of bounds"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Rows `[start, end)` written into `out`, fully overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `out` is not
    /// `(end - start) × self.cols()`.
    pub fn slice_rows_into(&self, start: usize, end: usize, out: &mut Matrix) {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows range out of bounds"
        );
        assert_eq!(
            out.shape(),
            (end - start, self.cols),
            "slice_rows_into output shape mismatch"
        );
        out.data
            .copy_from_slice(&self.data[start * self.cols..end * self.cols]);
    }

    /// Vertically stacks `blocks` same-shaped matrices into one
    /// `(B·rows) × cols` matrix: block `b` occupies rows
    /// `[b·rows, (b+1)·rows)`. This is the canonical "row-stacked" batched
    /// layout: every row-local kernel (elementwise ops, right-multiplies by
    /// a shared weight, per-row softmax) applied to the stack is bit-equal
    /// to applying it to each block separately.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or the shapes differ.
    pub fn stack_rows(blocks: &[&Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "stack_rows needs at least one block");
        let (rows, cols) = blocks[0].shape();
        let mut out = Matrix::zeros(blocks.len() * rows, cols);
        Matrix::stack_rows_into(blocks, &mut out);
        out
    }

    /// [`Matrix::stack_rows`] written into `out`, fully overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty, the block shapes differ, or `out` is
    /// not `(B·rows) × cols`.
    pub fn stack_rows_into(blocks: &[&Matrix], out: &mut Matrix) {
        assert!(!blocks.is_empty(), "stack_rows needs at least one block");
        let (rows, cols) = blocks[0].shape();
        assert_eq!(
            out.shape(),
            (blocks.len() * rows, cols),
            "stack_rows_into output shape mismatch"
        );
        for (b, block) in blocks.iter().enumerate() {
            assert_eq!(block.shape(), (rows, cols), "stack_rows shape mismatch");
            out.data[b * rows * cols..(b + 1) * rows * cols].copy_from_slice(&block.data);
        }
    }

    /// Row-stacked `(B·N) × F` batch → wide `N × (B·F)` layout:
    /// `out[(i, b·F + j)] = self[(b·N + i, j)]`. Pure f64 moves (one
    /// `memcpy` per `(block, row)` pair), so the permutation is exact.
    ///
    /// The wide layout puts every window side by side column-wise, which
    /// lets a graph propagation `T @ X` over all B windows run as a single
    /// packed-panel matmul over the widened right-hand side.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or does not divide `self.rows()`, or if
    /// `out` is not `(rows/B) × (B·cols)`.
    pub fn wide_from_stacked_into(&self, blocks: usize, out: &mut Matrix) {
        assert!(
            blocks > 0 && self.rows % blocks == 0,
            "wide_from_stacked: blocks {blocks} does not divide {} rows",
            self.rows
        );
        let n = self.rows / blocks;
        let f = self.cols;
        assert_eq!(
            out.shape(),
            (n, blocks * f),
            "wide_from_stacked_into output shape mismatch"
        );
        let wide = blocks * f;
        for b in 0..blocks {
            for i in 0..n {
                let src = &self.data[(b * n + i) * f..(b * n + i + 1) * f];
                out.data[i * wide + b * f..i * wide + (b + 1) * f].copy_from_slice(src);
            }
        }
    }

    /// Owning wrapper around [`Matrix::wide_from_stacked_into`].
    pub fn wide_from_stacked(&self, blocks: usize) -> Matrix {
        assert!(
            blocks > 0 && self.rows % blocks == 0,
            "wide_from_stacked: blocks {blocks} does not divide {} rows",
            self.rows
        );
        let mut out = Matrix::zeros(self.rows / blocks, blocks * self.cols);
        self.wide_from_stacked_into(blocks, &mut out);
        out
    }

    /// Inverse of [`Matrix::wide_from_stacked_into`]: wide `N × (B·F)` →
    /// row-stacked `(B·N) × F`, `out[(b·N + i, j)] = self[(i, b·F + j)]`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or does not divide `self.cols()`, or if
    /// `out` is not `(B·rows) × (cols/B)`.
    pub fn stacked_from_wide_into(&self, blocks: usize, out: &mut Matrix) {
        assert!(
            blocks > 0 && self.cols % blocks == 0,
            "stacked_from_wide: blocks {blocks} does not divide {} cols",
            self.cols
        );
        let n = self.rows;
        let f = self.cols / blocks;
        assert_eq!(
            out.shape(),
            (blocks * n, f),
            "stacked_from_wide_into output shape mismatch"
        );
        for b in 0..blocks {
            for i in 0..n {
                let src = &self.data[i * self.cols + b * f..i * self.cols + (b + 1) * f];
                out.data[(b * n + i) * f..(b * n + i + 1) * f].copy_from_slice(src);
            }
        }
    }

    /// Owning wrapper around [`Matrix::stacked_from_wide_into`].
    pub fn stacked_from_wide(&self, blocks: usize) -> Matrix {
        assert!(
            blocks > 0 && self.cols % blocks == 0,
            "stacked_from_wide: blocks {blocks} does not divide {} cols",
            self.cols
        );
        let mut out = Matrix::zeros(blocks * self.rows, self.cols / blocks);
        self.stacked_from_wide_into(blocks, &mut out);
        out
    }

    /// Whether all elements are finite (no NaN / ±∞).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum elementwise absolute difference between two matrices.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            let max_cols = 8;
            for (j, v) in self.row(r).iter().take(max_cols).enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(0), vec![1.0, 4.0]);
        assert_eq!(m.get(5, 0), None);
        assert_eq!(m.get(1, 1), Some(5.0));
    }

    #[test]
    fn filled_and_identity() {
        assert_eq!(Matrix::filled(2, 2, 3.0).sum(), 12.0);
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[5.0], &[2.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[5.0]]));
    }

    #[test]
    fn zero_times_nonfinite_propagates() {
        // Regression: the old inner loop skipped `a == 0.0`, silently
        // dropping `0·NaN` and `0·∞` contributions. IEEE 754 requires them
        // to poison the output element.
        let zero_row = Matrix::from_rows(&[&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0]]);
        let rhs = Matrix::from_rows(&[&[1.0, 2.0], &[f64::NAN, 3.0], &[4.0, f64::INFINITY]]);
        let out = zero_row.matmul(&rhs);
        // Row 0 hits NaN via 0·NaN and NaN via 0·∞ − … (NaN + finite).
        assert!(
            out[(0, 0)].is_nan(),
            "0·NaN must propagate, got {}",
            out[(0, 0)]
        );
        assert!(
            out[(0, 1)].is_nan(),
            "0·∞ must propagate, got {}",
            out[(0, 1)]
        );
        // And the blocked kernel must agree with the naive reference on the
        // non-finite pattern, bit for bit.
        let naive = zero_row.matmul_naive(&rhs);
        for (a, b) in out.as_slice().iter().zip(naive.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Same contract for the transpose kernels.
        let tn = zero_row.transpose().matmul_tn(&rhs);
        assert!(tn[(0, 0)].is_nan());
        let nt = zero_row.matmul_nt(&rhs.transpose());
        assert!(nt[(0, 0)].is_nan());
    }

    #[test]
    fn blocked_kernels_match_naive_references() {
        // Shapes straddling the MR/NR/KC tile edges; values span magnitudes
        // so any reassociation in the blocked kernels would change bits.
        let mut rng = crate::rng(77);
        let mut gen = |r: usize, c: usize| {
            Matrix::from_fn(r, c, |_, _| {
                (rng.gen_f64() - 0.5) * 10f64.powi((rng.next_u64() % 9) as i32 - 4)
            })
        };
        for (m, k, n) in [
            (1, 1, 1),
            (1, 7, 5),
            (5, 3, 1),
            (4, 4, 4),
            (6, 9, 10),
            (13, 17, 11),
            (32, 300, 9), // k = 300 > KC: the reduction spans two k-panels
        ] {
            let a = gen(m, k);
            let b = gen(k, n);
            let at = gen(k, m);
            let bt = gen(n, k);
            for (name, blocked, naive) in [
                ("matmul", a.matmul(&b), a.matmul_naive(&b)),
                ("matmul_tn", at.matmul_tn(&b), at.matmul_tn_naive(&b)),
                ("matmul_nt", a.matmul_nt(&bt), a.matmul_nt_naive(&bt)),
            ] {
                assert_eq!(blocked.shape(), naive.shape(), "{name} {m}x{k}x{n}");
                for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{name} {m}x{k}x{n} diverged from naive: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[0.0, 3.0]]);
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[0.0, 3.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(&a - &b, Matrix::from_rows(&[&[-2.0, -6.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, -4.0]]));
        assert_eq!(-&a, Matrix::from_rows(&[&[-1.0, 2.0]]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::filled(2, 2, 2.0));
    }

    #[test]
    fn row_broadcast_bias() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        assert_eq!(
            x.add_row_broadcast(&b),
            Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]])
        );
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.sum_rows(), Matrix::from_rows(&[&[3.0], &[7.0]]));
        assert_eq!(m.sum_cols(), Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - 30.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn concat_and_slice() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let h = a.hcat(&b);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(h.slice_cols(2, 3), b);
        assert_eq!(h.slice_cols(0, 2), a);

        let v = a.vcat(&Matrix::from_rows(&[&[7.0, 8.0]]));
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[7.0, 8.0]);
        assert_eq!(v.slice_rows(0, 2), a);
    }

    #[test]
    fn finite_checks() {
        let mut m = Matrix::ones(1, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn max_abs_diff_reports_largest_gap() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.5, -1.0]]);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }

    #[test]
    fn empty_matrix_behaviour() {
        let m = Matrix::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max_abs(), 0.0);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn clone_preserves_matrix() {
        let m = Matrix::from_rows(&[&[1.0, 2.5], &[-3.0, 0.0]]);
        let cloned = m.clone();
        assert_eq!(m, cloned);
    }

    #[test]
    fn into_kernels_match_allocating_kernels() {
        // Every `_into` variant must produce the same bits as its
        // allocating twin even when the output buffer starts out dirty.
        let mut rng = crate::rng(42);
        let a = Matrix::from_fn(4, 3, |_, _| rng.gen_f64() - 0.5);
        let b = Matrix::from_fn(3, 5, |_, _| rng.gen_f64() - 0.5);
        let c = Matrix::from_fn(4, 5, |_, _| rng.gen_f64() - 0.5);
        let d = Matrix::from_fn(2, 3, |_, _| rng.gen_f64() - 0.5);
        let e = Matrix::from_fn(4, 3, |_, _| rng.gen_f64() - 0.5);
        let bias = Matrix::from_fn(1, 3, |_, _| rng.gen_f64() - 0.5);
        let dirty = |r, c| Matrix::filled(r, c, f64::NAN);

        let mut out = dirty(4, 5);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));

        let mut out = dirty(3, 5);
        a.matmul_tn_into(&c, &mut out);
        assert_eq!(out, a.matmul_tn(&c));

        let mut out = dirty(4, 2);
        a.matmul_nt_into(&d, &mut out);
        assert_eq!(out, a.matmul_nt(&d));

        let mut out = dirty(3, 4);
        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());

        let mut out = dirty(4, 3);
        a.map_into(&mut out, |x| x.tanh());
        assert_eq!(out, a.map(|x| x.tanh()));

        let mut out = dirty(4, 3);
        a.zip_map_into(&e, &mut out, |x, y| x - y);
        assert_eq!(out, a.zip_map(&e, |x, y| x - y));

        let mut out = dirty(4, 3);
        a.hadamard_into(&e, &mut out);
        assert_eq!(out, a.hadamard(&e));

        let mut out = dirty(1, 3);
        a.sum_cols_into(&mut out);
        assert_eq!(out, a.sum_cols());

        let mut out = dirty(4, 6);
        a.hcat_into(&e, &mut out);
        assert_eq!(out, a.hcat(&e));

        let mut out = dirty(4, 2);
        a.slice_cols_into(1, 3, &mut out);
        assert_eq!(out, a.slice_cols(1, 3));

        let mut out = dirty(4, 3);
        a.add_row_broadcast_into(&bias, &mut out);
        assert_eq!(out, a.add_row_broadcast(&bias));
    }

    #[test]
    fn fill_and_copy_from() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.fill(7.0);
        assert_eq!(m, Matrix::filled(2, 2, 7.0));
        let src = Matrix::from_rows(&[&[-1.0, 0.5], &[2.0, -0.0]]);
        m.copy_from(&src);
        assert_eq!(m.as_slice()[3].to_bits(), (-0.0_f64).to_bits());
        assert_eq!(m, src);
    }

    #[test]
    #[should_panic(expected = "matmul_into output shape mismatch")]
    fn matmul_into_rejects_wrong_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn matmul_family_is_bitwise_thread_invariant() {
        // Force the parallel path at a checkable size and compare against
        // the serial path bit for bit, across the whole matmul family.
        // Entries span many magnitudes so order-sensitive summation would
        // show up immediately.
        let gen = |seed: u64, r: usize, c: usize| {
            let mut rng = crate::rng(seed);
            Matrix::from_fn(r, c, |i, j| {
                let x = rng.gen_f64() - 0.5;
                // A sprinkle of exact zeros: multiplied through, never
                // skipped (the zero-skip fast path was removed because it
                // swallowed 0·NaN / 0·∞).
                if (i + j) % 7 == 0 {
                    0.0
                } else {
                    x * 10f64.powi((rng.next_u64() % 9) as i32 - 4)
                }
            })
        };
        let a = gen(1, 33, 17);
        let b = gen(2, 17, 29);
        let c = gen(3, 33, 29); // same rows as a (for tn), same cols as b? no: nt pairs below
        let d = gen(4, 21, 17); // same cols as a, for nt

        let saved = crate::parallel_threshold();
        crate::set_parallel_threshold(usize::MAX);
        let serial = (a.matmul(&b), a.matmul_tn(&c), a.matmul_nt(&d));
        crate::set_parallel_threshold(1);
        st_par::set_num_threads(4);
        let parallel = (a.matmul(&b), a.matmul_tn(&c), a.matmul_nt(&d));
        st_par::set_num_threads(0);
        crate::set_parallel_threshold(saved);

        for (name, s, p) in [
            ("matmul", &serial.0, &parallel.0),
            ("matmul_tn", &serial.1, &parallel.1),
            ("matmul_nt", &serial.2, &parallel.2),
        ] {
            assert_eq!(s.shape(), p.shape(), "{name} shape");
            for (x, y) in s.as_slice().iter().zip(p.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} diverged: {x} vs {y}");
            }
        }
    }
}
