//! st-check properties for the batched-layout helpers behind
//! `forward_batched`: `stack_rows`/`slice_rows` (row-stacking B windows)
//! and `wide_from_stacked`/`stacked_from_wide` (the `(B·N, F)` ↔
//! `(N, B·F)` permutation the graph convolutions run in).
//!
//! Two things must hold for batched inference to be bitwise-exact:
//!
//! 1. the layout moves are *pure permutations* — round-tripping through
//!    any of them reproduces the original bits, and each output element is
//!    one original element, never an arithmetic combination;
//! 2. a left-multiply against the wide layout computes each window's
//!    column block with exactly the bits of the per-window product, at
//!    every worker count — this is where the batched ChebGcn gets its
//!    bit-identity from.
//!
//! Shapes are adversarial on both axes: `B = 1`, register-tile remainders
//! around `MR`/`NR`, and `N` past the `KC` reduction-panel boundary.

use st_check::{prop_assert, prop_assert_eq, Check};
use st_tensor::{Matrix, KC, MR, NR};

#[derive(Debug, Clone)]
struct Case {
    blocks: usize,
    rows: usize,
    cols: usize,
    seed: u64,
}

fn gen_rows(g: &mut st_check::Gen) -> usize {
    // The graph-conv left-multiply reduces over N, so push N across the
    // register tiles and the KC panel edge; keep the huge case rare.
    match g.usize_in(0, 6) {
        0 => 1,
        1 => MR,
        2 => MR * 2 - 1,
        3 => NR + 1,
        4 => KC + 1,
        _ => g.usize_in(1, 40),
    }
}

fn gen_cols(g: &mut st_check::Gen) -> usize {
    match g.usize_in(0, 4) {
        0 => 1,
        1 => NR,
        2 => NR * 3 - 1,
        _ => g.usize_in(1, 24),
    }
}

fn gen_matrix(seed: u64, r: usize, c: usize) -> Matrix {
    let mut rng = st_tensor::rng(seed);
    Matrix::from_fn(r, c, |i, j| {
        if (i + 2 * j) % 5 == 0 {
            0.0
        } else {
            (rng.gen_f64() - 0.5) * 10f64.powi((rng.next_u64() % 11) as i32 - 5)
        }
    })
}

fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn layout_moves_are_exact_permutations() {
    Check::new("batched_layout_permutations")
        .cases(60)
        .run_with_shrink(
            |g| Case {
                blocks: *g.choose(&[1usize, 2, 3, 4, 16]),
                rows: gen_rows(g),
                cols: gen_cols(g),
                seed: g.u64_in(0, u64::MAX - 1),
            },
            |_| Vec::new(),
            |case| {
                let &Case {
                    blocks,
                    rows,
                    cols,
                    seed,
                } = case;
                let windows: Vec<Matrix> = (0..blocks)
                    .map(|b| gen_matrix(seed ^ (b as u64) << 17, rows, cols))
                    .collect();
                let refs: Vec<&Matrix> = windows.iter().collect();

                // stack_rows ∘ slice_rows = identity, block by block, and
                // the `_into` variant fully overwrites a poisoned buffer.
                let stacked = Matrix::stack_rows(&refs);
                prop_assert_eq!(stacked.shape(), (blocks * rows, cols));
                let mut stacked_into = Matrix::filled(blocks * rows, cols, f64::NAN);
                Matrix::stack_rows_into(&refs, &mut stacked_into);
                prop_assert!(bits_eq(&stacked, &stacked_into), "stack_rows_into differs");
                for (b, w) in windows.iter().enumerate() {
                    let slice = stacked.slice_rows(b * rows, (b + 1) * rows);
                    prop_assert!(bits_eq(&slice, w), "slice_rows lost block {b}");
                    let mut out = Matrix::filled(rows, cols, f64::NAN);
                    stacked.slice_rows_into(b * rows, (b + 1) * rows, &mut out);
                    prop_assert!(bits_eq(&out, w), "slice_rows_into lost block {b}");
                }

                // wide ↔ stacked are mutually inverse permutations: block b
                // of the wide form is window b verbatim.
                let wide = stacked.wide_from_stacked(blocks);
                prop_assert_eq!(wide.shape(), (rows, blocks * cols));
                for (b, w) in windows.iter().enumerate() {
                    for i in 0..rows {
                        for j in 0..cols {
                            prop_assert!(
                                wide[(i, b * cols + j)].to_bits() == w[(i, j)].to_bits(),
                                "wide block {b} misplaced ({i},{j})"
                            );
                        }
                    }
                }
                let back = wide.stacked_from_wide(blocks);
                prop_assert!(bits_eq(&back, &stacked), "wide→stacked not inverse");
                let mut wide_into = Matrix::filled(rows, blocks * cols, f64::NAN);
                stacked.wide_from_stacked_into(blocks, &mut wide_into);
                prop_assert!(bits_eq(&wide_into, &wide), "wide_from_stacked_into differs");
                let mut back_into = Matrix::filled(blocks * rows, cols, f64::NAN);
                wide.stacked_from_wide_into(blocks, &mut back_into);
                prop_assert!(
                    bits_eq(&back_into, &stacked),
                    "stacked_from_wide_into differs"
                );
                Ok(())
            },
        );
}

#[test]
fn wide_left_multiply_matches_per_window_products_at_any_thread_count() {
    let saved = st_tensor::parallel_threshold();
    st_tensor::set_parallel_threshold(1);

    let result = std::panic::catch_unwind(|| {
        Check::new("wide_left_multiply_per_window")
            .cases(30)
            .run_with_shrink(
                |g| Case {
                    blocks: *g.choose(&[1usize, 2, 3, 4, 16]),
                    rows: gen_rows(g),
                    cols: gen_cols(g),
                    seed: g.u64_in(0, u64::MAX - 1),
                },
                |_| Vec::new(),
                |case| {
                    let &Case {
                        blocks,
                        rows,
                        cols,
                        seed,
                    } = case;
                    let lap = gen_matrix(seed ^ 0xA5A5, rows, rows);
                    let windows: Vec<Matrix> = (0..blocks)
                        .map(|b| gen_matrix(seed ^ (b as u64) << 17, rows, cols))
                        .collect();
                    let refs: Vec<&Matrix> = windows.iter().collect();
                    let wide = Matrix::stack_rows(&refs).wide_from_stacked(blocks);

                    for threads in [1usize, 2, 4] {
                        st_par::set_num_threads(threads);
                        let product = lap.matmul(&wide).stacked_from_wide(blocks);
                        for (b, w) in windows.iter().enumerate() {
                            let got = product.slice_rows(b * rows, (b + 1) * rows);
                            let want = lap.matmul(w);
                            prop_assert!(
                                bits_eq(&got, &want),
                                "window {b} of L·wide differs from L·X_b at {threads} threads"
                            );
                        }
                    }
                    Ok(())
                },
            );
    });

    st_par::set_num_threads(0);
    st_tensor::set_parallel_threshold(saved);
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}
