//! The inference engine: a single thread owning the [`OnlineForecaster`].
//!
//! All worker threads funnel their work through one bounded channel into
//! this thread, which applies observations in arrival order and serves
//! forecasts. Because the rolling window only changes on `/observe`, every
//! forecast at the same **window version** is identical — the engine keeps
//! the last computed forecast (and imputed window) per version and serves
//! repeats from that cache instead of re-running the autodiff tape. Worker
//! requests that race between two observations coalesce onto one tape run.

use crate::metrics::Metrics;
use rihgcn_core::OnlineForecaster;
use st_tensor::Matrix;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Immutable facts about the served model, captured before the forecaster
/// moves into the engine thread.
#[derive(Debug, Clone, Copy)]
pub struct ModelInfo {
    /// Graph nodes `N`.
    pub nodes: usize,
    /// Features per node `F`.
    pub features: usize,
    /// History window length `T`.
    pub history: usize,
    /// Forecast horizon `T'`.
    pub horizon: usize,
    /// Time-of-day slots per day.
    pub slots_per_day: usize,
}

impl ModelInfo {
    /// Reads the static facts off a forecaster.
    pub fn of(online: &OnlineForecaster) -> Self {
        Self {
            nodes: online.model().num_nodes(),
            features: online.model().num_features(),
            history: online.history(),
            horizon: online.horizon(),
            slots_per_day: online.model().slots_per_day(),
        }
    }
}

/// Engine-side failure modes, mapped to HTTP statuses by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The rolling window is not full yet (maps to 409).
    NotReady {
        /// Observations currently buffered.
        buffered: usize,
        /// Window length required.
        needed: usize,
    },
    /// The observation was rejected by validation (maps to 400).
    Rejected(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NotReady { buffered, needed } => {
                write!(f, "window not full yet ({buffered}/{needed} observations)")
            }
            EngineError::Rejected(msg) => write!(f, "observation rejected: {msg}"),
        }
    }
}

/// Acknowledgement of an applied observation.
#[derive(Debug, Clone, Copy)]
pub struct ObserveAck {
    /// Window version after the push.
    pub version: u64,
    /// Observations buffered after the push.
    pub buffered: usize,
    /// Whether a full window is now available.
    pub ready: bool,
}

/// A forecast (or imputed window) tied to the window version it was
/// computed at. The steps are shared, not cloned, across coalesced readers.
#[derive(Debug, Clone)]
pub struct StepsReply {
    /// Window version the steps were computed at.
    pub version: u64,
    /// Per-step `N × F` matrices in original units.
    pub steps: Arc<Vec<Matrix>>,
}

/// Live window state for `/healthz`.
#[derive(Debug, Clone, Copy)]
pub struct WindowState {
    /// Observations currently buffered.
    pub buffered: usize,
    /// Whether a full window is available.
    pub ready: bool,
    /// Current window version.
    pub version: u64,
}

/// One unit of work for the engine thread.
pub enum EngineRequest {
    /// Push an observation into the rolling window.
    Observe {
        /// `N × F` measurements in original units.
        values: Matrix,
        /// `N × F` binary mask.
        mask: Matrix,
        /// Time-of-day slot.
        slot: usize,
        /// Reply channel.
        reply: Sender<Result<ObserveAck, EngineError>>,
    },
    /// Multi-horizon forecast in original units.
    Forecast {
        /// Reply channel.
        reply: Sender<Result<StepsReply, EngineError>>,
    },
    /// Imputed history window in original units.
    Imputed {
        /// Reply channel.
        reply: Sender<Result<StepsReply, EngineError>>,
    },
    /// Window state snapshot.
    Health {
        /// Reply channel.
        reply: Sender<WindowState>,
    },
}

/// How long a worker waits for the engine before reporting a 500.
pub const ENGINE_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// A handle for submitting work to the engine thread.
#[derive(Clone)]
pub struct EngineHandle {
    tx: SyncSender<EngineRequest>,
    metrics: Arc<Metrics>,
}

impl EngineHandle {
    /// Submits a request; fails if the engine has shut down.
    ///
    /// The queue-depth gauge is incremented here and decremented when the
    /// engine dequeues the request, so `/metrics` shows live backpressure.
    ///
    /// # Errors
    ///
    /// Returns an error message when the engine thread is gone.
    pub fn submit(&self, req: EngineRequest) -> Result<(), String> {
        self.metrics.queue_enter();
        self.tx.send(req).map_err(|_| {
            self.metrics.queue_drop();
            "inference engine has shut down".to_string()
        })
    }
}

/// Single-slot cache: the last value computed, tagged with its version.
struct VersionCache {
    version: u64,
    value: Arc<Vec<Matrix>>,
}

struct Engine {
    online: OnlineForecaster,
    metrics: Arc<Metrics>,
    forecast_cache: Option<VersionCache>,
    imputed_cache: Option<VersionCache>,
}

impl Engine {
    fn handle(&mut self, req: EngineRequest) {
        self.metrics.queue_exit();
        match req {
            EngineRequest::Observe {
                values,
                mask,
                slot,
                reply,
            } => {
                let _span = st_obs::span!("serve.observe", slot);
                let result = self
                    .online
                    .try_push(values, mask, slot)
                    .map(|()| ObserveAck {
                        version: self.online.window_version(),
                        buffered: self.online.len(),
                        ready: self.online.ready(),
                    })
                    .map_err(|e| EngineError::Rejected(e.to_string()));
                let _ = reply.send(result);
            }
            EngineRequest::Forecast { reply } => {
                let _span = st_obs::span!("serve.forecast");
                let result = Self::steps(
                    &mut self.online,
                    &mut self.forecast_cache,
                    &self.metrics,
                    OnlineForecaster::forecast,
                );
                let _ = reply.send(result);
            }
            EngineRequest::Imputed { reply } => {
                let _span = st_obs::span!("serve.imputed");
                let result = Self::steps(
                    &mut self.online,
                    &mut self.imputed_cache,
                    &self.metrics,
                    OnlineForecaster::imputed_window,
                );
                let _ = reply.send(result);
            }
            EngineRequest::Health { reply } => {
                let _span = st_obs::span!("serve.health");
                let _ = reply.send(WindowState {
                    buffered: self.online.len(),
                    ready: self.online.ready(),
                    version: self.online.window_version(),
                });
            }
        }
    }

    /// Serves a per-version result from the cache when the window has not
    /// advanced, recomputing (one tape run) otherwise. After a run the
    /// inference pool's statistics are published to the metrics surface.
    fn steps(
        online: &mut OnlineForecaster,
        cache: &mut Option<VersionCache>,
        metrics: &Metrics,
        compute: impl FnOnce(&mut OnlineForecaster) -> Option<Vec<Matrix>>,
    ) -> Result<StepsReply, EngineError> {
        let version = online.window_version();
        if let Some(c) = cache {
            if c.version == version {
                metrics.cache_hit();
                return Ok(StepsReply {
                    version,
                    steps: Arc::clone(&c.value),
                });
            }
        }
        let steps = {
            let buffered = online.len();
            let needed = online.history();
            compute(online).ok_or(EngineError::NotReady { buffered, needed })?
        };
        metrics.tape_run();
        if let (Some(stats), Some(free)) = (online.pool_stats(), online.pool_free_bytes()) {
            metrics.set_pool_stats(stats, free as u64);
        }
        let value = Arc::new(steps);
        *cache = Some(VersionCache {
            version,
            value: Arc::clone(&value),
        });
        Ok(StepsReply {
            version,
            steps: value,
        })
    }
}

/// Spawns the engine thread. The returned handle is cloned into every
/// worker; the thread exits (returning the forecaster) once all handles
/// are dropped and the queue drains. `metrics.total_tape_runs()` counts
/// actual model evaluations — the loopback test uses it to prove
/// coalescing.
pub fn spawn(
    online: OnlineForecaster,
    metrics: Arc<Metrics>,
    queue_depth: usize,
) -> (EngineHandle, JoinHandle<OnlineForecaster>) {
    let (tx, rx): (SyncSender<EngineRequest>, Receiver<EngineRequest>) =
        std::sync::mpsc::sync_channel(queue_depth.max(1));
    let engine_metrics = Arc::clone(&metrics);
    let handle = std::thread::Builder::new()
        .name("st-serve-engine".into())
        .spawn(move || {
            let mut engine = Engine {
                online,
                metrics: engine_metrics,
                forecast_cache: None,
                imputed_cache: None,
            };
            while let Ok(req) = rx.recv() {
                engine.handle(req);
            }
            engine.online
        })
        .expect("spawn engine thread");
    (EngineHandle { tx, metrics }, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rihgcn_core::{prepare_split, RihgcnConfig, RihgcnModel};
    use st_data::{generate_pems, PemsConfig};
    use st_tensor::rng;
    use std::sync::mpsc::channel;

    fn setup() -> (OnlineForecaster, st_data::TrafficDataset) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.3, &mut rng(3));
        let (norm, z) = prepare_split(&ds.split_chronological());
        let cfg = RihgcnConfig {
            gcn_dim: 3,
            lstm_dim: 4,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        let model = RihgcnModel::from_dataset(&norm.train, cfg);
        (OnlineForecaster::new(model, z), ds)
    }

    fn observe(handle: &EngineHandle, ds: &st_data::TrafficDataset, t: usize) -> ObserveAck {
        let (tx, rx) = channel();
        handle
            .submit(EngineRequest::Observe {
                values: ds.values.time_slice(t),
                mask: ds.mask.time_slice(t),
                slot: t,
                reply: tx,
            })
            .unwrap();
        rx.recv().unwrap().unwrap()
    }

    fn forecast(handle: &EngineHandle) -> Result<StepsReply, EngineError> {
        let (tx, rx) = channel();
        handle
            .submit(EngineRequest::Forecast { reply: tx })
            .unwrap();
        rx.recv().unwrap()
    }

    #[test]
    fn engine_serves_and_coalesces() {
        let (online, ds) = setup();
        let metrics = Arc::new(Metrics::new());
        let (handle, join) = spawn(online, Arc::clone(&metrics), 16);

        // Not ready yet.
        let err = forecast(&handle).unwrap_err();
        assert!(matches!(err, EngineError::NotReady { buffered: 0, .. }));

        for t in 0..4 {
            let ack = observe(&handle, &ds, t);
            assert_eq!(ack.version, t as u64 + 1);
        }

        let a = forecast(&handle).unwrap();
        let b = forecast(&handle).unwrap();
        assert_eq!(a.version, b.version);
        assert_eq!(a.steps, b.steps);
        assert_eq!(metrics.total_tape_runs(), 1, "second call cached");
        assert_eq!(metrics.total_cache_hits(), 1);

        // The tape run published the inference pool's statistics.
        let (pool_hits, pool_misses, _) = metrics.pool_stats();
        assert!(pool_hits + pool_misses > 0, "pool stats published");

        // A new observation invalidates the cache.
        observe(&handle, &ds, 4);
        let c = forecast(&handle).unwrap();
        assert_ne!(c.version, a.version);
        assert_eq!(metrics.total_tape_runs(), 2);

        // Bad observation is rejected without killing the engine.
        let (tx, rx) = channel();
        handle
            .submit(EngineRequest::Observe {
                values: Matrix::zeros(1, 1),
                mask: Matrix::zeros(1, 1),
                slot: 0,
                reply: tx,
            })
            .unwrap();
        assert!(matches!(
            rx.recv().unwrap().unwrap_err(),
            EngineError::Rejected(_)
        ));

        assert_eq!(metrics.queue_depth(), 0, "every request was dequeued");

        drop(handle);
        let online = join.join().unwrap();
        assert_eq!(online.len(), 4);
    }
}
