//! Property-based tests for matrix algebra invariants.

use proptest::prelude::*;
use st_tensor::{linalg, Matrix};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let sum = &b + &c;
        let left = a.matmul(&sum);
        let mut right = a.matmul(&b);
        right.axpy(1.0, &a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn transpose_reverses_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        prop_assert!(a.matmul(&Matrix::identity(4)).max_abs_diff(&a) < 1e-12);
        prop_assert!(Matrix::identity(4).matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn fused_transpose_products_agree(a in matrix(3, 4), b in matrix(3, 2)) {
        prop_assert!(a.matmul_tn(&b).max_abs_diff(&a.transpose().matmul(&b)) < 1e-10);
        let c = Matrix::from_fn(5, 4, |r, q| (r * 4 + q) as f64 * 0.1);
        prop_assert!(a.matmul_nt(&c).max_abs_diff(&a.matmul(&c.transpose())) < 1e-10);
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in matrix(3, 3), b in matrix(3, 3)) {
        let sum = &a + &b;
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn hcat_slice_round_trip(a in matrix(3, 2), b in matrix(3, 4)) {
        let cat = a.hcat(&b);
        prop_assert_eq!(cat.slice_cols(0, 2), a);
        prop_assert_eq!(cat.slice_cols(2, 6), b);
    }

    #[test]
    fn vcat_slice_round_trip(a in matrix(2, 3), b in matrix(4, 3)) {
        let cat = a.vcat(&b);
        prop_assert_eq!(cat.slice_rows(0, 2), a);
        prop_assert_eq!(cat.slice_rows(2, 6), b);
    }

    #[test]
    fn solve_inverts_matmul(x in matrix(3, 1)) {
        // A fixed well-conditioned system: A·x = b ⇒ solve(A, b) = x.
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.0],
            &[1.0, 5.0, 2.0],
            &[0.0, 2.0, 6.0],
        ]);
        let b = a.matmul(&x);
        let solved = linalg::solve(&a, &b).unwrap();
        prop_assert!(solved.max_abs_diff(&x) < 1e-8);
    }

    #[test]
    fn cholesky_solve_agrees_with_lu(x in matrix(3, 2)) {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5],
            &[1.0, 5.0, 2.0],
            &[0.5, 2.0, 6.0],
        ]);
        let b = a.matmul(&x);
        let via_chol = linalg::solve_spd(&a, &b).unwrap();
        let via_lu = linalg::solve(&a, &b).unwrap();
        prop_assert!(via_chol.max_abs_diff(&via_lu) < 1e-8);
    }

    #[test]
    fn sum_cols_then_rows_equals_total(a in matrix(4, 5)) {
        let total = a.sum();
        let by_cols = a.sum_cols().sum();
        let by_rows = a.sum_rows().sum();
        prop_assert!((total - by_cols).abs() < 1e-9);
        prop_assert!((total - by_rows).abs() < 1e-9);
    }
}
