//! Daily-timeline interval partitioning (paper Eq. 2).
//!
//! The HGCN builds one temporal graph per time-of-day interval. The paper
//! chooses the `M` interval boundaries by maximising the total pairwise DTW
//! distance between the historical profiles of the intervals, subject to
//! four constraints:
//!
//! 1. every interval is at least `min_len` long (1 hour in the paper),
//! 2. every interval is at most `max_len` long (`Q·T/M`, i.e. ≤ 12 h),
//! 3. the minimum pairwise distance divided by the sum of all pairwise
//!    distances is at most `η` (10%),
//! 4. the longest interval covers less than `γ` (50%) of the day.
//!
//! Boundaries live on a coarse candidate grid (hourly in the paper); on that
//! grid the search space is small enough for exact enumeration with
//! length-constraint pruning. Interval profiles are compressed to
//! grid-resolution means before DTW, which preserves the shape of the
//! objective while keeping the solver fast.

use crate::distance::dtw;
use st_tensor::Matrix;
use std::collections::HashMap;

/// A half-open time-of-day interval `[start, end)` in slot units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First slot covered by the interval.
    pub start: usize,
    /// One past the last slot covered.
    pub end: usize,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "interval must be non-empty: [{start}, {end})");
        Self { start, end }
    }

    /// Interval length in slots.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the interval is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether the interval contains the slot.
    pub fn contains(&self, slot: usize) -> bool {
        (self.start..self.end).contains(&slot)
    }

    /// Circular distance (in slots) from a slot to this interval: `0` when
    /// inside, otherwise the shortest wrap-around distance to either
    /// boundary on a day of length `day_len`.
    pub fn circular_distance(&self, slot: usize, day_len: usize) -> usize {
        if self.contains(slot) {
            return 0;
        }
        let to_start = circular_gap(slot, self.start, day_len);
        let to_end = circular_gap(slot, self.end - 1, day_len);
        to_start.min(to_end)
    }
}

fn circular_gap(a: usize, b: usize, day_len: usize) -> usize {
    let d = a.abs_diff(b) % day_len;
    d.min(day_len - d)
}

/// Configuration for [`partition_day`].
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalConfig {
    /// Number of intervals `M`.
    pub num_intervals: usize,
    /// Slots in one day (288 for 5-minute data).
    pub slots_per_day: usize,
    /// Candidate-boundary granularity in slots (12 = hourly at 5-minute
    /// resolution).
    pub candidate_step: usize,
    /// Minimum interval length in slots (paper: 1 hour).
    pub min_len: usize,
    /// Maximum interval length in slots (paper: `Q·T/M`, capped at 12 h).
    pub max_len: usize,
    /// Maximum ratio of the minimum pairwise distance to the distance sum.
    pub eta: f64,
    /// Maximum fraction of the day covered by the longest interval.
    pub gamma: f64,
}

impl IntervalConfig {
    /// Paper defaults for `m` intervals on 5-minute data: hourly candidate
    /// boundaries, 1-hour minimum, `min(2·24/M, 12)`-hour maximum, η = 0.1,
    /// γ = 0.5.
    pub fn paper_defaults(m: usize) -> Self {
        let slots_per_day = 288;
        let hour = 12;
        let max_hours = (2.0 * 24.0 / m.max(1) as f64).ceil() as usize;
        Self {
            num_intervals: m,
            slots_per_day,
            candidate_step: hour,
            min_len: hour,
            max_len: hour * max_hours.clamp(1, 12),
            eta: 0.1,
            gamma: 0.5,
        }
    }
}

impl Default for IntervalConfig {
    fn default() -> Self {
        Self::paper_defaults(4)
    }
}

/// Result of [`partition_day`].
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// The chosen intervals, covering `[0, slots_per_day)` in order.
    pub intervals: Vec<Interval>,
    /// Total pairwise distance of the chosen partition.
    pub score: f64,
    /// Whether all four paper constraints were satisfiable; when `false`
    /// the result is the best partition under the length constraints only
    /// (or a uniform split as the last resort).
    pub constraints_satisfied: bool,
}

/// Partitions the day into `cfg.num_intervals` intervals maximising the sum
/// of pairwise DTW distances between interval profiles (paper Eq. 2).
///
/// `node_profiles` holds one `slots_per_day × D` historical-average profile
/// per node (see `st-data`'s profile builder). Interval distance is the mean
/// over nodes and features of the DTW distance between the interval's
/// grid-compressed sub-profiles.
///
/// With `num_intervals == 1` the whole day is returned directly (used by the
/// Figure-4 ablation); the γ constraint cannot hold in that case and
/// `constraints_satisfied` is reported accordingly.
///
/// # Examples
///
/// ```
/// use st_graph::{partition_day, IntervalConfig};
/// use st_tensor::Matrix;
///
/// // A day that is quiet before noon and busy after.
/// let profile = Matrix::from_fn(288, 1, |r, _| if r < 144 { 0.0 } else { 10.0 });
/// let mut cfg = IntervalConfig::paper_defaults(2);
/// cfg.gamma = 0.55;
/// let partition = partition_day(&[profile], &cfg);
/// assert_eq!(partition.intervals[0].end, 144); // split found at noon
/// ```
///
/// # Panics
///
/// Panics if `node_profiles` is empty, a profile has the wrong number of
/// rows, `num_intervals == 0`, or the candidate grid cannot host the
/// requested number of intervals.
pub fn partition_day(node_profiles: &[Matrix], cfg: &IntervalConfig) -> Partition {
    assert!(!node_profiles.is_empty(), "need at least one node profile");
    assert!(cfg.num_intervals >= 1, "need at least one interval");
    assert!(cfg.candidate_step >= 1, "candidate step must be positive");
    assert_eq!(
        cfg.slots_per_day % cfg.candidate_step,
        0,
        "slots_per_day must be a multiple of candidate_step"
    );
    for p in node_profiles {
        assert_eq!(
            p.rows(),
            cfg.slots_per_day,
            "profile must have slots_per_day rows"
        );
    }

    if cfg.num_intervals == 1 {
        let whole = Interval::new(0, cfg.slots_per_day);
        return Partition {
            intervals: vec![whole],
            score: 0.0,
            // γ < 1 can never hold for a single interval spanning the day.
            constraints_satisfied: cfg.gamma >= 1.0,
        };
    }

    let grid = cfg.slots_per_day / cfg.candidate_step;
    assert!(
        cfg.num_intervals <= grid,
        "cannot split {} grid cells into {} intervals",
        grid,
        cfg.num_intervals
    );

    // Compress profiles to the candidate grid: one mean row per grid cell.
    let compressed: Vec<Matrix> = node_profiles
        .iter()
        .map(|p| compress_profile(p, cfg.candidate_step))
        .collect();

    let min_cells = (cfg.min_len + cfg.candidate_step - 1) / cfg.candidate_step;
    let max_cells = (cfg.max_len / cfg.candidate_step).max(min_cells);

    let mut cache: HashMap<(Interval, Interval), f64> = HashMap::new();
    let mut best_any: Option<(Vec<Interval>, f64)> = None;
    let mut best_ok: Option<(Vec<Interval>, f64)> = None;

    // Depth-first enumeration of grid partitions with length pruning.
    let mut stack: Vec<Interval> = Vec::with_capacity(cfg.num_intervals);
    enumerate(
        0,
        grid,
        cfg.num_intervals,
        min_cells.max(1),
        max_cells,
        &mut stack,
        &mut |intervals| {
            let (score, min_pair) = partition_score(intervals, &compressed, &mut cache);
            let longest = intervals.iter().map(Interval::len).max().unwrap_or(0);
            // Grid units here; γ compares against the whole day in grid cells.
            let gamma_ok = (longest as f64) < cfg.gamma * grid as f64;
            let eta_ok = score <= 0.0 || min_pair / score <= cfg.eta + 1e-12;
            if best_any.as_ref().map_or(true, |(_, s)| score > *s) {
                best_any = Some((intervals.to_vec(), score));
            }
            if gamma_ok && eta_ok && best_ok.as_ref().map_or(true, |(_, s)| score > *s) {
                best_ok = Some((intervals.to_vec(), score));
            }
        },
    );

    let (chosen, score, ok) = match (best_ok, best_any) {
        (Some((iv, s)), _) => (iv, s, true),
        (None, Some((iv, s))) => (iv, s, false),
        (None, None) => {
            // No partition satisfied even the length constraints: uniform split.
            let cells = grid / cfg.num_intervals;
            let iv: Vec<Interval> = (0..cfg.num_intervals)
                .map(|i| {
                    let start = i * cells;
                    let end = if i + 1 == cfg.num_intervals {
                        grid
                    } else {
                        (i + 1) * cells
                    };
                    Interval::new(start, end)
                })
                .collect();
            (iv, 0.0, false)
        }
    };

    // Scale grid cells back to slots.
    let intervals = chosen
        .iter()
        .map(|iv| Interval::new(iv.start * cfg.candidate_step, iv.end * cfg.candidate_step))
        .collect();
    Partition {
        intervals,
        score,
        constraints_satisfied: ok,
    }
}

fn enumerate(
    start: usize,
    grid: usize,
    remaining: usize,
    min_cells: usize,
    max_cells: usize,
    stack: &mut Vec<Interval>,
    visit: &mut impl FnMut(&[Interval]),
) {
    if remaining == 1 {
        let len = grid - start;
        if len >= min_cells && len <= max_cells {
            stack.push(Interval::new(start, grid));
            visit(stack);
            stack.pop();
        }
        return;
    }
    // Remaining intervals bound the feasible lengths for this one.
    let others_min = (remaining - 1) * min_cells;
    let hi = max_cells.min(grid.saturating_sub(start + others_min));
    for len in min_cells..=hi {
        stack.push(Interval::new(start, start + len));
        enumerate(
            start + len,
            grid,
            remaining - 1,
            min_cells,
            max_cells,
            stack,
            visit,
        );
        stack.pop();
    }
}

fn partition_score(
    intervals: &[Interval],
    compressed: &[Matrix],
    cache: &mut HashMap<(Interval, Interval), f64>,
) -> (f64, f64) {
    let mut total = 0.0;
    let mut min_pair = f64::INFINITY;
    for i in 0..intervals.len() {
        for j in i + 1..intervals.len() {
            let key = (intervals[i], intervals[j]);
            let d = *cache
                .entry(key)
                .or_insert_with(|| interval_distance(intervals[i], intervals[j], compressed));
            total += d;
            min_pair = min_pair.min(d);
        }
    }
    if !min_pair.is_finite() {
        min_pair = 0.0;
    }
    (total, min_pair)
}

fn interval_distance(a: Interval, b: Interval, compressed: &[Matrix]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for profile in compressed {
        for d in 0..profile.cols() {
            let sa: Vec<f64> = (a.start..a.end).map(|r| profile[(r, d)]).collect();
            let sb: Vec<f64> = (b.start..b.end).map(|r| profile[(r, d)]).collect();
            let dist = dtw(&sa, &sb);
            if dist.is_finite() {
                total += dist;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Compresses a `slots × D` profile to one mean row per `step`-slot cell.
fn compress_profile(profile: &Matrix, step: usize) -> Matrix {
    let cells = profile.rows() / step;
    Matrix::from_fn(cells, profile.cols(), |cell, d| {
        let mut acc = 0.0;
        for r in cell * step..(cell + 1) * step {
            acc += profile[(r, d)];
        }
        acc / step as f64
    })
}

/// Result of [`partition_day_circular`]: the best rotation of the daily
/// cycle plus the partition found at that rotation.
///
/// The paper notes that a better division "could be possible if we form the
/// timeline into a circle so that the first interval does not necessarily
/// start from 00:00" and leaves it as future work — this implements it.
/// Interval coordinates are *rotated*: slot `s` of the original day maps to
/// `(s + day_len − offset) % day_len` in the partition's coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CircularPartition {
    /// Rotation offset in slots: the partition's slot 0 corresponds to the
    /// original day's slot `offset`.
    pub offset: usize,
    /// The partition in rotated coordinates.
    pub partition: Partition,
}

impl CircularPartition {
    /// Maps an original time-of-day slot into the rotated coordinates used
    /// by `partition.intervals`.
    pub fn rotate_slot(&self, slot: usize, day_len: usize) -> usize {
        (slot + day_len - self.offset % day_len) % day_len
    }

    /// The interval index containing an original time-of-day slot.
    pub fn interval_of(&self, slot: usize, day_len: usize) -> usize {
        let rotated = self.rotate_slot(slot, day_len);
        self.partition
            .intervals
            .iter()
            .position(|iv| iv.contains(rotated))
            .expect("partition covers the full day")
    }
}

/// Circular variant of [`partition_day`]: additionally searches over the
/// rotation of the daily cycle, so the first interval need not start at
/// midnight (the paper's future-work extension).
///
/// Rotations are searched on the candidate grid. Returns the rotation with
/// the highest-scoring constraint-satisfying partition (falling back to the
/// best overall if no rotation satisfies the constraints).
///
/// # Panics
///
/// As [`partition_day`].
pub fn partition_day_circular(node_profiles: &[Matrix], cfg: &IntervalConfig) -> CircularPartition {
    assert!(!node_profiles.is_empty(), "need at least one node profile");
    let slots = cfg.slots_per_day;
    let mut best: Option<CircularPartition> = None;
    for grid_offset in 0..(slots / cfg.candidate_step) {
        let offset = grid_offset * cfg.candidate_step;
        // Rotate every profile so the candidate origin becomes slot 0.
        let rotated: Vec<Matrix> = node_profiles
            .iter()
            .map(|p| Matrix::from_fn(p.rows(), p.cols(), |r, c| p[((r + offset) % slots, c)]))
            .collect();
        let partition = partition_day(&rotated, cfg);
        let candidate = CircularPartition { offset, partition };
        let better = match &best {
            None => true,
            Some(b) => {
                let cand = &candidate.partition;
                let curr = &b.partition;
                (cand.constraints_satisfied, cand.score) > (curr.constraints_satisfied, curr.score)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("at least one rotation is evaluated")
}

/// Soft membership weights of a time-of-day slot over a set of intervals:
/// `softmax(−dist_i / tau)` with circular slot distance.
///
/// Used by the HGCN to weight each temporal graph's output for a sample at
/// a given time of day: the graph whose interval contains the slot dominates
/// while neighbouring intervals receive smoothly decaying weight.
///
/// # Panics
///
/// Panics if `intervals` is empty or `tau <= 0`.
pub fn interval_weights(slot: usize, intervals: &[Interval], day_len: usize, tau: f64) -> Vec<f64> {
    assert!(!intervals.is_empty(), "need at least one interval");
    assert!(tau > 0.0, "tau must be positive");
    let logits: Vec<f64> = intervals
        .iter()
        .map(|iv| -(iv.circular_distance(slot % day_len, day_len) as f64) / tau)
        .collect();
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase_profile(slots: usize) -> Matrix {
        // Low values in the first half of the day, high in the second: the
        // optimal 2-way split is at noon.
        Matrix::from_fn(slots, 1, |r, _| if r < slots / 2 { 0.0 } else { 10.0 })
    }

    #[test]
    fn interval_basics() {
        let iv = Interval::new(10, 20);
        assert_eq!(iv.len(), 10);
        assert!(iv.contains(10));
        assert!(!iv.contains(20));
        assert!(!iv.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn interval_rejects_empty() {
        let _ = Interval::new(5, 5);
    }

    #[test]
    fn circular_distance_wraps() {
        let iv = Interval::new(0, 12);
        // Slot 280 on a 288-slot day is 8 slots before midnight.
        assert_eq!(iv.circular_distance(280, 288), 8);
        assert_eq!(iv.circular_distance(5, 288), 0);
        // Nearest member slot of [0, 12) to slot 20 is slot 11 → 9 steps.
        assert_eq!(iv.circular_distance(20, 288), 9);
    }

    #[test]
    fn single_interval_shortcut() {
        let profiles = [two_phase_profile(288)];
        let cfg = IntervalConfig {
            num_intervals: 1,
            ..IntervalConfig::paper_defaults(1)
        };
        let p = partition_day(&profiles, &cfg);
        assert_eq!(p.intervals, vec![Interval::new(0, 288)]);
        assert!(!p.constraints_satisfied); // γ = 0.5 cannot hold.
    }

    #[test]
    fn two_way_split_finds_the_phase_change() {
        let profiles = [two_phase_profile(288)];
        let mut cfg = IntervalConfig::paper_defaults(2);
        cfg.gamma = 0.55; // Each half is exactly 50%; relax slightly.
        let p = partition_day(&profiles, &cfg);
        assert_eq!(p.intervals.len(), 2);
        // The split should land exactly at noon (slot 144).
        assert_eq!(p.intervals[0].end, 144);
        assert!(p.score > 0.0);
    }

    #[test]
    fn partition_covers_day_without_gaps() {
        let profiles = [two_phase_profile(288)];
        for m in [2usize, 3, 4, 6] {
            let p = partition_day(&profiles, &IntervalConfig::paper_defaults(m));
            assert_eq!(p.intervals.len(), m, "m={m}");
            assert_eq!(p.intervals[0].start, 0);
            assert_eq!(p.intervals.last().unwrap().end, 288);
            for w in p.intervals.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap at m={m}");
            }
        }
    }

    #[test]
    fn length_constraints_hold() {
        let profiles = [two_phase_profile(288)];
        let cfg = IntervalConfig::paper_defaults(4);
        let p = partition_day(&profiles, &cfg);
        for iv in &p.intervals {
            assert!(iv.len() >= cfg.min_len, "interval too short: {iv:?}");
            assert!(iv.len() <= cfg.max_len, "interval too long: {iv:?}");
        }
    }

    #[test]
    fn gamma_constraint_limits_longest_interval() {
        let profiles = [two_phase_profile(288)];
        let mut cfg = IntervalConfig::paper_defaults(3);
        cfg.gamma = 0.4;
        let p = partition_day(&profiles, &cfg);
        if p.constraints_satisfied {
            let longest = p.intervals.iter().map(Interval::len).max().unwrap();
            assert!((longest as f64) < 0.4 * 288.0);
        }
    }

    #[test]
    fn boundaries_are_grid_aligned() {
        let profiles = [two_phase_profile(288)];
        let cfg = IntervalConfig::paper_defaults(4);
        let p = partition_day(&profiles, &cfg);
        for iv in &p.intervals {
            assert_eq!(iv.start % cfg.candidate_step, 0);
            assert_eq!(iv.end % cfg.candidate_step, 0);
        }
    }

    #[test]
    fn flat_profile_yields_zero_score() {
        let profiles = [Matrix::zeros(288, 1)];
        let p = partition_day(&profiles, &IntervalConfig::paper_defaults(3));
        assert_eq!(p.score, 0.0);
    }

    #[test]
    fn circular_partition_at_least_as_good_as_fixed() {
        // A pattern whose natural boundary is NOT midnight: phases switch at
        // 6:00 and 18:00.
        let profile = Matrix::from_fn(
            288,
            1,
            |r, _| {
                if (72..216).contains(&r) {
                    10.0
                } else {
                    0.0
                }
            },
        );
        let mut cfg = IntervalConfig::paper_defaults(2);
        cfg.gamma = 0.55;
        let fixed = partition_day(&[profile.clone()], &cfg);
        let circular = partition_day_circular(&[profile], &cfg);
        assert!(
            circular.partition.score >= fixed.score - 1e-9,
            "circular {} must not lose to fixed {}",
            circular.partition.score,
            fixed.score
        );
        // The best rotation should align a boundary with the 6:00 edge.
        assert_eq!(circular.offset % 72, 0, "offset was {}", circular.offset);
    }

    #[test]
    fn circular_partition_slot_mapping() {
        let cp = CircularPartition {
            offset: 72,
            partition: Partition {
                intervals: vec![Interval::new(0, 144), Interval::new(144, 288)],
                score: 1.0,
                constraints_satisfied: true,
            },
        };
        // Original slot 72 is the rotated origin.
        assert_eq!(cp.rotate_slot(72, 288), 0);
        assert_eq!(cp.rotate_slot(0, 288), 216);
        assert_eq!(cp.interval_of(100, 288), 0);
        assert_eq!(cp.interval_of(0, 288), 1);
    }

    #[test]
    fn interval_weights_sum_to_one_and_prefer_containing_interval() {
        let intervals = vec![Interval::new(0, 100), Interval::new(100, 288)];
        let w = interval_weights(50, &intervals, 288, 4.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1]);
        let w2 = interval_weights(200, &intervals, 288, 4.0);
        assert!(w2[1] > w2[0]);
    }

    #[test]
    fn interval_weights_wrap_midnight() {
        let intervals = vec![Interval::new(0, 24), Interval::new(24, 288)];
        // Slot 287 is circularly adjacent to interval 0's start but inside
        // interval 1, so interval 1 must still dominate.
        let w = interval_weights(287, &intervals, 288, 2.0);
        assert!(w[1] > w[0]);
    }
}
