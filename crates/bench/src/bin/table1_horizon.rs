//! Table I (lower): PeMS prediction performance vs prediction length
//! {15, 30, 45, 60} minutes at 80% missing rate.

use rihgcn_bench::{pems_at, print_table, Bench, Method, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let horizons = [3usize, 6, 9, 12];
    let columns: Vec<String> = horizons.iter().map(|h| format!("{} min", h * 5)).collect();
    println!(
        "Table I (lower) — PeMS, 80% missing, scale `{}`",
        scale.name
    );

    let ds = pems_at(&scale, 0.8, 200);
    let bench = Bench::prepare(&ds, &scale, 12, 12);
    let mut rows = Vec::new();
    for method in Method::roster() {
        let t0 = Instant::now();
        let metrics = rihgcn_bench::run_method_horizons(method, &bench, 4, &horizons);
        eprintln!("{:<16} done in {:?}", method.name(), t0.elapsed());
        rows.push((method.name().to_string(), metrics));
    }
    print_table(
        "Table I (lower): MAE/RMSE vs prediction length",
        &columns,
        &rows,
    );
}
