//! # st-serve
//!
//! A zero-dependency HTTP/1.1 forecast service around
//! [`rihgcn_core::OnlineForecaster`]: a std `TcpListener` accept loop feeds
//! a fixed worker pool; all inference funnels through one engine thread
//! that owns the forecaster, micro-batches requests, and coalesces
//! identical window-version forecasts onto a single model evaluation.
//!
//! Routes:
//!
//! | route                  | purpose                                          |
//! |------------------------|--------------------------------------------------|
//! | `POST /observe`        | push one `N × F` observation + mask + slot       |
//! | `GET /forecast`        | multi-horizon forecast in original units         |
//! | `GET /imputed`         | imputed history window                           |
//! | `GET /healthz`         | model shape + window fill state                  |
//! | `GET /metrics`         | plain-text counters and latency histogram        |
//! | `POST /admin/shutdown` | graceful shutdown (drain connections, join)      |
//!
//! Payload floats use Rust's shortest-round-trip formatting, so forecasts
//! fetched over HTTP are **bit-identical** to calling the forecaster
//! in-process.

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod http;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{HttpClient, Response};
pub use engine::{EngineError, ModelInfo, StepsReply};
pub use metrics::{Metrics, Route};
pub use server::{ServeConfig, Server, ShutdownHandle};
pub use wire::{format_observation, format_steps, parse_observation, parse_steps, Observation};
