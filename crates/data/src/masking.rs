//! Missing-data mask generation and manipulation.
//!
//! The paper's Table I protocol randomly drops {20, 40, 60, 80}% of the
//! historical values (missing completely at random); the imputation study
//! additionally holds out 30% of the *observed* entries as scoring targets.
//! Both operations live here.

use st_tensor::{StRng, Tensor3};

/// Fraction of zero entries in a `{0,1}` mask.
///
/// Returns `0.0` for an empty mask.
pub fn missing_rate(mask: &Tensor3) -> f64 {
    if mask.is_empty() {
        return 0.0;
    }
    let zeros = mask.as_slice().iter().filter(|&&m| m == 0.0).count();
    zeros as f64 / mask.len() as f64
}

/// Drops a fraction `rate` of the currently-observed entries of `mask`
/// uniformly at random (missing completely at random), returning the new
/// mask. Entries already missing stay missing.
///
/// # Panics
///
/// Panics if `rate` is not in `[0, 1]`.
pub fn drop_observed(mask: &Tensor3, rate: f64, rng: &mut StRng) -> Tensor3 {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
    mask.map(|m| {
        if m != 0.0 && rng.gen_f64() < rate {
            0.0
        } else {
            m
        }
    })
}

/// Splits the observed entries of `mask` into a training mask and a
/// held-out evaluation mask: each observed entry lands in the hold-out with
/// probability `holdout_rate`.
///
/// Returns `(train_mask, holdout_mask)`; the two are disjoint and their
/// union equals the input mask.
///
/// # Panics
///
/// Panics if `holdout_rate` is not in `[0, 1]`.
pub fn holdout_split(mask: &Tensor3, holdout_rate: f64, rng: &mut StRng) -> (Tensor3, Tensor3) {
    assert!(
        (0.0..=1.0).contains(&holdout_rate),
        "holdout_rate must be in [0, 1]"
    );
    let (n, d, t) = mask.shape();
    let mut train = Tensor3::zeros(n, d, t);
    let mut hold = Tensor3::zeros(n, d, t);
    for node in 0..n {
        for f in 0..d {
            for time in 0..t {
                if mask[(node, f, time)] != 0.0 {
                    if rng.gen_f64() < holdout_rate {
                        hold[(node, f, time)] = 1.0;
                    } else {
                        train[(node, f, time)] = 1.0;
                    }
                }
            }
        }
    }
    (train, hold)
}

/// Replaces hidden entries of `values` with `fill`, keeping observed ones.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn fill_missing(values: &Tensor3, mask: &Tensor3, fill: f64) -> Tensor3 {
    values.zip_map(mask, |v, m| if m != 0.0 { v } else { fill })
}

/// Replaces hidden entries with the per-(node, feature) mean of observed
/// values — the "mean fill" preprocessing used for all non-imputing
/// baselines in the paper. Falls back to `0.0` for series with no
/// observations at all.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mean_fill(values: &Tensor3, mask: &Tensor3) -> Tensor3 {
    assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
    let (n, d, t) = values.shape();
    let mut out = values.clone();
    for node in 0..n {
        for f in 0..d {
            let mut sum = 0.0;
            let mut count = 0usize;
            for time in 0..t {
                if mask[(node, f, time)] != 0.0 {
                    sum += values[(node, f, time)];
                    count += 1;
                }
            }
            let fill = if count > 0 { sum / count as f64 } else { 0.0 };
            for time in 0..t {
                if mask[(node, f, time)] == 0.0 {
                    out[(node, f, time)] = fill;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::rng;

    #[test]
    fn missing_rate_counts_zeros() {
        let mut mask = Tensor3::ones(1, 1, 4);
        mask[(0, 0, 1)] = 0.0;
        assert_eq!(missing_rate(&mask), 0.25);
        assert_eq!(missing_rate(&Tensor3::default()), 0.0);
    }

    #[test]
    fn drop_observed_hits_target_rate() {
        let mask = Tensor3::ones(10, 2, 500);
        let dropped = drop_observed(&mask, 0.4, &mut rng(1));
        let rate = missing_rate(&dropped);
        assert!((rate - 0.4).abs() < 0.02, "rate was {rate}");
    }

    #[test]
    fn drop_observed_never_resurrects() {
        let mut mask = Tensor3::ones(2, 1, 100);
        for t in 0..50 {
            mask[(0, 0, t)] = 0.0;
        }
        let dropped = drop_observed(&mask, 0.5, &mut rng(2));
        for t in 0..50 {
            assert_eq!(dropped[(0, 0, t)], 0.0);
        }
    }

    #[test]
    fn drop_zero_rate_is_identity() {
        let mask = Tensor3::ones(3, 1, 20);
        assert_eq!(drop_observed(&mask, 0.0, &mut rng(3)), mask);
    }

    #[test]
    fn holdout_partitions_observed() {
        let mask = Tensor3::ones(5, 1, 200);
        let (train, hold) = holdout_split(&mask, 0.3, &mut rng(4));
        // Disjoint and covering.
        let overlap = train.zip_map(&hold, |a, b| a * b);
        assert_eq!(overlap.as_slice().iter().sum::<f64>(), 0.0);
        let union = train.zip_map(&hold, |a, b| a + b);
        assert_eq!(union, mask);
        let hold_frac = hold.as_slice().iter().sum::<f64>() / mask.len() as f64;
        assert!(
            (hold_frac - 0.3).abs() < 0.05,
            "holdout fraction {hold_frac}"
        );
    }

    #[test]
    fn holdout_ignores_already_missing() {
        let mut mask = Tensor3::ones(1, 1, 100);
        for t in 0..40 {
            mask[(0, 0, t)] = 0.0;
        }
        let (train, hold) = holdout_split(&mask, 0.5, &mut rng(5));
        for t in 0..40 {
            assert_eq!(train[(0, 0, t)], 0.0);
            assert_eq!(hold[(0, 0, t)], 0.0);
        }
    }

    #[test]
    fn fill_missing_respects_mask() {
        let x = Tensor3::filled(1, 1, 3, 5.0);
        let mut mask = Tensor3::ones(1, 1, 3);
        mask[(0, 0, 1)] = 0.0;
        let filled = fill_missing(&x, &mask, -1.0);
        assert_eq!(filled[(0, 0, 0)], 5.0);
        assert_eq!(filled[(0, 0, 1)], -1.0);
    }

    #[test]
    fn mean_fill_uses_per_series_mean() {
        let mut x = Tensor3::zeros(2, 1, 4);
        // Node 0 observes 2 and 4; node 1 observes 10.
        x[(0, 0, 0)] = 2.0;
        x[(0, 0, 2)] = 4.0;
        x[(1, 0, 1)] = 10.0;
        let mut mask = Tensor3::zeros(2, 1, 4);
        mask[(0, 0, 0)] = 1.0;
        mask[(0, 0, 2)] = 1.0;
        mask[(1, 0, 1)] = 1.0;
        let filled = mean_fill(&x, &mask);
        assert_eq!(filled[(0, 0, 1)], 3.0);
        assert_eq!(filled[(0, 0, 3)], 3.0);
        assert_eq!(filled[(1, 0, 0)], 10.0);
        // Observed entries untouched.
        assert_eq!(filled[(0, 0, 0)], 2.0);
    }

    #[test]
    fn mean_fill_empty_series_is_zero() {
        let x = Tensor3::filled(1, 1, 3, 9.0);
        let mask = Tensor3::zeros(1, 1, 3);
        let filled = mean_fill(&x, &mask);
        assert_eq!(filled.as_slice(), &[0.0, 0.0, 0.0]);
    }
}
