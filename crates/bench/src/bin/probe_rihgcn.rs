//! Developer probe: RIHGCN hyper-parameter sensitivity at one missing rate.

use rihgcn_bench::{pems_at, rihgcn_prediction, Bench, Scale};
use rihgcn_core::{fit, RihgcnConfig, RihgcnModel};
use std::time::Instant;

fn main() {
    let mut scale = Scale::from_env();
    let rate: f64 = std::env::var("PROBE_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.8);
    if let Ok(e) = std::env::var("PROBE_EPOCHS") {
        scale.epochs = e.parse().unwrap_or(scale.epochs);
        scale.patience = scale.epochs;
    }
    let ds = pems_at(&scale, rate, 100);
    let bench = Bench::prepare(&ds, &scale, 12, 12);
    println!("rihgcn probe: missing {rate}, epochs {}", scale.epochs);

    let variants: Vec<(&str, RihgcnConfig)> = vec![
        ("M=4 l=1.0", base(&scale, 4, 1.0)),
        ("M=8 l=1.0", base(&scale, 8, 1.0)),
        ("M=2 l=1.0", base(&scale, 2, 1.0)),
        ("M=4 l=0.1", base(&scale, 4, 0.1)),
        ("M=4 l=3.0", base(&scale, 4, 3.0)),
        ("M=0 l=1.0 (GCN-LSTM-I equiv)", base(&scale, 0, 1.0)),
    ];
    for (name, cfg) in variants {
        let t0 = Instant::now();
        let mut model = RihgcnModel::from_dataset(&bench.norm.train, cfg);
        let tc = scale.train_config();
        fit(&mut model, &bench.train, &bench.val, &tc);
        let m = rihgcn_prediction(&model, &bench);
        println!(
            "{name:<30} MAE {:.4} RMSE {:.4} ({:?})",
            m.mae,
            m.rmse,
            t0.elapsed()
        );
    }
}

fn base(scale: &Scale, m: usize, lambda: f64) -> RihgcnConfig {
    RihgcnConfig {
        gcn_dim: scale.gcn_dim,
        lstm_dim: scale.lstm_dim,
        num_temporal_graphs: m,
        history: 12,
        horizon: 12,
        lambda,
        ..Default::default()
    }
}
