//! Classical imputation baselines: Last-observed, KNN, matrix
//! factorisation (ALS) and CP tensor decomposition (ALS).
//!
//! These are the comparison methods of the paper's RQ2 study. Each takes a
//! `(values, mask)` pair and returns a fully-populated tensor: observed
//! entries are passed through unchanged, hidden entries are reconstructed.

use st_tensor::{linalg, rng, uniform_matrix, Matrix, Tensor3};

/// Last-observation-carried-forward (with backward fill for leading gaps and
/// the series mean as the last resort).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn last_observed_fill(values: &Tensor3, mask: &Tensor3) -> Tensor3 {
    assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
    let (n, d, t_len) = values.shape();
    let mut out = values.clone();
    for node in 0..n {
        for f in 0..d {
            let observed: Vec<usize> = (0..t_len).filter(|&t| mask[(node, f, t)] != 0.0).collect();
            if observed.is_empty() {
                for t in 0..t_len {
                    out[(node, f, t)] = 0.0;
                }
                continue;
            }
            let mean: f64 =
                observed.iter().map(|&t| values[(node, f, t)]).sum::<f64>() / observed.len() as f64;
            let mut last: Option<f64> = None;
            let first_value = values[(node, f, observed[0])];
            for t in 0..t_len {
                if mask[(node, f, t)] != 0.0 {
                    last = Some(values[(node, f, t)]);
                } else {
                    out[(node, f, t)] = match last {
                        Some(v) => v,
                        None => {
                            if observed[0] > t {
                                first_value // backward fill of the leading gap
                            } else {
                                mean
                            }
                        }
                    };
                }
            }
        }
    }
    out
}

/// K-nearest-neighbour imputation across nodes.
///
/// Node similarity is the RMS difference over commonly-observed timestamps
/// (per feature); a hidden entry becomes the inverse-distance-weighted mean
/// of the `k` most similar nodes that observed that timestamp, falling back
/// to the series mean when no neighbour has data.
///
/// # Panics
///
/// Panics if shapes differ or `k == 0`.
pub fn knn_impute(values: &Tensor3, mask: &Tensor3, k: usize) -> Tensor3 {
    assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
    assert!(k > 0, "k must be positive");
    let (n, d, t_len) = values.shape();
    let mut out = values.clone();

    for f in 0..d {
        // Pairwise node distances on commonly observed entries.
        let mut dist = Matrix::filled(n, n, f64::INFINITY);
        for i in 0..n {
            dist[(i, i)] = 0.0;
            for j in i + 1..n {
                let mut acc = 0.0;
                let mut count = 0usize;
                for t in 0..t_len {
                    if mask[(i, f, t)] != 0.0 && mask[(j, f, t)] != 0.0 {
                        let e = values[(i, f, t)] - values[(j, f, t)];
                        acc += e * e;
                        count += 1;
                    }
                }
                if count > 0 {
                    let rms = (acc / count as f64).sqrt();
                    dist[(i, j)] = rms;
                    dist[(j, i)] = rms;
                }
            }
        }
        // Series means as fallback.
        let means: Vec<f64> = (0..n)
            .map(|i| {
                let mut sum = 0.0;
                let mut count = 0usize;
                for t in 0..t_len {
                    if mask[(i, f, t)] != 0.0 {
                        sum += values[(i, f, t)];
                        count += 1;
                    }
                }
                if count > 0 {
                    sum / count as f64
                } else {
                    0.0
                }
            })
            .collect();

        for i in 0..n {
            // Neighbours sorted by distance once per node.
            let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            order.sort_by(|&a, &b| {
                dist[(i, a)]
                    .partial_cmp(&dist[(i, b)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for t in 0..t_len {
                if mask[(i, f, t)] != 0.0 {
                    continue;
                }
                let mut num = 0.0;
                let mut den = 0.0;
                let mut used = 0usize;
                for &j in &order {
                    if used == k {
                        break;
                    }
                    if mask[(j, f, t)] != 0.0 && dist[(i, j)].is_finite() {
                        let w = 1.0 / (dist[(i, j)] + 1e-6);
                        num += w * values[(j, f, t)];
                        den += w;
                        used += 1;
                    }
                }
                out[(i, f, t)] = if den > 0.0 { num / den } else { means[i] };
            }
        }
    }
    out
}

/// Rank-`r` matrix-factorisation imputation via alternating least squares,
/// applied per feature to the `N × T` slice.
///
/// # Panics
///
/// Panics if shapes differ or `rank == 0`.
pub fn matrix_factorization_impute(
    values: &Tensor3,
    mask: &Tensor3,
    rank: usize,
    iters: usize,
    seed: u64,
) -> Tensor3 {
    assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
    assert!(rank > 0, "rank must be positive");
    let (n, d, t_len) = values.shape();
    let ridge = 1e-2;
    let mut out = values.clone();
    let mut r = rng(seed);

    for f in 0..d {
        let mut u = uniform_matrix(&mut r, n, rank, -0.5, 0.5);
        let mut v = uniform_matrix(&mut r, t_len, rank, -0.5, 0.5);
        for _ in 0..iters {
            als_update(&mut u, &v, values, mask, f, true, ridge);
            als_update(&mut v, &u, values, mask, f, false, ridge);
        }
        for node in 0..n {
            for t in 0..t_len {
                if mask[(node, f, t)] == 0.0 {
                    let mut acc = 0.0;
                    for c in 0..rank {
                        acc += u[(node, c)] * v[(t, c)];
                    }
                    out[(node, f, t)] = acc;
                }
            }
        }
    }
    out
}

/// One ALS half-step: re-solves every row of `target` against the fixed
/// factor using that row's observed entries.
fn als_update(
    target: &mut Matrix,
    fixed: &Matrix,
    values: &Tensor3,
    mask: &Tensor3,
    feature: usize,
    rows_are_nodes: bool,
    ridge: f64,
) {
    let rank = target.cols();
    for row in 0..target.rows() {
        // Gather observed entries of this row.
        let mut design_rows: Vec<usize> = Vec::new();
        for other in 0..fixed.rows() {
            let (node, t) = if rows_are_nodes {
                (row, other)
            } else {
                (other, row)
            };
            if mask[(node, feature, t)] != 0.0 {
                design_rows.push(other);
            }
        }
        if design_rows.is_empty() {
            continue;
        }
        let design = Matrix::from_fn(design_rows.len(), rank, |r, c| fixed[(design_rows[r], c)]);
        let rhs = Matrix::from_fn(design_rows.len(), 1, |r, _| {
            let other = design_rows[r];
            let (node, t) = if rows_are_nodes {
                (row, other)
            } else {
                (other, row)
            };
            values[(node, feature, t)]
        });
        if let Ok(sol) = linalg::least_squares(&design, &rhs, ridge) {
            for c in 0..rank {
                target[(row, c)] = sol[(c, 0)];
            }
        }
    }
}

/// Rank-`r` CP (canonical polyadic) tensor-decomposition imputation via ALS
/// over the full `N × D × T` cube.
///
/// # Panics
///
/// Panics if shapes differ or `rank == 0`.
pub fn cp_impute(
    values: &Tensor3,
    mask: &Tensor3,
    rank: usize,
    iters: usize,
    seed: u64,
) -> Tensor3 {
    assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
    assert!(rank > 0, "rank must be positive");
    let (n, d, t_len) = values.shape();
    let ridge = 1e-2;
    let mut r = rng(seed);
    let mut a = uniform_matrix(&mut r, n, rank, -0.5, 0.5); // node factors
    let mut b = uniform_matrix(&mut r, d, rank, -0.5, 0.5); // feature factors
    let mut c = uniform_matrix(&mut r, t_len, rank, -0.5, 0.5); // time factors

    for _ in 0..iters {
        cp_mode_update(&mut a, &b, &c, values, mask, Mode::Node, ridge);
        cp_mode_update(&mut b, &a, &c, values, mask, Mode::Feature, ridge);
        cp_mode_update(&mut c, &a, &b, values, mask, Mode::Time, ridge);
    }

    let mut out = values.clone();
    for node in 0..n {
        for f in 0..d {
            for t in 0..t_len {
                if mask[(node, f, t)] == 0.0 {
                    let mut acc = 0.0;
                    for k in 0..rank {
                        acc += a[(node, k)] * b[(f, k)] * c[(t, k)];
                    }
                    out[(node, f, t)] = acc;
                }
            }
        }
    }
    out
}

/// Multivariate Imputation by Chained Equations (MICE), cross-sectional
/// variant: each node's series is iteratively re-imputed by a ridge
/// regression on all *other* nodes' (currently filled) values of the same
/// feature at the same timestamp.
///
/// This is the classical iterative-regression imputer the paper's related
/// work cites (van Buuren's MICE), restricted to deterministic regression
/// means (no posterior draws) for reproducibility.
///
/// # Panics
///
/// Panics if shapes differ or `iters == 0`.
pub fn mice_impute(values: &Tensor3, mask: &Tensor3, iters: usize) -> Tensor3 {
    assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
    assert!(iters > 0, "need at least one iteration");
    let (n, d, t_len) = values.shape();
    let ridge = 1e-2;
    // Start from per-series mean fill.
    let mut filled = self::imputation_support::mean_fill_tensor(values, mask);
    if n < 2 {
        return filled;
    }

    for _ in 0..iters {
        for f in 0..d {
            for node in 0..n {
                // Timestamps where this node is observed form the training
                // set; the regressors are the other nodes' current values.
                let observed: Vec<usize> =
                    (0..t_len).filter(|&t| mask[(node, f, t)] != 0.0).collect();
                let missing: Vec<usize> =
                    (0..t_len).filter(|&t| mask[(node, f, t)] == 0.0).collect();
                if observed.len() < n || missing.is_empty() {
                    continue;
                }
                let design = Matrix::from_fn(observed.len(), n, |r, c| {
                    if c == 0 {
                        1.0 // intercept
                    } else {
                        let other = if c - 1 >= node { c } else { c - 1 };
                        filled[(other, f, observed[r])]
                    }
                });
                let rhs = Matrix::from_fn(observed.len(), 1, |r, _| values[(node, f, observed[r])]);
                if let Ok(w) = linalg::least_squares(&design, &rhs, ridge) {
                    for &t in &missing {
                        let mut acc = w[(0, 0)];
                        for c in 1..n {
                            let other = if c - 1 >= node { c } else { c - 1 };
                            acc += w[(c, 0)] * filled[(other, f, t)];
                        }
                        filled[(node, f, t)] = acc;
                    }
                }
            }
        }
    }
    filled
}

#[derive(Clone, Copy)]
enum Mode {
    Node,
    Feature,
    Time,
}

fn cp_mode_update(
    target: &mut Matrix,
    other1: &Matrix,
    other2: &Matrix,
    values: &Tensor3,
    mask: &Tensor3,
    mode: Mode,
    ridge: f64,
) {
    let rank = target.cols();
    let (n, d, t_len) = values.shape();
    for row in 0..target.rows() {
        let mut design: Vec<[usize; 2]> = Vec::new();
        match mode {
            Mode::Node => {
                for f in 0..d {
                    for t in 0..t_len {
                        if mask[(row, f, t)] != 0.0 {
                            design.push([f, t]);
                        }
                    }
                }
            }
            Mode::Feature => {
                for node in 0..n {
                    for t in 0..t_len {
                        if mask[(node, row, t)] != 0.0 {
                            design.push([node, t]);
                        }
                    }
                }
            }
            Mode::Time => {
                for node in 0..n {
                    for f in 0..d {
                        if mask[(node, f, row)] != 0.0 {
                            design.push([node, f]);
                        }
                    }
                }
            }
        }
        if design.is_empty() {
            continue;
        }
        let x = Matrix::from_fn(design.len(), rank, |r, k| {
            other1[(design[r][0], k)] * other2[(design[r][1], k)]
        });
        let y = Matrix::from_fn(design.len(), 1, |r, _| {
            let [i, j] = design[r];
            match mode {
                Mode::Node => values[(row, i, j)],
                Mode::Feature => values[(i, row, j)],
                Mode::Time => values[(i, j, row)],
            }
        });
        if let Ok(sol) = linalg::least_squares(&x, &y, ridge) {
            for k in 0..rank {
                target[(row, k)] = sol[(k, 0)];
            }
        }
    }
}

pub(crate) mod imputation_support {
    //! Small shared helpers for the imputers.
    use st_tensor::Tensor3;

    /// Per-(node, feature) mean fill over the whole tensor.
    pub fn mean_fill_tensor(values: &Tensor3, mask: &Tensor3) -> Tensor3 {
        st_data::mean_fill(values, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::{drop_observed, missing_rate};
    use st_tensor::rng as seeded;

    /// Low-rank synthetic cube: value = node_factor · sin(time) pattern.
    fn low_rank_cube() -> Tensor3 {
        Tensor3::from_fn(6, 2, 60, |n, f, t| {
            let base = (t as f64 * 0.2).sin() + 1.5;
            (n as f64 + 1.0) * base * (f as f64 + 1.0)
        })
    }

    fn hidden_error(original: &Tensor3, filled: &Tensor3, mask: &Tensor3) -> f64 {
        let mut acc = 0.0;
        let mut count = 0usize;
        for i in 0..original.len() {
            if mask.as_slice()[i] == 0.0 {
                acc += (original.as_slice()[i] - filled.as_slice()[i]).abs();
                count += 1;
            }
        }
        acc / count.max(1) as f64
    }

    #[test]
    fn all_methods_preserve_observed_entries() {
        let x = low_rank_cube();
        let mask = drop_observed(&Tensor3::ones(6, 2, 60), 0.4, &mut seeded(1));
        for filled in [
            last_observed_fill(&x, &mask),
            knn_impute(&x, &mask, 3),
            matrix_factorization_impute(&x, &mask, 3, 10, 2),
            cp_impute(&x, &mask, 3, 8, 3),
            mice_impute(&x, &mask, 2),
        ] {
            for i in 0..x.len() {
                if mask.as_slice()[i] != 0.0 {
                    assert_eq!(filled.as_slice()[i], x.as_slice()[i]);
                }
            }
            assert!(filled.is_finite());
        }
    }

    #[test]
    fn last_observed_carries_forward() {
        let mut x = Tensor3::zeros(1, 1, 5);
        x[(0, 0, 1)] = 7.0;
        let mut mask = Tensor3::zeros(1, 1, 5);
        mask[(0, 0, 1)] = 1.0;
        let filled = last_observed_fill(&x, &mask);
        assert_eq!(filled[(0, 0, 0)], 7.0); // backward fill of leading gap
        assert_eq!(filled[(0, 0, 2)], 7.0);
        assert_eq!(filled[(0, 0, 4)], 7.0);
    }

    #[test]
    fn knn_uses_similar_nodes() {
        // Nodes 0 and 1 are identical; node 2 is far away.
        let x = Tensor3::from_fn(
            3,
            1,
            30,
            |n, _, t| {
                if n < 2 {
                    (t as f64 * 0.3).sin()
                } else {
                    100.0
                }
            },
        );
        let mut mask = Tensor3::ones(3, 1, 30);
        mask[(0, 0, 10)] = 0.0;
        let filled = knn_impute(&x, &mask, 1);
        // Must copy node 1's value, not node 2's.
        assert!((filled[(0, 0, 10)] - x[(1, 0, 10)]).abs() < 1e-9);
    }

    #[test]
    fn mf_recovers_low_rank_structure() {
        let x = low_rank_cube();
        let mask = drop_observed(&Tensor3::ones(6, 2, 60), 0.3, &mut seeded(4));
        let filled = matrix_factorization_impute(&x, &mask, 1, 15, 5);
        let mae = hidden_error(&x, &filled, &mask);
        // The cube is rank-1 per feature; rank-matched MF reconstructs it.
        assert!(mae < 0.05, "MF hidden MAE {mae}");
    }

    #[test]
    fn cp_recovers_low_rank_structure() {
        let x = low_rank_cube();
        let mask = drop_observed(&Tensor3::ones(6, 2, 60), 0.3, &mut seeded(6));
        // The cube is exactly rank-1: value = (n+1)·(f+1)·base(t).
        let filled = cp_impute(&x, &mask, 1, 12, 7);
        let mae = hidden_error(&x, &filled, &mask);
        assert!(mae < 0.1, "CP hidden MAE {mae}");
    }

    #[test]
    fn mf_beats_last_observed_on_smooth_data() {
        let x = low_rank_cube();
        let mask = drop_observed(&Tensor3::ones(6, 2, 60), 0.5, &mut seeded(8));
        assert!((missing_rate(&mask) - 0.5).abs() < 0.1);
        let last = hidden_error(&x, &last_observed_fill(&x, &mask), &mask);
        let mf = hidden_error(&x, &matrix_factorization_impute(&x, &mask, 2, 15, 9), &mask);
        assert!(mf < last, "MF {mf} should beat Last {last}");
    }

    #[test]
    fn mice_exploits_cross_node_structure() {
        // Node 0 = 2·node1 + 1 exactly; MICE should recover hidden entries
        // of node 0 from node 1 almost perfectly.
        let x = Tensor3::from_fn(3, 1, 50, |n, _, t| {
            let base = (t as f64 * 0.3).sin() * 5.0 + 10.0;
            match n {
                0 => 2.0 * base + 1.0,
                1 => base,
                _ => (t as f64 * 0.11).cos() * 3.0,
            }
        });
        let mut mask = Tensor3::ones(3, 1, 50);
        for t in (0..50).step_by(3) {
            mask[(0, 0, t)] = 0.0;
        }
        let filled = mice_impute(&x, &mask, 3);
        let mae = hidden_error(&x, &filled, &mask);
        assert!(mae < 0.05, "MICE hidden MAE {mae}");
    }

    #[test]
    fn mice_beats_plain_mean_fill() {
        let x = low_rank_cube();
        let mask = drop_observed(&Tensor3::ones(6, 2, 60), 0.4, &mut seeded(12));
        let mean = hidden_error(&x, &st_data::mean_fill(&x, &mask), &mask);
        let mice = hidden_error(&x, &mice_impute(&x, &mask, 3), &mask);
        assert!(mice < mean, "MICE {mice} should beat mean fill {mean}");
    }

    #[test]
    fn fully_missing_series_handled() {
        let x = low_rank_cube();
        let mut mask = Tensor3::ones(6, 2, 60);
        for t in 0..60 {
            mask[(0, 0, t)] = 0.0;
        }
        for filled in [
            last_observed_fill(&x, &mask),
            knn_impute(&x, &mask, 2),
            matrix_factorization_impute(&x, &mask, 2, 5, 10),
            cp_impute(&x, &mask, 2, 5, 11),
        ] {
            assert!(filled.is_finite());
        }
    }
}
