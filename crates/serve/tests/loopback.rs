//! End-to-end loopback test: a real server on an ephemeral port, driven
//! through the bundled [`HttpClient`], checked **bit-for-bit** against an
//! identical in-process [`OnlineForecaster`].

use rihgcn_core::{prepare_split, OnlineForecaster, RihgcnConfig, RihgcnModel};
use st_data::{generate_pems, PemsConfig, TrafficDataset};
use st_serve::{wire, HttpClient, ServeConfig, Server};
use st_tensor::rng;
use std::time::Duration;

const HISTORY: usize = 4;

fn forecaster() -> (OnlineForecaster, TrafficDataset) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut rng(3));
    let (norm, z) = prepare_split(&ds.split_chronological());
    let cfg = RihgcnConfig {
        gcn_dim: 3,
        lstm_dim: 4,
        cheb_k: 2,
        num_temporal_graphs: 2,
        history: HISTORY,
        horizon: 2,
        ..Default::default()
    };
    let model = RihgcnModel::from_dataset(&norm.train, cfg);
    (OnlineForecaster::new(model, z), ds)
}

fn start_server() -> (Server, HttpClient, TrafficDataset) {
    let (online, ds) = forecaster();
    let server = Server::start(
        online,
        ServeConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let client = HttpClient::connect(&server.local_addr().to_string(), Duration::from_secs(10))
        .expect("connect to server");
    (server, client, ds)
}

#[test]
fn http_forecasts_match_in_process_bit_for_bit() {
    let (server, mut client, ds) = start_server();
    // A second forecaster built the same deterministic way is the oracle.
    let (mut oracle, _) = forecaster();

    // Health before any observation.
    let health = client.get_ok("/healthz").expect("healthz");
    assert!(health.contains("nodes 4"), "health: {health}");
    assert!(
        health.contains("buffered 0 ready false"),
        "health: {health}"
    );

    // Forecast before the window fills → 409 Conflict.
    let resp = client.request("GET", "/forecast", "").expect("request");
    assert_eq!(resp.status, 409, "body: {}", resp.body);
    assert!(resp.body.contains("window not full"), "body: {}", resp.body);

    // Fill the window through HTTP and the oracle identically.
    for t in 0..HISTORY {
        let values = ds.values.time_slice(t);
        let mask = ds.mask.time_slice(t);
        let body = wire::format_observation(t, &values, &mask);
        let ack = client.post_ok("/observe", &body).expect("observe");
        assert!(ack.contains(&format!("version {}", t + 1)), "ack: {ack}");
        oracle.push(values, mask, t);
    }

    // Forecast and imputed window must round-trip bit-identically.
    let forecast_text = client.get_ok("/forecast").expect("forecast");
    let (version, steps) = wire::parse_steps(&forecast_text).expect("parse forecast");
    assert_eq!(version, HISTORY as u64);
    assert_eq!(steps, oracle.forecast().expect("oracle forecast"));

    let imputed_text = client.get_ok("/imputed").expect("imputed");
    let (_, imputed) = wire::parse_steps(&imputed_text).expect("parse imputed");
    assert_eq!(imputed, oracle.imputed_window().expect("oracle imputed"));

    // Repeats at the same window version are coalesced onto the cache:
    // still bit-identical, no extra tape runs.
    let runs_before = server.tape_runs();
    let again = client.get_ok("/forecast").expect("forecast again");
    assert_eq!(again, forecast_text, "cache must serve identical bytes");
    let again = client.get_ok("/forecast").expect("forecast again");
    let (_, steps_again) = wire::parse_steps(&again).expect("parse");
    assert_eq!(steps_again, steps);
    assert_eq!(
        server.tape_runs(),
        runs_before,
        "cached repeats run no tape"
    );
    assert!(server.metrics().total_cache_hits() >= 2);

    // A new observation advances the version and invalidates the cache.
    let body = wire::format_observation(
        HISTORY,
        &ds.values.time_slice(HISTORY),
        &ds.mask.time_slice(HISTORY),
    );
    client.post_ok("/observe", &body).expect("observe");
    oracle.push(
        ds.values.time_slice(HISTORY),
        ds.mask.time_slice(HISTORY),
        HISTORY,
    );
    let text = client.get_ok("/forecast").expect("forecast after advance");
    let (version, steps) = wire::parse_steps(&text).expect("parse");
    assert_eq!(version, HISTORY as u64 + 1);
    assert_eq!(steps, oracle.forecast().expect("oracle forecast"));

    // Error paths: malformed observation, unknown route, wrong method.
    let resp = client
        .request("POST", "/observe", "slot 0\nvalues 1 2\nmask 1 1\n")
        .expect("request");
    assert_eq!(resp.status, 400, "body: {}", resp.body);
    let resp = client.request("GET", "/nope", "").expect("request");
    assert_eq!(resp.status, 404);
    let resp = client.request("DELETE", "/forecast", "").expect("request");
    assert_eq!(resp.status, 405);

    // Metrics reflect the traffic.
    let metrics = client.get_ok("/metrics").expect("metrics");
    assert!(
        metrics.contains("st_serve_requests_total{route=\"forecast\"} 5"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("st_serve_cache_hits_total 2"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("st_serve_errors_total"),
        "metrics: {metrics}"
    );

    // Graceful shutdown over HTTP; the server drains and joins cleanly,
    // returning the forecaster with the full window state.
    let bye = client.post_ok("/admin/shutdown", "").expect("shutdown");
    assert!(bye.contains("shutting down"), "bye: {bye}");
    let online = server.join();
    assert_eq!(online.len(), HISTORY, "rolling window stays capped");
    assert_eq!(online.window_version(), HISTORY as u64 + 1);
}

#[test]
fn shutdown_handle_stops_an_idle_server() {
    let (server, mut client, _) = start_server();
    client.get_ok("/healthz").expect("healthz");
    server.shutdown_handle().shutdown();
    let online = server.join();
    assert_eq!(online.len(), 0);
}
