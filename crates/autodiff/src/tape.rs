//! Reverse-mode automatic differentiation tape.
//!
//! The [`Tape`] records a computation as a sequence of matrix-valued nodes.
//! Nodes are created in topological order (an operation can only reference
//! earlier nodes), so [`Tape::backward`] is a single reverse sweep that
//! accumulates gradients into every node that transitively depends on a
//! parameter.
//!
//! This is exactly the machinery the paper's "imputed values are trainable
//! variables" trick needs: the estimated matrix `X̂_{t+1}` stays a tape node,
//! so the prediction loss at later timestamps sends *delayed gradients* back
//! through the imputation at earlier timestamps.
//!
//! # Buffer reuse
//!
//! Training replays the same graph topology every step, so the tape owns a
//! [`MatrixPool`] and routes every forward value, backward scratch gradient
//! and persistent gradient slot through it. [`Tape::reset`] returns all of
//! them to the pool instead of freeing them; at steady state a recycled tape
//! performs no heap allocation at all. Pooled execution is bit-identical to
//! the allocating path: recycled buffers are fully overwritten (`*_into`
//! kernels) or seeded by `copy_from` (a memcpy), never partially updated.

use st_tensor::{Matrix, MatrixPool, PoolStats};

/// Handle to a node on a [`Tape`].
///
/// `Var`s are cheap copyable indices; they are only meaningful for the tape
/// that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The raw node index on the owning tape.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Matmul(usize, usize),
    Scale(usize, f64),
    AddScalar(usize),
    AddBias { x: usize, bias: usize },
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    Abs(usize),
    ConcatCols(usize, usize),
    SliceCols { x: usize, start: usize },
    Sum(usize),
    Mean(usize),
    SoftmaxRows(usize),
    ScaleVar { x: usize, s: usize },
    ToWide { x: usize, blocks: usize },
    ToStacked { x: usize, blocks: usize },
    ScaleBlocks { x: usize, s: usize },
    MeanBlocks { x: usize, blocks: usize },
    Transpose(usize),
    Exp(usize),
    Ln(usize),
    Sqrt(usize),
    Div(usize, usize),
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    needs_grad: bool,
}

/// A reverse-mode autodiff tape over dense matrices.
///
/// # Examples
///
/// ```
/// use st_autodiff::Tape;
/// use st_tensor::Matrix;
///
/// let mut tape = Tape::new();
/// let x = tape.parameter(Matrix::from_rows(&[&[3.0]]));
/// let y = tape.mul(x, x); // y = x²
/// let loss = tape.sum(y);
/// tape.backward(loss);
/// assert_eq!(tape.grad(x)[(0, 0)], 6.0); // dy/dx = 2x
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    pool: MatrixPool,
    // Per-sweep scratch gradients, kept across sweeps so the Vec itself is
    // reused; every entry is `None` between sweeps.
    sweep: Vec<Option<Matrix>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears all nodes, returning every value and gradient buffer to the
    /// tape's pool.
    ///
    /// The node `Vec`'s capacity is kept, so a recycled tape re-records the
    /// same graph without growing. `Var`s from before the reset are invalid
    /// (they would index into the new recording).
    pub fn reset(&mut self) {
        let Tape { nodes, pool, sweep } = self;
        for node in nodes.drain(..) {
            pool.release(node.value);
            if let Some(g) = node.grad {
                pool.release(g);
            }
        }
        for g in sweep.iter_mut() {
            if let Some(g) = g.take() {
                pool.release(g);
            }
        }
    }

    /// Cumulative hit/miss statistics of the tape's buffer pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Bytes currently parked in the pool's free lists.
    pub fn pool_free_bytes(&self) -> usize {
        self.pool.free_bytes()
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant: gradients are not tracked through it.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Records a constant by copying `value` into a pooled buffer.
    pub fn constant_ref(&mut self, value: &Matrix) -> Var {
        let mut v = self.pool.acquire(value.rows(), value.cols());
        v.copy_from(value);
        self.push(v, Op::Leaf, false)
    }

    /// Records an all-zero constant in a pooled buffer.
    pub fn constant_zeros(&mut self, rows: usize, cols: usize) -> Var {
        let v = self.pool.acquire_zeroed(rows, cols);
        self.push(v, Op::Leaf, false)
    }

    /// Records a `rows × 1` constant column filled from `f(row)`, in a
    /// pooled buffer (no per-call heap allocation at steady state). Used
    /// for the per-block scalars of [`Tape::scale_blocks`].
    pub fn constant_col_with(&mut self, rows: usize, mut f: impl FnMut(usize) -> f64) -> Var {
        let mut v = self.pool.acquire(rows, 1);
        for r in 0..rows {
            v[(r, 0)] = f(r);
        }
        self.push(v, Op::Leaf, false)
    }

    /// Records a trainable parameter leaf.
    pub fn parameter(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Records a trainable parameter leaf by copying `value` into a pooled
    /// buffer.
    pub fn parameter_ref(&mut self, value: &Matrix) -> Var {
        let mut v = self.pool.acquire(value.rows(), value.cols());
        v.copy_from(value);
        self.push(v, Op::Leaf, true)
    }

    /// The forward value of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node; a zero matrix if [`Tape::backward`]
    /// has not reached it.
    ///
    /// Allocates a copy on every call — prefer [`Tape::grad_ref`] in hot
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn grad(&self, v: Var) -> Matrix {
        let node = &self.nodes[v.0];
        node.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(node.value.rows(), node.value.cols()))
    }

    /// Borrows the accumulated gradient of a node; `None` if
    /// [`Tape::backward`] has not reached it (i.e. the gradient is zero).
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this tape.
    pub fn grad_ref(&self, v: Var) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Whether gradients flow through this node.
    pub fn needs_grad(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    fn binary_needs(&self, a: Var, b: Var) -> bool {
        self.nodes[a.0].needs_grad || self.nodes[b.0].needs_grad
    }

    /// Elementwise sum `a + b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, &mut v, |x, y| x + y);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Add(a.0, b.0), ng)
    }

    /// Elementwise difference `a − b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, &mut v, |x, y| x - y);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Sub(a.0, b.0), ng)
    }

    /// Elementwise (Hadamard) product `a ⊙ b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0]
            .value
            .hadamard_into(&self.nodes[b.0].value, &mut v);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Mul(a.0, b.0), ng)
    }

    /// Matrix product `a · b`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let rows = self.nodes[a.0].value.rows();
        let cols = self.nodes[b.0].value.cols();
        let mut v = self.pool.acquire(rows, cols);
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut v);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Matmul(a.0, b.0), ng)
    }

    /// Scalar multiple `s · a`.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0].value.map_into(&mut v, |x| x * s);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Scale(a.0, s), ng)
    }

    /// Adds the scalar `s` to every element.
    pub fn add_scalar(&mut self, a: Var, s: f64) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0].value.map_into(&mut v, |x| x + s);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::AddScalar(a.0), ng)
    }

    /// Adds the `1 × C` row vector `bias` to every row of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a row vector of matching width.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let (r, c) = self.nodes[x.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[x.0]
            .value
            .add_row_broadcast_into(&self.nodes[bias.0].value, &mut v);
        let ng = self.binary_needs(x, bias);
        self.push(
            v,
            Op::AddBias {
                x: x.0,
                bias: bias.0,
            },
            ng,
        )
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0]
            .value
            .map_into(&mut v, |x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Sigmoid(a.0), ng)
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0].value.map_into(&mut v, f64::tanh);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Tanh(a.0), ng)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0].value.map_into(&mut v, |x| x.max(0.0));
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Relu(a.0), ng)
    }

    /// Elementwise absolute value (subgradient 0 at the origin).
    pub fn abs(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0].value.map_into(&mut v, f64::abs);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Abs(a.0), ng)
    }

    /// Horizontal concatenation `[a; b]` along columns.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let rows = self.nodes[a.0].value.rows();
        let cols = self.nodes[a.0].value.cols() + self.nodes[b.0].value.cols();
        let mut v = self.pool.acquire(rows, cols);
        self.nodes[a.0]
            .value
            .hcat_into(&self.nodes[b.0].value, &mut v);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::ConcatCols(a.0, b.0), ng)
    }

    /// Columns `[start, end)` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_cols(&mut self, x: Var, start: usize, end: usize) -> Var {
        assert!(
            start <= end && end <= self.nodes[x.0].value.cols(),
            "slice_cols range out of bounds"
        );
        let rows = self.nodes[x.0].value.rows();
        let mut v = self.pool.acquire(rows, end - start);
        self.nodes[x.0].value.slice_cols_into(start, end, &mut v);
        let ng = self.nodes[x.0].needs_grad;
        self.push(v, Op::SliceCols { x: x.0, start }, ng)
    }

    /// Sum of all elements as a `1 × 1` matrix.
    pub fn sum(&mut self, a: Var) -> Var {
        let s = self.nodes[a.0].value.sum();
        let mut v = self.pool.acquire(1, 1);
        v.fill(s);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Sum(a.0), ng)
    }

    /// Mean of all elements as a `1 × 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty.
    pub fn mean(&mut self, a: Var) -> Var {
        assert!(!self.nodes[a.0].value.is_empty(), "mean of empty matrix");
        let s = self.nodes[a.0].value.mean();
        let mut v = self.pool.acquire(1, 1);
        v.fill(s);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Mean(a.0), ng)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        v.copy_from(&self.nodes[a.0].value);
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut denom = 0.0;
            for e in row.iter_mut() {
                *e = (*e - max).exp();
                denom += *e;
            }
            for e in row.iter_mut() {
                *e /= denom;
            }
        }
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::SoftmaxRows(a.0), ng)
    }

    /// Scales `x` by the `1 × 1` variable `s` (both gradients tracked).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not `1 × 1`.
    pub fn scale_var(&mut self, x: Var, s: Var) -> Var {
        let sv = &self.nodes[s.0].value;
        assert_eq!(sv.shape(), (1, 1), "scale_var scalar must be 1x1");
        let sv = sv[(0, 0)];
        let (r, c) = self.nodes[x.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[x.0].value.map_into(&mut v, |x| x * sv);
        let ng = self.binary_needs(x, s);
        self.push(v, Op::ScaleVar { x: x.0, s: s.0 }, ng)
    }

    // ----- batched-layout ops -----------------------------------------
    //
    // A batch of B same-shaped windows lives on the tape as one
    // row-stacked `(B·N) × F` node (block `b` = rows `[b·N, (b+1)·N)`).
    // Every row-local op applied to the stack is bit-identical to running
    // the B windows separately; the ops below cover the parts that are
    // not row-local: the layout permutation that widens the stack for a
    // graph propagation `T @ X`, and per-block scalar scaling / reduction.

    /// Row-stacked `(B·N) × F` batch → wide `N × (B·F)` layout:
    /// `out[(i, b·F + j)] = x[(b·N + i, j)]`. A pure f64 permutation (one
    /// memcpy per `(block, row)` pair), so forward and backward are exact.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or does not divide `x`'s row count.
    pub fn to_wide(&mut self, x: Var, blocks: usize) -> Var {
        let (rows, cols) = self.nodes[x.0].value.shape();
        assert!(
            blocks > 0 && rows % blocks == 0,
            "to_wide: blocks {blocks} does not divide {rows} rows"
        );
        let mut v = self.pool.acquire(rows / blocks, blocks * cols);
        self.nodes[x.0].value.wide_from_stacked_into(blocks, &mut v);
        let ng = self.nodes[x.0].needs_grad;
        self.push(v, Op::ToWide { x: x.0, blocks }, ng)
    }

    /// Inverse of [`Tape::to_wide`]: wide `N × (B·F)` → row-stacked
    /// `(B·N) × F`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or does not divide `x`'s column count.
    pub fn to_stacked(&mut self, x: Var, blocks: usize) -> Var {
        let (rows, cols) = self.nodes[x.0].value.shape();
        assert!(
            blocks > 0 && cols % blocks == 0,
            "to_stacked: blocks {blocks} does not divide {cols} cols"
        );
        let mut v = self.pool.acquire(blocks * rows, cols / blocks);
        self.nodes[x.0].value.stacked_from_wide_into(blocks, &mut v);
        let ng = self.nodes[x.0].needs_grad;
        self.push(v, Op::ToStacked { x: x.0, blocks }, ng)
    }

    /// Scales each row block of the stacked batch `x` by its own scalar:
    /// block `b` of the `(B·N) × F` input is multiplied by `s[(b, 0)]`.
    ///
    /// This is [`Tape::scale_var`] applied per block — the same single f64
    /// multiply per element, so block `b` of the output is bit-identical
    /// to `scale_var(window_b, s_b)` on an unbatched tape. Gradients flow
    /// into both `x` and `s` (per-block fused dot, matching `scale_var`'s
    /// backward element order).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not `B × 1` or `B` does not divide `x`'s rows.
    pub fn scale_blocks(&mut self, x: Var, s: Var) -> Var {
        let (b, sc) = self.nodes[s.0].value.shape();
        assert_eq!(sc, 1, "scale_blocks scalars must be Bx1");
        let (rows, cols) = self.nodes[x.0].value.shape();
        assert!(
            b > 0 && rows % b == 0,
            "scale_blocks: {b} blocks do not divide {rows} rows"
        );
        let n = rows / b;
        let mut v = self.pool.acquire(rows, cols);
        {
            let sv = &self.nodes[s.0].value;
            let xv = &self.nodes[x.0].value;
            for blk in 0..b {
                let f = sv[(blk, 0)];
                let span = blk * n * cols..(blk + 1) * n * cols;
                for (o, &xi) in v.as_mut_slice()[span.clone()]
                    .iter_mut()
                    .zip(&xv.as_slice()[span])
                {
                    *o = xi * f;
                }
            }
        }
        let ng = self.binary_needs(x, s);
        self.push(v, Op::ScaleBlocks { x: x.0, s: s.0 }, ng)
    }

    /// Per-block mean of the stacked batch `x` as a `B × 1` node:
    /// `out[(b, 0)] = mean(block b)`.
    ///
    /// Block rows are contiguous in the stacked layout, so each block's
    /// summation runs in the same element order as [`Tape::mean`] on the
    /// unbatched window — the reduction is bit-identical per block.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `blocks` does not divide its row count.
    pub fn mean_blocks(&mut self, x: Var, blocks: usize) -> Var {
        let (rows, cols) = self.nodes[x.0].value.shape();
        assert!(
            !self.nodes[x.0].value.is_empty(),
            "mean_blocks of empty matrix"
        );
        assert!(
            blocks > 0 && rows % blocks == 0,
            "mean_blocks: blocks {blocks} does not divide {rows} rows"
        );
        let n = rows / blocks;
        let mut v = self.pool.acquire(blocks, 1);
        for blk in 0..blocks {
            let span = &self.nodes[x.0].value.as_slice()[blk * n * cols..(blk + 1) * n * cols];
            let s: f64 = span.iter().sum();
            v[(blk, 0)] = s / (n * cols) as f64;
        }
        let ng = self.nodes[x.0].needs_grad;
        self.push(v, Op::MeanBlocks { x: x.0, blocks }, ng)
    }

    /// Transpose of `x`.
    pub fn transpose(&mut self, x: Var) -> Var {
        let (r, c) = self.nodes[x.0].value.shape();
        let mut v = self.pool.acquire(c, r);
        self.nodes[x.0].value.transpose_into(&mut v);
        let ng = self.nodes[x.0].needs_grad;
        self.push(v, Op::Transpose(x.0), ng)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0].value.map_into(&mut v, f64::exp);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Exp(a.0), ng)
    }

    /// Elementwise natural logarithm.
    ///
    /// # Panics
    ///
    /// Panics if any element is not strictly positive.
    pub fn ln(&mut self, a: Var) -> Var {
        assert!(
            self.nodes[a.0].value.as_slice().iter().all(|&x| x > 0.0),
            "ln requires strictly positive inputs"
        );
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0].value.map_into(&mut v, f64::ln);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Ln(a.0), ng)
    }

    /// Elementwise square root.
    ///
    /// # Panics
    ///
    /// Panics if any element is negative.
    pub fn sqrt(&mut self, a: Var) -> Var {
        assert!(
            self.nodes[a.0].value.as_slice().iter().all(|&x| x >= 0.0),
            "sqrt requires non-negative inputs"
        );
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0].value.map_into(&mut v, f64::sqrt);
        let ng = self.nodes[a.0].needs_grad;
        self.push(v, Op::Sqrt(a.0), ng)
    }

    /// Elementwise division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or any divisor is zero.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        assert!(
            self.nodes[b.0].value.as_slice().iter().all(|&x| x != 0.0),
            "division by zero"
        );
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.pool.acquire(r, c);
        self.nodes[a.0]
            .value
            .zip_map_into(&self.nodes[b.0].value, &mut v, |x, y| x / y);
        let ng = self.binary_needs(a, b);
        self.push(v, Op::Div(a.0, b.0), ng)
    }

    // ----- composite conveniences -------------------------------------

    /// Mean absolute error `mean(|a − b|)` as a `1 × 1` node.
    pub fn mae(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let d = self.abs(d);
        self.mean(d)
    }

    /// Mean squared error `mean((a − b)²)` as a `1 × 1` node.
    pub fn mse(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.mul(d, d);
        self.mean(sq)
    }

    /// Masked mean absolute error: `sum(|a − b| ⊙ mask) / max(1, sum(mask))`.
    ///
    /// `mask` is a constant `{0,1}` matrix of the same shape.
    pub fn masked_mae(&mut self, a: Var, b: Var, mask: &Matrix) -> Var {
        let m = self.constant_ref(mask);
        self.masked_mae_var(a, b, m)
    }

    /// [`Tape::masked_mae`] with the mask already on the tape.
    ///
    /// The normaliser `max(1, sum(mask))` is read from the mask node's
    /// forward value and treated as a constant, exactly like `masked_mae`;
    /// gradients do not flow into `mask` through the count.
    pub fn masked_mae_var(&mut self, a: Var, b: Var, mask: Var) -> Var {
        let count = self.nodes[mask.0].value.sum().max(1.0);
        let d = self.sub(a, b);
        let d = self.abs(d);
        let d = self.mul(d, mask);
        let s = self.sum(d);
        self.scale(s, 1.0 / count)
    }

    /// Runs the reverse sweep from `loss`, which must be a `1 × 1` node.
    ///
    /// Gradients accumulate into every node with `needs_grad`; read them back
    /// with [`Tape::grad_ref`]. Calling `backward` twice accumulates twice.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss node"
        );
        let nodes = loss.0 + 1;
        let _span = st_obs::span!("autodiff.backward", nodes);
        let mut seed = self.pool.acquire(1, 1);
        seed.fill(1.0);
        self.seed_and_sweep(loss, seed);
    }

    fn seed_and_sweep(&mut self, root: Var, seed: Matrix) {
        if !self.nodes[root.0].needs_grad {
            self.pool.release(seed);
            return;
        }
        // Per-sweep scratch gradients: using a separate buffer (instead of the
        // persistent `grad` slots) gives PyTorch-like semantics where calling
        // `backward` twice adds d(loss)/d(node) twice, rather than compounding
        // previously-stored gradients through the sweep.
        if self.sweep.len() < root.0 + 1 {
            self.sweep.resize_with(root.0 + 1, || None);
        }
        let Tape { nodes, pool, sweep } = self;
        acc_owned(nodes, sweep, pool, root.0, seed);

        // Children always have higher indices than their parents, so by the
        // time the sweep visits node `i` its scratch gradient is final: take
        // it, distribute to parents, then merge it into the persistent slot.
        for i in (0..=root.0).rev() {
            let Some(g) = sweep[i].take() else { continue };
            match nodes[i].op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    acc_ref(nodes, sweep, pool, a, &g);
                    acc_ref(nodes, sweep, pool, b, &g);
                }
                Op::Sub(a, b) => {
                    acc_ref(nodes, sweep, pool, a, &g);
                    let mut neg = pool.acquire(g.rows(), g.cols());
                    g.map_into(&mut neg, |x| x * -1.0);
                    acc_owned(nodes, sweep, pool, b, neg);
                }
                Op::Mul(a, b) => {
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.hadamard_into(&nodes[b].value, &mut ga);
                    let mut gb = pool.acquire(g.rows(), g.cols());
                    g.hadamard_into(&nodes[a].value, &mut gb);
                    acc_owned(nodes, sweep, pool, a, ga);
                    acc_owned(nodes, sweep, pool, b, gb);
                }
                Op::Matmul(a, b) => {
                    if nodes[a].needs_grad {
                        let mut ga = pool.acquire(g.rows(), nodes[b].value.rows());
                        g.matmul_nt_into(&nodes[b].value, &mut ga);
                        acc_owned(nodes, sweep, pool, a, ga);
                    }
                    if nodes[b].needs_grad {
                        let mut gb = pool.acquire(nodes[a].value.cols(), g.cols());
                        nodes[a].value.matmul_tn_into(&g, &mut gb);
                        acc_owned(nodes, sweep, pool, b, gb);
                    }
                }
                Op::Scale(a, s) => {
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.map_into(&mut ga, |x| x * s);
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::AddScalar(a) => acc_ref(nodes, sweep, pool, a, &g),
                Op::AddBias { x, bias } => {
                    acc_ref(nodes, sweep, pool, x, &g);
                    if nodes[bias].needs_grad {
                        let mut gb = pool.acquire(1, g.cols());
                        g.sum_cols_into(&mut gb);
                        acc_owned(nodes, sweep, pool, bias, gb);
                    }
                }
                Op::Sigmoid(a) => {
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, &mut ga, |gi, yi| gi * yi * (1.0 - yi));
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::Tanh(a) => {
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, &mut ga, |gi, yi| gi * (1.0 - yi * yi));
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::Relu(a) => {
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.zip_map_into(
                        &nodes[a].value,
                        &mut ga,
                        |gi, xi| {
                            if xi > 0.0 {
                                gi
                            } else {
                                0.0
                            }
                        },
                    );
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::Abs(a) => {
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.zip_map_into(&nodes[a].value, &mut ga, |gi, xi| gi * sign(xi));
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::ConcatCols(a, b) => {
                    let ca = nodes[a].value.cols();
                    let mut ga = pool.acquire(g.rows(), ca);
                    g.slice_cols_into(0, ca, &mut ga);
                    let mut gb = pool.acquire(g.rows(), g.cols() - ca);
                    g.slice_cols_into(ca, g.cols(), &mut gb);
                    acc_owned(nodes, sweep, pool, a, ga);
                    acc_owned(nodes, sweep, pool, b, gb);
                }
                Op::SliceCols { x, start } => {
                    if nodes[x].needs_grad {
                        let (pr, pc) = nodes[x].value.shape();
                        if start == 0 && g.cols() == pc {
                            // The slice covered every column; its gradient
                            // is the parent's gradient — no scatter needed.
                            acc_ref(nodes, sweep, pool, x, &g);
                        } else {
                            let width = g.cols();
                            let mut gx = pool.acquire_zeroed(pr, pc);
                            for r in 0..g.rows() {
                                gx.row_mut(r)[start..start + width].copy_from_slice(g.row(r));
                            }
                            acc_owned(nodes, sweep, pool, x, gx);
                        }
                    }
                }
                Op::Sum(a) => {
                    let s = g[(0, 0)];
                    let (r, c) = nodes[a].value.shape();
                    let mut ga = pool.acquire(r, c);
                    ga.fill(s);
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::Mean(a) => {
                    let (r, c) = nodes[a].value.shape();
                    let s = g[(0, 0)] / (r * c) as f64;
                    let mut ga = pool.acquire(r, c);
                    ga.fill(s);
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &nodes[i].value;
                    let mut ga = pool.acquire(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let yr = y.row(r);
                        let gr = g.row(r);
                        let dot: f64 = yr.iter().zip(gr).map(|(&yi, &gi)| yi * gi).sum();
                        for (o, (&yi, &gi)) in ga.row_mut(r).iter_mut().zip(yr.iter().zip(gr)) {
                            *o = yi * (gi - dot);
                        }
                    }
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::ScaleVar { x, s } => {
                    let sv = nodes[s].value[(0, 0)];
                    if nodes[x].needs_grad {
                        let mut gx = pool.acquire(g.rows(), g.cols());
                        g.map_into(&mut gx, |gi| gi * sv);
                        acc_owned(nodes, sweep, pool, x, gx);
                    }
                    if nodes[s].needs_grad {
                        // Fused g ⊙ x followed by sum, in the same
                        // element order as the materialised product.
                        let dot: f64 = g
                            .as_slice()
                            .iter()
                            .zip(nodes[x].value.as_slice())
                            .map(|(&gi, &xi)| gi * xi)
                            .sum();
                        let mut gs = pool.acquire(1, 1);
                        gs.fill(dot);
                        acc_owned(nodes, sweep, pool, s, gs);
                    }
                }
                Op::ToWide { x, blocks } => {
                    // Inverse permutation: wide gradient → stacked layout.
                    let mut gx = pool.acquire(blocks * g.rows(), g.cols() / blocks);
                    g.stacked_from_wide_into(blocks, &mut gx);
                    acc_owned(nodes, sweep, pool, x, gx);
                }
                Op::ToStacked { x, blocks } => {
                    let mut gx = pool.acquire(g.rows() / blocks, blocks * g.cols());
                    g.wide_from_stacked_into(blocks, &mut gx);
                    acc_owned(nodes, sweep, pool, x, gx);
                }
                Op::ScaleBlocks { x, s } => {
                    let b = nodes[s].value.rows();
                    let n = g.rows() / b;
                    let cols = g.cols();
                    if nodes[x].needs_grad {
                        let mut gx = pool.acquire(g.rows(), cols);
                        for blk in 0..b {
                            let f = nodes[s].value[(blk, 0)];
                            let span = blk * n * cols..(blk + 1) * n * cols;
                            for (o, &gi) in gx.as_mut_slice()[span.clone()]
                                .iter_mut()
                                .zip(&g.as_slice()[span])
                            {
                                *o = gi * f;
                            }
                        }
                        acc_owned(nodes, sweep, pool, x, gx);
                    }
                    if nodes[s].needs_grad {
                        // Per-block fused g ⊙ x dot in the same element
                        // order as ScaleVar's backward on one window.
                        let mut gs = pool.acquire(b, 1);
                        for blk in 0..b {
                            let span = blk * n * cols..(blk + 1) * n * cols;
                            let dot: f64 = g.as_slice()[span.clone()]
                                .iter()
                                .zip(&nodes[x].value.as_slice()[span])
                                .map(|(&gi, &xi)| gi * xi)
                                .sum();
                            gs[(blk, 0)] = dot;
                        }
                        acc_owned(nodes, sweep, pool, s, gs);
                    }
                }
                Op::MeanBlocks { x, blocks } => {
                    let (r, c) = nodes[x].value.shape();
                    let n = r / blocks;
                    let mut ga = pool.acquire(r, c);
                    for blk in 0..blocks {
                        let s = g[(blk, 0)] / (n * c) as f64;
                        ga.as_mut_slice()[blk * n * c..(blk + 1) * n * c].fill(s);
                    }
                    acc_owned(nodes, sweep, pool, x, ga);
                }
                Op::Transpose(x) => {
                    let mut gx = pool.acquire(g.cols(), g.rows());
                    g.transpose_into(&mut gx);
                    acc_owned(nodes, sweep, pool, x, gx);
                }
                Op::Exp(a) => {
                    // d(eˣ) = eˣ — reuse the stored output.
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.hadamard_into(&nodes[i].value, &mut ga);
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::Ln(a) => {
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.zip_map_into(&nodes[a].value, &mut ga, |gi, xi| gi / xi);
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::Sqrt(a) => {
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.zip_map_into(&nodes[i].value, &mut ga, |gi, yi| {
                        gi / (2.0 * yi.max(1e-300))
                    });
                    acc_owned(nodes, sweep, pool, a, ga);
                }
                Op::Div(a, b) => {
                    let mut ga = pool.acquire(g.rows(), g.cols());
                    g.zip_map_into(&nodes[b].value, &mut ga, |gi, bi| gi / bi);
                    acc_owned(nodes, sweep, pool, a, ga);
                    if nodes[b].needs_grad {
                        let mut gb = pool.acquire(g.rows(), g.cols());
                        for (o, ((&gi, &ai), &bi)) in gb.as_mut_slice().iter_mut().zip(
                            g.as_slice()
                                .iter()
                                .zip(nodes[a].value.as_slice())
                                .zip(nodes[b].value.as_slice()),
                        ) {
                            *o = -gi * ai / (bi * bi);
                        }
                        acc_owned(nodes, sweep, pool, b, gb);
                    }
                }
            }
            // Merge this node's sweep gradient into the persistent slot.
            match &mut nodes[i].grad {
                Some(existing) => {
                    existing.axpy(1.0, &g);
                    pool.release(g);
                }
                slot @ None => *slot = Some(g),
            }
        }
    }
}

/// Accumulates a borrowed gradient into the scratch slot for `idx`.
fn acc_ref(
    nodes: &[Node],
    sweep: &mut [Option<Matrix>],
    pool: &mut MatrixPool,
    idx: usize,
    g: &Matrix,
) {
    if !nodes[idx].needs_grad {
        return;
    }
    match &mut sweep[idx] {
        Some(existing) => existing.axpy(1.0, g),
        slot @ None => {
            let mut buf = pool.acquire(g.rows(), g.cols());
            buf.copy_from(g);
            *slot = Some(buf);
        }
    }
}

/// Accumulates an owned (pooled) gradient into the scratch slot for `idx`,
/// returning the buffer to the pool when it isn't moved into the slot.
fn acc_owned(
    nodes: &[Node],
    sweep: &mut [Option<Matrix>],
    pool: &mut MatrixPool,
    idx: usize,
    g: Matrix,
) {
    if !nodes[idx].needs_grad {
        pool.release(g);
        return;
    }
    match &mut sweep[idx] {
        Some(existing) => {
            existing.axpy(1.0, &g);
            pool.release(g);
        }
        slot @ None => *slot = Some(g),
    }
}

impl Tape {
    /// Summary of one node for rendering: label, parent indices, whether it
    /// is a leaf, and whether gradients flow through it.
    pub(crate) fn node_summary(&self, idx: usize) -> (String, Vec<usize>, bool, bool) {
        let node = &self.nodes[idx];
        let (name, parents): (&str, Vec<usize>) = match &node.op {
            Op::Leaf => (if node.needs_grad { "param" } else { "const" }, Vec::new()),
            Op::Add(a, b) => ("add", vec![*a, *b]),
            Op::Sub(a, b) => ("sub", vec![*a, *b]),
            Op::Mul(a, b) => ("mul", vec![*a, *b]),
            Op::Matmul(a, b) => ("matmul", vec![*a, *b]),
            Op::Scale(a, _) => ("scale", vec![*a]),
            Op::AddScalar(a) => ("add_scalar", vec![*a]),
            Op::AddBias { x, bias } => ("add_bias", vec![*x, *bias]),
            Op::Sigmoid(a) => ("sigmoid", vec![*a]),
            Op::Tanh(a) => ("tanh", vec![*a]),
            Op::Relu(a) => ("relu", vec![*a]),
            Op::Abs(a) => ("abs", vec![*a]),
            Op::ConcatCols(a, b) => ("concat", vec![*a, *b]),
            Op::SliceCols { x, .. } => ("slice", vec![*x]),
            Op::Sum(a) => ("sum", vec![*a]),
            Op::Mean(a) => ("mean", vec![*a]),
            Op::SoftmaxRows(a) => ("softmax", vec![*a]),
            Op::ScaleVar { x, s } => ("scale_var", vec![*x, *s]),
            Op::ToWide { x, .. } => ("to_wide", vec![*x]),
            Op::ToStacked { x, .. } => ("to_stacked", vec![*x]),
            Op::ScaleBlocks { x, s } => ("scale_blocks", vec![*x, *s]),
            Op::MeanBlocks { x, .. } => ("mean_blocks", vec![*x]),
            Op::Transpose(a) => ("transpose", vec![*a]),
            Op::Exp(a) => ("exp", vec![*a]),
            Op::Ln(a) => ("ln", vec![*a]),
            Op::Sqrt(a) => ("sqrt", vec![*a]),
            Op::Div(a, b) => ("div", vec![*a, *b]),
        };
        let (r, c) = node.value.shape();
        (
            format!("{name} {r}x{c}"),
            parents,
            matches!(node.op, Op::Leaf),
            node.needs_grad,
        )
    }
}

fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}
