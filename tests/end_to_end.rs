//! End-to-end integration: generate data → split → train RIHGCN → evaluate
//! prediction and imputation, exercising every crate in the workspace.

use rihgcn::core::{
    evaluate_imputation, evaluate_prediction, fit, prepare_split, RihgcnConfig, RihgcnModel,
    TrainConfig,
};
use rihgcn::data::{generate_pems, PemsConfig, WindowSampler};
use rihgcn::tensor::rng;

fn tiny_cfg() -> RihgcnConfig {
    RihgcnConfig {
        gcn_dim: 4,
        lstm_dim: 6,
        cheb_k: 2,
        num_temporal_graphs: 2,
        history: 6,
        horizon: 3,
        ..Default::default()
    }
}

#[test]
fn rihgcn_full_pipeline_produces_sane_metrics() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 5,
        num_days: 3,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.4, &mut rng(42));
    let (norm, z) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(6, 3, 24);
    let train = sampler.sample(&norm.train);
    let val = sampler.sample(&norm.val);
    let test = sampler.sample(&norm.test);
    assert!(!train.is_empty() && !test.is_empty());

    let mut model = RihgcnModel::from_dataset(&norm.train, tiny_cfg());
    let tc = TrainConfig {
        max_epochs: 3,
        batch_size: 8,
        ..Default::default()
    };
    let report = fit(&mut model, &train, &val, &tc);
    assert!(report.epochs() >= 1);
    assert!(report.train_losses.iter().all(|l| l.is_finite()));

    let pred = evaluate_prediction(&model, &test, &z);
    // Speeds are ~20–70 mph; a sane model is well inside this band.
    assert!(
        pred.mae > 0.0 && pred.mae < 40.0,
        "prediction MAE {}",
        pred.mae
    );
    assert!(pred.rmse >= pred.mae);

    let imp = evaluate_imputation(&model, &test, &z);
    assert!(
        imp.mae > 0.0 && imp.mae < 40.0,
        "imputation MAE {}",
        imp.mae
    );
}

#[test]
fn training_beats_untrained_model() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 5,
        num_days: 3,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut rng(7));
    let (norm, z) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(6, 3, 24);
    let train = sampler.sample(&norm.train);
    let test = sampler.sample(&norm.test);

    let untrained = RihgcnModel::from_dataset(&norm.train, tiny_cfg());
    let before = evaluate_prediction(&untrained, &test, &z);

    let mut model = RihgcnModel::from_dataset(&norm.train, tiny_cfg());
    let tc = TrainConfig {
        max_epochs: 5,
        batch_size: 8,
        learning_rate: 3e-3,
        ..Default::default()
    };
    fit(&mut model, &train, &[], &tc);
    let after = evaluate_prediction(&model, &test, &z);

    assert!(
        after.mae < before.mae,
        "training must help: untrained {} vs trained {}",
        before.mae,
        after.mae
    );
}

#[test]
fn stampede_pipeline_handles_structural_missingness() {
    use rihgcn::data::{generate_stampede, StampedeConfig};
    let ds = generate_stampede(&StampedeConfig {
        num_days: 4,
        ..Default::default()
    });
    assert!(
        ds.missing_rate() > 0.5,
        "roving data must be mostly missing"
    );
    let (norm, z) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(6, 3, 36);
    let train = sampler.sample(&norm.train);
    let test = sampler.sample(&norm.test);
    assert!(!train.is_empty() && !test.is_empty());

    let mut model = RihgcnModel::from_dataset(&norm.train, tiny_cfg());
    let tc = TrainConfig {
        max_epochs: 2,
        batch_size: 8,
        ..Default::default()
    };
    fit(&mut model, &train, &[], &tc);
    let pred = evaluate_prediction(&model, &test, &z);
    // Travel times are tens–hundreds of seconds.
    assert!(pred.mae.is_finite() && pred.mae > 0.0 && pred.mae < 500.0);
}

#[test]
fn deterministic_given_seeds() {
    let build = || {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.3, &mut rng(5));
        let (norm, _) = prepare_split(&ds.split_chronological());
        let sampler = WindowSampler::new(6, 3, 24);
        let train = sampler.sample(&norm.train);
        let mut model = RihgcnModel::from_dataset(&norm.train, tiny_cfg());
        let tc = TrainConfig {
            max_epochs: 2,
            batch_size: 4,
            ..Default::default()
        };
        let report = fit(&mut model, &train, &[], &tc);
        report.train_losses
    };
    assert_eq!(build(), build(), "identical seeds must give identical runs");
}
