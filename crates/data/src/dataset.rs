//! The spatio-temporal traffic dataset container.
//!
//! A [`TrafficDataset`] bundles everything an experiment needs: the ground
//! truth cube, the observation mask, the road network, and timing metadata.
//! Synthetic generators ([`crate::pems`], [`crate::stampede`]) produce
//! complete ground truth with a structural mask; the Table-I protocol then
//! applies additional random missingness with [`crate::drop_observed`].

use crate::masking;
use st_graph::RoadNetwork;
use st_tensor::Tensor3;

/// A complete traffic dataset: ground-truth values, observation mask, road
/// network and timing metadata.
///
/// # Examples
///
/// ```
/// use st_data::{generate_pems, PemsConfig};
/// use st_tensor::rng;
///
/// let ds = generate_pems(&PemsConfig { num_nodes: 4, num_days: 2, ..Default::default() });
/// let degraded = ds.with_extra_missing(0.4, &mut rng(1));
/// assert!(degraded.missing_rate() > 0.3);
/// let split = degraded.split_chronological();
/// assert!(split.train.num_times() > split.test.num_times());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficDataset {
    /// Dataset name (for reports).
    pub name: String,
    /// Ground-truth values, `N × D × T`. For synthetic data this is fully
    /// populated even where the mask hides it, which is what allows exact
    /// imputation scoring.
    pub values: Tensor3,
    /// `{0,1}` observation mask, `N × D × T`.
    pub mask: Tensor3,
    /// The road network the sensors live on.
    pub network: RoadNetwork,
    /// Sampling interval in minutes (5 in both paper datasets).
    pub interval_minutes: usize,
}

/// A chronological train/validation/test split of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSplit {
    /// Training portion.
    pub train: TrafficDataset,
    /// Validation portion.
    pub val: TrafficDataset,
    /// Test portion.
    pub test: TrafficDataset,
}

impl TrafficDataset {
    /// Creates a dataset after validating shapes.
    ///
    /// # Panics
    ///
    /// Panics if `values` and `mask` shapes differ, the node count does not
    /// match the network, or `interval_minutes` is zero or does not divide
    /// a day.
    pub fn new(
        name: impl Into<String>,
        values: Tensor3,
        mask: Tensor3,
        network: RoadNetwork,
        interval_minutes: usize,
    ) -> Self {
        assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
        assert_eq!(
            values.nodes(),
            network.len(),
            "node count must match network"
        );
        assert!(interval_minutes > 0, "interval must be positive");
        assert_eq!(24 * 60 % interval_minutes, 0, "interval must divide a day");
        Self {
            name: name.into(),
            values,
            mask,
            network,
            interval_minutes,
        }
    }

    /// Number of sensor nodes.
    pub fn num_nodes(&self) -> usize {
        self.values.nodes()
    }

    /// Number of measured features per node.
    pub fn num_features(&self) -> usize {
        self.values.features()
    }

    /// Number of timestamps.
    pub fn num_times(&self) -> usize {
        self.values.times()
    }

    /// Timestamps per day at this sampling interval.
    pub fn slots_per_day(&self) -> usize {
        24 * 60 / self.interval_minutes
    }

    /// Time-of-day slot of timestamp `t` (assumes the series starts at
    /// midnight).
    pub fn slot_of(&self, t: usize) -> usize {
        t % self.slots_per_day()
    }

    /// Fraction of entries hidden by the mask.
    pub fn missing_rate(&self) -> f64 {
        masking::missing_rate(&self.mask)
    }

    /// Values with hidden entries zeroed — the raw model input `X`.
    pub fn observed_values(&self) -> Tensor3 {
        self.values.zip_map(&self.mask, |v, m| v * m)
    }

    /// Returns a copy with an additional fraction `rate` of the observed
    /// entries dropped at random (Table-I protocol).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn with_extra_missing(&self, rate: f64, rng: &mut st_tensor::StRng) -> Self {
        let mask = masking::drop_observed(&self.mask, rate, rng);
        Self {
            mask,
            ..self.clone()
        }
    }

    /// Restricts the dataset to the given nodes (re-indexed in order) —
    /// useful for corridor subsets and leave-nodes-out experiments.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty or any index is out of range.
    pub fn select_nodes(&self, keep: &[usize]) -> Self {
        assert!(!keep.is_empty(), "must keep at least one node");
        for &k in keep {
            assert!(k < self.num_nodes(), "node {k} out of range");
        }
        let d = self.num_features();
        let t = self.num_times();
        let values = Tensor3::from_fn(keep.len(), d, t, |n, f, tt| self.values[(keep[n], f, tt)]);
        let mask = Tensor3::from_fn(keep.len(), d, t, |n, f, tt| self.mask[(keep[n], f, tt)]);
        Self {
            name: format!("{}-subset", self.name),
            values,
            mask,
            network: self.network.subset(keep),
            interval_minutes: self.interval_minutes,
        }
    }

    /// Chronological 7:2:1 split (the paper's protocol).
    pub fn split_chronological(&self) -> DatasetSplit {
        self.split_with_ratios(0.7, 0.2)
    }

    /// Chronological split with explicit train/val fractions; the remainder
    /// is the test set.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are not positive or sum to ≥ 1.
    pub fn split_with_ratios(&self, train_frac: f64, val_frac: f64) -> DatasetSplit {
        assert!(
            train_frac > 0.0 && val_frac > 0.0,
            "fractions must be positive"
        );
        assert!(
            train_frac + val_frac < 1.0,
            "train+val must leave room for test"
        );
        let t = self.num_times();
        let t_train = ((t as f64) * train_frac).round() as usize;
        let t_val = ((t as f64) * val_frac).round() as usize;
        let make = |name: &str, start: usize, end: usize| TrafficDataset {
            name: format!("{}-{}", self.name, name),
            values: self.values.slice_times(start, end),
            mask: self.mask.slice_times(start, end),
            network: self.network.clone(),
            interval_minutes: self.interval_minutes,
        };
        DatasetSplit {
            train: make("train", 0, t_train),
            val: make("val", t_train, t_train + t_val),
            test: make("test", t_train + t_val, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::rng;

    fn toy_dataset(t: usize) -> TrafficDataset {
        let network = RoadNetwork::corridor(3, 1.0);
        let values = Tensor3::from_fn(3, 2, t, |n, d, tt| (n + d + tt) as f64);
        let mask = Tensor3::ones(3, 2, t);
        TrafficDataset::new("toy", values, mask, network, 5)
    }

    #[test]
    fn metadata_accessors() {
        let ds = toy_dataset(100);
        assert_eq!(ds.num_nodes(), 3);
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.num_times(), 100);
        assert_eq!(ds.slots_per_day(), 288);
        assert_eq!(ds.slot_of(290), 2);
        assert_eq!(ds.missing_rate(), 0.0);
    }

    #[test]
    fn observed_values_zeroes_hidden() {
        let mut ds = toy_dataset(4);
        ds.mask[(0, 0, 1)] = 0.0;
        let obs = ds.observed_values();
        assert_eq!(obs[(0, 0, 1)], 0.0);
        assert_eq!(obs[(0, 0, 2)], ds.values[(0, 0, 2)]);
    }

    #[test]
    fn extra_missing_changes_only_mask() {
        let ds = toy_dataset(200);
        let degraded = ds.with_extra_missing(0.5, &mut rng(1));
        assert_eq!(degraded.values, ds.values);
        assert!((degraded.missing_rate() - 0.5).abs() < 0.05);
    }

    #[test]
    fn select_nodes_reindexes_everything() {
        let ds = toy_dataset(10);
        let sub = ds.select_nodes(&[2, 0]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.values[(0, 1, 3)], ds.values[(2, 1, 3)]);
        assert_eq!(sub.values[(1, 0, 5)], ds.values[(0, 0, 5)]);
        assert_eq!(sub.network.len(), 2);
        assert!(sub.name.ends_with("-subset"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_nodes_bounds_checked() {
        let _ = toy_dataset(5).select_nodes(&[7]);
    }

    #[test]
    fn chronological_split_covers_everything_in_order() {
        let ds = toy_dataset(100);
        let split = ds.split_chronological();
        assert_eq!(split.train.num_times(), 70);
        assert_eq!(split.val.num_times(), 20);
        assert_eq!(split.test.num_times(), 10);
        // Boundary continuity: first test value continues the sequence.
        assert_eq!(split.test.values[(0, 0, 0)], ds.values[(0, 0, 90)]);
        assert_eq!(split.val.values[(1, 1, 0)], ds.values[(1, 1, 70)]);
    }

    #[test]
    fn split_names_inherit_dataset_name() {
        let split = toy_dataset(50).split_chronological();
        assert_eq!(split.train.name, "toy-train");
        assert_eq!(split.test.name, "toy-test");
    }

    #[test]
    #[should_panic(expected = "leave room")]
    fn split_rejects_overfull_ratios() {
        let _ = toy_dataset(10).split_with_ratios(0.8, 0.2);
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn new_rejects_network_mismatch() {
        let network = RoadNetwork::corridor(2, 1.0);
        let values = Tensor3::zeros(3, 1, 5);
        let mask = Tensor3::ones(3, 1, 5);
        let _ = TrafficDataset::new("bad", values, mask, network, 5);
    }
}
