//! Figure 3: the geographic graph and the per-interval temporal graphs
//! disagree — nodes far apart geographically can be strongly connected
//! temporally, and interval graphs differ from each other.
//!
//! Prints the edge-weight matrices for a handful of PeMS nodes, one block
//! per graph, plus summary statistics (the figure's message in numbers).

use rihgcn_bench::{pems_at, Scale};
use st_data::DayProfiles;
use st_graph::{gaussian_adjacency, Interval};
use st_tensor::Matrix;

fn print_block(title: &str, m: &Matrix) {
    println!("\n{title}");
    for r in 0..m.rows() {
        let row: Vec<String> = (0..m.cols())
            .map(|c| format!("{:5.2}", m[(r, c)]))
            .collect();
        println!("  node {r}: [{}]", row.join(", "));
    }
}

fn correlation(a: &Matrix, b: &Matrix) -> f64 {
    let (am, bm) = (a.mean(), b.mean());
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..a.len() {
        let x = a.as_slice()[i] - am;
        let y = b.as_slice()[i] - bm;
        cov += x * y;
        va += x * x;
        vb += y * y;
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

fn main() {
    let mut scale = Scale::from_env();
    scale.pems_nodes = 5; // the figure uses 5 road segments
    let ds = pems_at(&scale, 0.0, 500);

    let geo = gaussian_adjacency(&ds.network.road_distance_matrix(), None, 0.0);
    print_block("Geographic graph (Eq. 8 on road distances):", &geo);

    let profiles = DayProfiles::from_dataset(&ds);
    let slots = ds.slots_per_day();
    let intervals = [
        ("late night (0:00–6:00)", Interval::new(0, slots / 4)),
        (
            "morning   (6:00–12:00)",
            Interval::new(slots / 4, slots / 2),
        ),
        (
            "afternoon (12:00–18:00)",
            Interval::new(slots / 2, 3 * slots / 4),
        ),
        (
            "evening   (18:00–24:00)",
            Interval::new(3 * slots / 4, slots),
        ),
    ];
    let mut temporal = Vec::new();
    for (name, iv) in &intervals {
        let adj = profiles.interval_adjacency(*iv, 0.0);
        print_block(&format!("Temporal graph — {name}:"), &adj);
        temporal.push(adj);
    }

    println!("\nSummary (Figure 3's message):");
    for (i, (name, _)) in intervals.iter().enumerate() {
        println!(
            "  corr(geographic, temporal[{name}]) = {:+.3}",
            correlation(&geo, &temporal[i])
        );
    }
    for i in 0..temporal.len() {
        for j in i + 1..temporal.len() {
            println!(
                "  corr(temporal[{}], temporal[{}])     = {:+.3}",
                intervals[i].0,
                intervals[j].0,
                correlation(&temporal[i], &temporal[j])
            );
        }
    }
    println!("\nTemporal graphs differ from the geographic graph and from each");
    println!("other across intervals — the heterogeneity HGCN exploits.");
}
