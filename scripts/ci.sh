#!/usr/bin/env bash
# Hermetic CI: the workspace must build, test and stay formatted with no
# network access and no registry dependencies. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

# The parallel kernels promise bit-identical results for any worker count;
# exercise the ST_NUM_THREADS environment path at both extremes.
echo "== test (1 worker thread) =="
ST_NUM_THREADS=1 cargo test -q --offline --workspace

echo "== test (4 worker threads) =="
ST_NUM_THREADS=4 cargo test -q --offline --workspace

echo "== serve smoke (train a checkpoint, run the HTTP service) =="
# End-to-end over the real network stack: generate a tiny dataset, train
# one epoch into a self-contained checkpoint, then — at both thread-count
# extremes — start the server on an ephemeral port and drive every route
# with the load generator, which also shuts the server down.
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$SERVE_DIR"' EXIT
cargo run -q --release --offline -p rihgcn-cli --bin rihgcn -- \
    generate --dataset pems --out "$SERVE_DIR/data.csv" \
    --nodes 4 --days 1 --missing-rate 0.2
cargo run -q --release --offline -p rihgcn-cli --bin rihgcn -- \
    train --data "$SERVE_DIR/data.csv" --out "$SERVE_DIR/model.params" \
    --checkpoint "$SERVE_DIR/model.ckpt" --epochs 1 \
    --gcn-dim 4 --lstm-dim 6 --graphs 2 --history 4 --horizon 2
for threads in 1 4; do
    echo "-- serve smoke (ST_NUM_THREADS=$threads) --"
    rm -f "$SERVE_DIR/addr.txt"
    ST_NUM_THREADS=$threads cargo run -q --release --offline \
        -p rihgcn-cli --bin rihgcn -- \
        serve --checkpoint "$SERVE_DIR/model.ckpt" \
        --addr 127.0.0.1:0 --addr-file "$SERVE_DIR/addr.txt" &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$SERVE_DIR/addr.txt" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
        sleep 0.1
    done
    [ -s "$SERVE_DIR/addr.txt" ] || { echo "server never bound"; exit 1; }
    ST_NUM_THREADS=$threads cargo run -q --release --offline \
        -p rihgcn-bench --bin loadgen -- \
        --addr "$(cat "$SERVE_DIR/addr.txt")" --smoke --shutdown
    wait "$SERVER_PID"
done

echo "== multi-tenant serve (2 shards, 8 tenants, zipf load) =="
# A second checkpoint trained on differently-seeded data gives the
# registry two distinct models; eight tenant files alternate between the
# two. loadgen discovers the tenants over /admin/tenants, drives
# zipf-distributed traffic from every client thread, reports per-shard
# p50/p99 plus aggregate throughput, and fails unless the per-shard
# request counters scraped from /metrics sum to the engine total.
cargo run -q --release --offline -p rihgcn-cli --bin rihgcn -- \
    generate --dataset pems --out "$SERVE_DIR/data2.csv" \
    --nodes 4 --days 1 --missing-rate 0.2 --seed 9
cargo run -q --release --offline -p rihgcn-cli --bin rihgcn -- \
    train --data "$SERVE_DIR/data2.csv" --out "$SERVE_DIR/model2.params" \
    --checkpoint "$SERVE_DIR/model2.ckpt" --epochs 1 \
    --gcn-dim 4 --lstm-dim 6 --graphs 2 --history 4 --horizon 2
cargo run -q --release --offline -p rihgcn-cli --bin rihgcn -- \
    checkpoint info --file "$SERVE_DIR/model2.ckpt"
mkdir -p "$SERVE_DIR/models"
for i in 0 1 2 3 4 5 6 7; do
    src="$SERVE_DIR/model.ckpt"
    [ $((i % 2)) -eq 1 ] && src="$SERVE_DIR/model2.ckpt"
    cp "$src" "$SERVE_DIR/models/t$i.ckpt"
done
for threads in 1 4; do
    echo "-- multi-tenant load (ST_NUM_THREADS=$threads) --"
    rm -f "$SERVE_DIR/addr.txt"
    ST_NUM_THREADS=$threads cargo run -q --release --offline \
        -p rihgcn-cli --bin rihgcn -- \
        serve --models "$SERVE_DIR/models" --shards 2 \
        --addr 127.0.0.1:0 --addr-file "$SERVE_DIR/addr.txt" &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$SERVE_DIR/addr.txt" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; exit 1; }
        sleep 0.1
    done
    [ -s "$SERVE_DIR/addr.txt" ] || { echo "server never bound"; exit 1; }
    ST_NUM_THREADS=$threads cargo run -q --release --offline \
        -p rihgcn-bench --bin loadgen -- \
        --addr "$(cat "$SERVE_DIR/addr.txt")" \
        --tenants 8 --zipf 1.1 --requests 50 --shutdown
    wait "$SERVER_PID"
done

echo "== determinism under tracing (ST_OBS=1) =="
# Spans must never change a bit: the determinism suites have to pass with
# span collection forced on.
ST_OBS=1 cargo test -q --offline -p rihgcn --test determinism
ST_OBS=1 ST_NUM_THREADS=4 cargo test -q --offline \
    -p rihgcn --test thread_determinism

echo "== traced training run (Chrome trace export) =="
# A short training run with --trace must emit well-formed Chrome
# trace_event JSON containing spans from every instrumented layer; the
# in-tree checker validates JSON shape, timestamp monotonicity and the
# required span-name prefixes. At this model size the par.* spans come
# from the model-construction fan-outs (steady-state matmuls stay below
# the parallel threshold), so the ring must be large enough that a full
# epoch doesn't overwrite them: the run emits ~26k spans, ST_OBS_RING
# keeps 64k.
ST_NUM_THREADS=1 ST_OBS_RING=65536 \
    cargo run -q --release --offline -p rihgcn-cli --bin rihgcn -- \
    train --data "$SERVE_DIR/data.csv" --out "$SERVE_DIR/traced.params" \
    --epochs 1 --gcn-dim 4 --lstm-dim 6 --graphs 2 --history 4 --horizon 2 \
    --trace "$SERVE_DIR/trace.json" --log-format json
cargo run -q --release --offline -p rihgcn-bench --bin trace_check -- \
    "$SERVE_DIR/trace.json" \
    --require tensor. --require autodiff. --require par. \
    --require core. --require nn.

echo "== bench smoke (serial vs parallel) =="
# One tiny sample per benchmark: checks the harness runs, records the
# serial-vs-parallel comparison, and asserts nothing about speedup (that
# depends on the host's core count).
RIHGCN_BENCH_SAMPLES=1 RIHGCN_BENCH_SAMPLE_MS=20 \
    cargo bench -q --offline -p rihgcn-bench --bench micro >/dev/null

echo "== allocation bench (training-step memory profile) =="
# Writes BENCH_step.json; the binary itself fails the build on non-finite
# or missing metrics, or a steady-state allocation reduction below 90%.
scripts/bench_step.sh --smoke
test -s BENCH_step.json || { echo "BENCH_step.json missing"; exit 1; }

echo "== observability overhead bench (tracing off < 2%, on = bit-identical) =="
# bench_obs reruns the bench_step workload twice per thread count: with
# tracing disabled (step time must stay within 2% of a freshly-recorded
# matching baseline) and enabled (per-step losses must be bit-identical,
# and the captured trace must validate with spans from every layer). The
# binary exits non-zero on any violation.
for threads in 1 4; do
    STEP_JSON="$(mktemp)"
    OBS_JSON="$(mktemp)"
    ST_NUM_THREADS=$threads cargo run -q --release --offline \
        -p rihgcn-bench --bin bench_step -- \
        --smoke --out "$STEP_JSON" >/dev/null
    ST_NUM_THREADS=$threads cargo run -q --release --offline \
        -p rihgcn-bench --bin bench_obs -- \
        --smoke --baseline "$STEP_JSON" --out "$OBS_JSON" >/dev/null
    grep -q '"bit_identical": true' "$OBS_JSON" || {
        echo "bench_obs report missing bit_identical=true"; exit 1;
    }
    rm -f "$STEP_JSON" "$OBS_JSON"
done

echo "== kernel scoreboard smoke (GFLOP/s, bit-identity, 1 and 4 threads) =="
# bench_kernels proves the blocked matmul kernels bit-identical to the
# naive references at 1/2/4 worker threads before timing anything, and
# exits non-zero on any non-finite metric. Run it under both thread-count
# extremes and check the JSON report has the expected schema.
for threads in 1 4; do
    KERNELS_JSON="$(mktemp)"
    ST_NUM_THREADS=$threads cargo run -q --release --offline \
        -p rihgcn-bench --bin bench_kernels -- \
        --smoke --out "$KERNELS_JSON" >/dev/null
    test -s "$KERNELS_JSON" || { echo "BENCH_kernels.json missing"; exit 1; }
    for key in rihgcn_kernel_scoreboard peak_gflops mem_bw_gbps \
        min_model_speedup gflops_blocked gflops_naive roofline_gflops; do
        grep -q "$key" "$KERNELS_JSON" || {
            echo "kernel scoreboard missing $key"; exit 1;
        }
    done
    grep -q '"gflops_blocked": null' "$KERNELS_JSON" && {
        echo "kernel scoreboard has non-finite GFLOP/s"; exit 1;
    }
    rm -f "$KERNELS_JSON"
done

echo "== batched-forecast bench (>=2x RPS on a saturated queue) =="
# loadgen --bench-batch saturates a single-shard in-process engine with
# observe -> forecast pairs at max_batch 1 and 16 (best of three runs
# each), checks the per-shard metrics consistency gate, and exits
# non-zero unless batching delivers at least 2x the unbatched forecast
# throughput. The last run's report is kept as BENCH_batch.json.
for threads in 1 4; do
    echo "-- bench-batch (ST_NUM_THREADS=$threads) --"
    ST_NUM_THREADS=$threads cargo run -q --release --offline \
        -p rihgcn-bench --bin loadgen -- \
        --bench-batch --threads 16 --requests 40 --out BENCH_batch.json
done
test -s BENCH_batch.json || { echo "BENCH_batch.json missing"; exit 1; }
grep -q '"speedup"' BENCH_batch.json || {
    echo "BENCH_batch.json missing speedup"; exit 1;
}

echo "== formatting =="
cargo fmt --check

echo "CI checks passed."
