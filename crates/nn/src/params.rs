//! Parameter storage and tape binding.
//!
//! Layers own [`ParamId`]s into a shared [`ParamStore`]; a [`Session`] wraps
//! one autodiff [`Tape`] forward pass, lazily binding each parameter onto
//! the tape the first time a layer uses it and collecting the gradients back
//! when the pass finishes. This keeps parameters alive across passes (the
//! tape is rebuilt every step, as in any dynamic-graph framework).

use st_autodiff::{Tape, Var};
use st_tensor::Matrix;

/// Handle to one parameter matrix inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Raw index into the store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owning container for all trainable parameters of a model.
///
/// # Examples
///
/// ```
/// use st_nn::ParamStore;
/// use st_tensor::Matrix;
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Matrix::zeros(2, 3));
/// assert_eq!(store.value(w).shape(), (2, 3));
/// assert_eq!(store.num_scalars(), 6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.names.push(name.into());
        self.values.push(value);
        self.grads.push(grad);
        ParamId(self.names.len() - 1)
    }

    /// Number of parameter matrices.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Current value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Overwrites a parameter's value (shape must match).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the registered parameter.
    pub fn set_value(&mut self, id: ParamId, value: Matrix) {
        assert_eq!(
            self.values[id.0].shape(),
            value.shape(),
            "parameter shape is immutable"
        );
        self.values[id.0] = value;
    }

    /// Accumulated gradient of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Mutable value plus gradient of a parameter, for in-place optimiser
    /// updates (values and gradients live in separate vectors, so the split
    /// borrow is safe).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store.
    pub fn value_grad_mut(&mut self, id: ParamId) -> (&mut Matrix, &Matrix) {
        (&mut self.values[id.0], &self.grads[id.0])
    }

    /// Name of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Zeroes every gradient buffer.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            for x in g.as_mut_slice() {
                *x = 0.0;
            }
        }
    }

    /// Adds `g` into the gradient buffer of `id`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.grads[id.0].axpy(1.0, g);
    }

    /// Multiplies every gradient by `scale` (e.g. to average over a batch).
    pub fn scale_grads(&mut self, scale: f64) {
        for g in &mut self.grads {
            for x in g.as_mut_slice() {
                *x *= scale;
            }
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f64 {
        self.grads
            .iter()
            .map(|g| g.as_slice().iter().map(|&x| x * x).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Scales all gradients so the global norm is at most `max_norm`
    /// (gradient clipping). Returns the pre-clip norm.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let norm = self.grad_norm();
        if norm > max_norm {
            let scale = max_norm / norm;
            for g in &mut self.grads {
                for x in g.as_mut_slice() {
                    *x *= scale;
                }
            }
        }
        norm
    }

    /// Whether all values and gradients are finite.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(Matrix::is_finite) && self.grads.iter().all(Matrix::is_finite)
    }
}

/// One forward/backward pass: a tape plus the parameter bindings made on it.
///
/// Create with [`Session::new`], run layer `forward`s, call
/// [`Session::backward`], then [`Session::write_grads`] to push gradients
/// into the store.
#[derive(Debug)]
pub struct Session {
    /// The autodiff tape recording this pass.
    pub tape: Tape,
    bound: Vec<Option<Var>>,
}

impl Session {
    /// Starts a fresh pass over the given store.
    pub fn new(store: &ParamStore) -> Self {
        Self {
            tape: Tape::new(),
            bound: vec![None; store.len()],
        }
    }

    /// Recycles the session for another pass: the tape's node list and every
    /// matrix buffer return to its pool, and the parameter bindings are
    /// cleared. At steady state the next pass re-records the same graph
    /// without heap allocation, bit-identical to a fresh session.
    pub fn reset(&mut self, store: &ParamStore) {
        self.tape.reset();
        self.bound.clear();
        self.bound.resize(store.len(), None);
    }

    /// The tape variable for a parameter, binding it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the store this session was created
    /// for.
    pub fn var(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(v) = self.bound[id.index()] {
            return v;
        }
        let v = self.tape.parameter_ref(store.value(id));
        self.bound[id.index()] = Some(v);
        v
    }

    /// Records a constant on the tape.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.tape.constant(value)
    }

    /// Records a constant by copying `value` into a pooled tape buffer.
    pub fn constant_ref(&mut self, value: &Matrix) -> Var {
        self.tape.constant_ref(value)
    }

    /// Records an all-zero constant in a pooled tape buffer.
    pub fn constant_zeros(&mut self, rows: usize, cols: usize) -> Var {
        self.tape.constant_zeros(rows, cols)
    }

    /// Runs the backward sweep from `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not scalar.
    pub fn backward(&mut self, loss: Var) {
        self.tape.backward(loss);
    }

    /// Accumulates the tape gradients of every bound parameter into the
    /// store's gradient buffers.
    pub fn write_grads(&self, store: &mut ParamStore) {
        for (idx, bound) in self.bound.iter().enumerate() {
            if let Some(var) = bound {
                // A `None` gradient is exactly zero; skipping the
                // accumulation leaves the store buffer bit-identical.
                if let Some(g) = self.tape.grad_ref(*var) {
                    store.accumulate_grad(ParamId(idx), g);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::ones(2, 2));
        let b = store.add("b", Matrix::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 7);
        assert_eq!(store.name(a), "a");
        assert_eq!(store.value(b).shape(), (1, 3));
        assert_eq!(store.ids().count(), 2);
    }

    #[test]
    #[should_panic(expected = "immutable")]
    fn set_value_rejects_shape_change() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::ones(2, 2));
        store.set_value(a, Matrix::ones(3, 3));
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::ones(1, 2));
        store.accumulate_grad(a, &Matrix::from_rows(&[&[1.0, 2.0]]));
        store.accumulate_grad(a, &Matrix::from_rows(&[&[0.5, 0.5]]));
        assert_eq!(store.grad(a), &Matrix::from_rows(&[&[1.5, 2.5]]));
        store.zero_grads();
        assert_eq!(store.grad(a), &Matrix::zeros(1, 2));
    }

    #[test]
    fn clip_scales_down_only_when_needed() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::ones(1, 2));
        store.accumulate_grad(a, &Matrix::from_rows(&[&[3.0, 4.0]])); // norm 5
        let pre = store.clip_grad_norm(1.0);
        assert_eq!(pre, 5.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-12);
        // Already below the cap: untouched.
        let pre2 = store.clip_grad_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-12);
        assert!((store.grad_norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn session_binds_each_param_once() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::ones(1, 1));
        let mut sess = Session::new(&store);
        let v1 = sess.var(&store, a);
        let v2 = sess.var(&store, a);
        assert_eq!(v1, v2);
        assert_eq!(sess.tape.len(), 1);
    }

    #[test]
    fn session_round_trip_gradients() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::from_rows(&[&[2.0]]));
        let mut sess = Session::new(&store);
        let v = sess.var(&store, a);
        let sq = sess.tape.mul(v, v);
        let loss = sess.tape.sum(sq);
        sess.backward(loss);
        sess.write_grads(&mut store);
        assert_eq!(store.grad(a)[(0, 0)], 4.0); // d(x²)/dx = 2x = 4
                                                // A second pass accumulates on top.
        let mut sess2 = Session::new(&store);
        let v = sess2.var(&store, a);
        let sq = sess2.tape.mul(v, v);
        let loss = sess2.tape.sum(sq);
        sess2.backward(loss);
        sess2.write_grads(&mut store);
        assert_eq!(store.grad(a)[(0, 0)], 8.0);
    }

    #[test]
    fn unused_params_get_no_gradient() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::from_rows(&[&[2.0]]));
        let b = store.add("b", Matrix::from_rows(&[&[3.0]]));
        let mut sess = Session::new(&store);
        let v = sess.var(&store, a);
        let loss = sess.tape.sum(v);
        sess.backward(loss);
        sess.write_grads(&mut store);
        assert_eq!(store.grad(b)[(0, 0)], 0.0);
    }
}
