//! End-to-end test of the `rihgcn` binary: generate → inspect → impute →
//! train → forecast, chained through real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rihgcn"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rihgcn-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_cli_workflow() {
    let data = tmp("data.csv");
    let filled = tmp("filled.csv");
    let model = tmp("model.params");

    // generate
    let out = bin()
        .args([
            "generate",
            "--dataset",
            "pems",
            "--out",
            data.to_str().unwrap(),
            "--nodes",
            "3",
            "--days",
            "2",
            "--missing-rate",
            "0.3",
            "--seed",
            "5",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(data.exists());

    // inspect
    let out = bin()
        .args(["inspect", "--data", data.to_str().unwrap()])
        .output()
        .expect("run inspect");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("missing rate"), "{text}");

    // impute
    let out = bin()
        .args([
            "impute",
            "--data",
            data.to_str().unwrap(),
            "--method",
            "last",
            "--out",
            filled.to_str().unwrap(),
        ])
        .output()
        .expect("run impute");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(filled.exists());

    // train (tiny budget)
    let out = bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--epochs",
            "1",
            "--graphs",
            "2",
            "--gcn-dim",
            "3",
            "--lstm-dim",
            "4",
            "--horizon",
            "3",
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    // forecast with the saved parameters
    let out = bin()
        .args([
            "forecast",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--graphs",
            "2",
            "--gcn-dim",
            "3",
            "--lstm-dim",
            "4",
            "--horizon",
            "3",
        ])
        .output()
        .expect("run forecast");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("node,feature,step,forecast"), "{text}");
    // 3 nodes × 4 features × 3 steps data rows + header.
    assert_eq!(text.lines().count(), 1 + 3 * 4 * 3, "{text}");

    std::fs::remove_dir_all(std::env::temp_dir().join("rihgcn-e2e")).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = bin().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
}
