//! Bitwise contract of batched inference: forecasting `B` windows in one
//! tape run must equal `B` sequential single-window forwards bit for bit,
//! at every worker count and for both prediction heads.
//!
//! Why this can hold exactly (DESIGN §13): the batch lives row-stacked as
//! `(B·N) × F`, where every row-local op (elementwise arithmetic, the
//! LSTM/head right-multiplies against shared weights, per-row softmax) is
//! per-block bit-equal by construction; the only column-local ops — the
//! Chebyshev propagations `T_k(L̃) · X` — run in the wide `N × (B·F)`
//! permutation, and the blocked matmul accumulates each output element in
//! ascending `k` independent of operand width (pinned blocked ≡ naive in
//! `crates/tensor/tests/kernel_properties.rs`). The layout permutations
//! themselves are exact f64 moves.
//!
//! The parallel threshold is forced to 1 so the banded parallel kernels
//! actually run at this tiny model size; 1, 2 and 4 workers all must agree
//! (2 puts band boundaries elsewhere than 4 — see `thread_determinism.rs`).

use rihgcn::core::{
    prepare_split, BatchedWindow, PredictionHead, RihgcnConfig, RihgcnModel, SampleOutput,
};
use rihgcn::data::{generate_pems, PemsConfig, WindowSample, WindowSampler};
use rihgcn::tensor::{rng, set_parallel_threshold, Matrix};

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: element {i} diverged ({x} vs {y})"
        );
    }
}

fn assert_outputs_eq(batched: &SampleOutput, single: &SampleOutput, what: &str) {
    assert_eq!(batched.predictions.len(), single.predictions.len());
    assert_eq!(batched.estimates.len(), single.estimates.len());
    for (h, (b, s)) in batched
        .predictions
        .iter()
        .zip(&single.predictions)
        .enumerate()
    {
        assert_bits_eq(b, s, &format!("{what} prediction step {h}"));
    }
    for (t, (b, s)) in batched.estimates.iter().zip(&single.estimates).enumerate() {
        assert_bits_eq(b, s, &format!("{what} estimate step {t}"));
    }
}

fn model_and_windows(head: PredictionHead) -> (RihgcnModel, Vec<WindowSample>) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut rng(3));
    let (norm, _) = prepare_split(&ds.split_chronological());
    let cfg = RihgcnConfig {
        gcn_dim: 3,
        lstm_dim: 4,
        cheb_k: 2,
        num_temporal_graphs: 2,
        history: 4,
        horizon: 2,
        head,
        ..Default::default()
    };
    let model = RihgcnModel::from_dataset(&norm.train, cfg);
    // Stride 7 spreads the windows across time-of-day slots, so batch
    // members hit different interval weights in the HGCN.
    let windows = WindowSampler::new(4, 2, 7).sample(&norm.train);
    assert!(windows.len() >= 16, "need 16 distinct windows");
    (model, windows)
}

#[test]
fn batched_forward_bit_identical_to_sequential() {
    let saved = rihgcn::tensor::parallel_threshold();
    set_parallel_threshold(1);
    for head in [PredictionHead::Concat, PredictionHead::Attention] {
        let (mut model, windows) = model_and_windows(head);
        let singles: Vec<SampleOutput> = windows[..16].iter().map(|w| model.forward(w)).collect();
        for threads in [1usize, 2, 4] {
            rihgcn::par::set_num_threads(threads);
            for b in [1usize, 2, 3, 8, 16] {
                let refs: Vec<&WindowSample> = windows[..b].iter().collect();
                let batch = BatchedWindow::from_samples(&refs);
                let what = format!("{head:?} head, B={b}, {threads} threads");
                // Fresh-session batched forward…
                let fresh = model.forward_batched(&batch);
                assert_eq!(fresh.len(), b);
                for (i, out) in fresh.iter().enumerate() {
                    assert_outputs_eq(out, &singles[i], &format!("{what}, fresh, window {i}"));
                }
                // …and the recycled path, twice, to prove pooled buffers
                // are fully overwritten between batched runs too.
                for round in 0..2 {
                    let recycled = model.forward_batched_recycled(&batch);
                    for (i, out) in recycled.iter().enumerate() {
                        assert_outputs_eq(
                            out,
                            &singles[i],
                            &format!("{what}, recycled round {round}, window {i}"),
                        );
                    }
                }
            }
        }
    }
    rihgcn::par::set_num_threads(0);
    set_parallel_threshold(saved);
}

#[test]
fn batch_members_see_their_own_slots() {
    // Two copies of the same window data at different slots must produce
    // different outputs within one batch (the per-window interval weights
    // actually apply per block, not batch-wide).
    let (model, windows) = model_and_windows(PredictionHead::Concat);
    let mut shifted = windows[0].clone();
    let slots_per_day = model.slots_per_day();
    for s in shifted.slots.iter_mut() {
        *s = (*s + slots_per_day / 2) % slots_per_day;
    }
    let batch = BatchedWindow::from_samples(&[&windows[0], &shifted]);
    let outs = model.forward_batched(&batch);
    let diff: f64 = outs[0].predictions[0].max_abs_diff(&outs[1].predictions[0]);
    assert!(
        diff > 1e-12,
        "slot shift must change a batch member's output"
    );
}
