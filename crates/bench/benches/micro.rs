//! Criterion micro-benchmarks for the computational kernels behind the
//! experiments: dense matmul, Chebyshev GCN forward, LSTM step, DTW,
//! adjacency construction, and a full RIHGCN forward+backward step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rihgcn_core::{Forecaster, RihgcnConfig, RihgcnModel};
use st_autodiff::Tape;
use st_data::{generate_pems, DayProfiles, PemsConfig, WindowSampler};
use st_graph::{dtw, gaussian_adjacency, scaled_laplacian_from_adjacency, Interval, RoadNetwork};
use st_nn::{Activation, ChebGcn, LstmCell, ParamStore, Session};
use st_tensor::{rng, uniform_matrix, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128] {
        let a = uniform_matrix(&mut rng(1), n, n, -1.0, 1.0);
        let b = uniform_matrix(&mut rng(2), n, n, -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
    }
    group.finish();
}

fn bench_gcn_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("cheb_gcn_forward");
    for &n in &[10usize, 50] {
        let net = RoadNetwork::corridor(n, 1.0);
        let adj = gaussian_adjacency(&net.distance_matrix(), None, 0.1);
        let lap = scaled_laplacian_from_adjacency(&adj);
        let mut store = ParamStore::new();
        let gcn = ChebGcn::new(&mut store, &mut rng(3), 4, 16, 3, Activation::Relu, "g");
        let x0 = uniform_matrix(&mut rng(4), n, 4, -1.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut sess = Session::new(&store);
                let x = sess.constant(x0.clone());
                gcn.forward(&mut sess, &store, &lap, x)
            });
        });
    }
    group.finish();
}

fn bench_lstm_step(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, &mut rng(5), 20, 32, "lstm");
    let x0 = uniform_matrix(&mut rng(6), 16, 20, -1.0, 1.0);
    c.bench_function("lstm_step_batch16", |bench| {
        bench.iter(|| {
            let mut sess = Session::new(&store);
            let state = cell.zero_state(&mut sess, 16);
            let x = sess.constant(x0.clone());
            cell.step(&mut sess, &store, x, &state)
        });
    });
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw");
    for &len in &[24usize, 288] {
        let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.11 + 0.4).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bench, _| {
            bench.iter(|| dtw(&a, &b));
        });
    }
    group.finish();
}

fn bench_adjacency_build(c: &mut Criterion) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 8,
        num_days: 3,
        ..Default::default()
    });
    let profiles = DayProfiles::from_dataset(&ds);
    c.bench_function("temporal_adjacency_8nodes", |bench| {
        bench.iter(|| profiles.interval_adjacency(Interval::new(84, 132), 0.1));
    });
}

fn bench_backward_sweep(c: &mut Criterion) {
    // A deep chain stressing the reverse sweep.
    c.bench_function("tape_backward_chain100", |bench| {
        let w0 = uniform_matrix(&mut rng(7), 16, 16, -0.3, 0.3);
        bench.iter(|| {
            let mut tape = Tape::new();
            let w = tape.parameter(w0.clone());
            let mut x = tape.constant(Matrix::ones(4, 16));
            for _ in 0..100 {
                let h = tape.matmul(x, w);
                x = tape.tanh(h);
            }
            let loss = tape.mean(x);
            tape.backward(loss);
            tape.grad(w)
        });
    });
}

fn bench_imputers(c: &mut Criterion) {
    use rihgcn_baselines::{knn_impute, last_observed_fill, matrix_factorization_impute};
    use st_data::drop_observed;
    let ds = generate_pems(&PemsConfig {
        num_nodes: 8,
        num_days: 2,
        ..Default::default()
    });
    let mask = drop_observed(
        &st_tensor::Tensor3::ones(8, 4, ds.num_times()),
        0.4,
        &mut rng(9),
    );
    let mut group = c.benchmark_group("imputers");
    group.sample_size(10);
    group.bench_function("last_observed", |b| {
        b.iter(|| last_observed_fill(&ds.values, &mask));
    });
    group.bench_function("knn_k3", |b| {
        b.iter(|| knn_impute(&ds.values, &mask, 3));
    });
    group.bench_function("mf_rank4_iters5", |b| {
        b.iter(|| matrix_factorization_impute(&ds.values, &mask, 4, 5, 1));
    });
    group.finish();
}

fn bench_rihgcn_step(c: &mut Criterion) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 8,
        num_days: 3,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.4, &mut rng(8));
    let cfg = RihgcnConfig {
        gcn_dim: 8,
        lstm_dim: 16,
        num_temporal_graphs: 4,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&ds, cfg);
    let sample = WindowSampler::paper_default().window_at(&ds, 0);
    c.bench_function("rihgcn_forward_backward", |bench| {
        bench.iter(|| model.accumulate_gradients(&sample));
    });
    c.bench_function("rihgcn_forward_only", |bench| {
        bench.iter(|| model.forward(&sample));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets =
        bench_matmul,
        bench_gcn_forward,
        bench_lstm_step,
        bench_dtw,
        bench_adjacency_build,
        bench_backward_sweep,
        bench_imputers,
        bench_rihgcn_step
}
criterion_main!(benches);
