//! RIHGCN — Recurrent-Imputation Heterogeneous Graph Convolution Network.
//!
//! From-scratch Rust reproduction of *"Heterogeneous Spatio-Temporal Graph
//! Convolution Network for Traffic Forecasting with Missing Values"*
//! (Zhong et al., ICDCS 2021). The model jointly imputes missing sensor
//! values and forecasts future traffic:
//!
//! * **recurrent imputation** — at each step the input is the *complement*
//!   `X̄ = M⊙X + (1−M)⊙X̂` of observations and the model's own estimate,
//!   with the estimate kept on the autodiff tape so prediction errors flow
//!   back into earlier imputations;
//! * **heterogeneous GCN** — a geographic Chebyshev GCN plus one GCN per
//!   time-of-day interval (intervals chosen by constrained DTW-distance
//!   maximisation, temporal graphs built from historical-profile
//!   similarities);
//! * **bi-directional** passes with a consistency term, trained jointly
//!   with the forecast loss: `L = L_c + λ·L_m`.
//!
//! # Examples
//!
//! ```no_run
//! use rihgcn_core::{fit, prepare_split, evaluate_prediction, RihgcnConfig, RihgcnModel, TrainConfig};
//! use st_data::{generate_pems, PemsConfig, WindowSampler};
//!
//! let ds = generate_pems(&PemsConfig::default());
//! let (norm, z) = prepare_split(&ds.split_chronological());
//! let mut model = RihgcnModel::from_dataset(&norm.train, RihgcnConfig::default());
//!
//! let sampler = WindowSampler::paper_default();
//! let train = sampler.sample(&norm.train);
//! let val = sampler.sample(&norm.val);
//! let report = fit(&mut model, &train, &val, &TrainConfig::default());
//! println!("stopped after {} epochs", report.epochs());
//!
//! let test = sampler.sample(&norm.test);
//! println!("{}", evaluate_prediction(&model, &test, &z));
//! ```

#![warn(missing_docs)]

mod config;
mod model;
mod observe;
mod online;
mod persist;
mod trainer;

pub use config::{PredictionHead, RihgcnConfig, TrainConfig};
pub use model::{BatchedWindow, RihgcnModel, SampleOutput};
pub use observe::{EpochStats, JsonlObserver, NullObserver, StderrPretty, TrainObserver};
pub use online::{OnlineForecaster, PushError, WindowSnapshot};
pub use persist::{load_checkpoint, load_params, save_checkpoint, save_params, PersistError};
pub use trainer::{
    evaluate_imputation, evaluate_prediction, fit, fit_with_observer, prepare_split, Forecaster,
    Imputer, TrainReport,
};
