//! Historical Average (HA) baseline.
//!
//! Predicts the per-node, per-feature, time-of-day historical average for
//! every future timestamp — the simplest calendar model and the paper's
//! first comparison row. Fitted from observed entries only.

use rihgcn_core::Forecaster;
use st_data::{DayProfiles, TrafficDataset, WindowSample};
use st_nn::ParamStore;
use st_tensor::Matrix;

/// The Historical Average forecaster.
///
/// Implements [`Forecaster`] so it rides the shared evaluation path;
/// training is a no-op (the "fit" happens in [`HistoricalAverage::fit`]).
#[derive(Debug)]
pub struct HistoricalAverage {
    profiles: DayProfiles,
    slots_per_day: usize,
    horizon: usize,
    empty_store: ParamStore,
}

impl HistoricalAverage {
    /// Fits time-of-day averages from a (training) dataset.
    pub fn fit(train: &TrafficDataset, horizon: usize) -> Self {
        Self {
            profiles: DayProfiles::from_dataset(train),
            slots_per_day: train.slots_per_day(),
            horizon,
            empty_store: ParamStore::new(),
        }
    }

    /// The historical average matrix (`N × D`) for a time-of-day slot.
    pub fn profile_at(&self, slot: usize) -> Matrix {
        let slot = slot % self.slots_per_day;
        let n = self.profiles.num_nodes();
        let d = self.profiles.profiles()[0].cols();
        Matrix::from_fn(n, d, |node, f| self.profiles.profiles()[node][(slot, f)])
    }
}

impl Forecaster for HistoricalAverage {
    fn params(&self) -> &ParamStore {
        &self.empty_store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.empty_store
    }

    fn accumulate_gradients(&mut self, sample: &WindowSample) -> f64 {
        // Nothing to train; report the current loss for logging parity.
        self.loss(sample)
    }

    fn loss(&self, sample: &WindowSample) -> f64 {
        let preds = self.predict(sample);
        let mut acc = st_nn::ErrorAccum::new();
        for (h, p) in preds.iter().enumerate() {
            acc.update(p, &sample.targets[h], Some(&sample.target_masks[h]));
        }
        acc.mae()
    }

    fn predict(&self, sample: &WindowSample) -> Vec<Matrix> {
        let last_slot = *sample.slots.last().expect("non-empty history");
        (1..=self.horizon)
            .map(|h| self.profile_at(last_slot + h))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::WindowSampler;
    use st_graph::RoadNetwork;
    use st_tensor::Tensor3;

    fn periodic_ds() -> TrafficDataset {
        let slots = 288;
        let values = Tensor3::from_fn(2, 1, slots * 3, |n, _, t| {
            ((t % slots) as f64 * 0.1) + n as f64 * 100.0
        });
        let mask = Tensor3::ones(2, 1, slots * 3);
        TrafficDataset::new("p", values, mask, RoadNetwork::corridor(2, 1.0), 5)
    }

    #[test]
    fn predicts_time_of_day_average() {
        let ds = periodic_ds();
        let ha = HistoricalAverage::fit(&ds, 2);
        let sampler = WindowSampler::new(4, 2, 1);
        let sample = sampler.window_at(&ds, 10);
        let preds = ha.predict(&sample);
        // Window covers slots 10..14; predictions are profiles at slots 14, 15.
        assert_eq!(preds.len(), 2);
        assert!((preds[0][(0, 0)] - 1.4).abs() < 1e-9);
        assert!((preds[1][(1, 0)] - (1.5 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn perfectly_periodic_signal_gives_zero_error() {
        let ds = periodic_ds();
        let ha = HistoricalAverage::fit(&ds, 2);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 100);
        assert!(ha.loss(&sample) < 1e-9);
    }

    #[test]
    fn profile_wraps_midnight() {
        let ds = periodic_ds();
        let ha = HistoricalAverage::fit(&ds, 2);
        let p = ha.profile_at(288 + 5);
        assert!((p[(0, 0)] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn accumulate_gradients_is_safe_noop() {
        let ds = periodic_ds();
        let mut ha = HistoricalAverage::fit(&ds, 2);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let l = ha.accumulate_gradients(&sample);
        assert!(l.is_finite());
        assert!(ha.params().is_empty());
    }
}
