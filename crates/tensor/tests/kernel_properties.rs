//! st-check properties for the cache-blocked matmul microkernels.
//!
//! The blocked kernels (`matmul` / `matmul_tn` / `matmul_nt` and their
//! `_into` variants) promise to be **bit-identical** to the retained naive
//! triple-loop references for every shape and every thread count. The
//! generator is deliberately adversarial about shapes: degenerate vectors
//! (1×N, N×1), inner dimension 1, dimensions that are not multiples of the
//! `MR`/`NR` register-tile widths, and reductions deeper than one `KC`
//! panel. Values span many orders of magnitude (plus exact zeros) so any
//! reassociation of the per-element sums would change bits immediately.
//!
//! One `#[test]` owns all the global-knob flipping (parallel threshold and
//! worker-count override are process-wide).

use st_check::{prop_assert, prop_assert_eq, Check};
use st_tensor::{Matrix, KC, MR, NR};

/// One generated case: operand shapes plus a value seed.
#[derive(Debug, Clone)]
struct Case {
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
}

fn gen_dim(g: &mut st_check::Gen) -> usize {
    // Favour tile-edge-hostile sizes: exact tile widths, one off either
    // side, degenerate 1, and a spread of non-multiples.
    match g.usize_in(0, 7) {
        0 => 1,
        1 => MR,
        2 => NR + 1,
        3 => MR * 3 - 1,
        4 => g.usize_in(1, 40),
        5 => g.usize_in(1, 8) * MR + g.usize_in(1, MR - 1),
        _ => g.usize_in(1, 8) * NR + 1,
    }
}

fn gen_matrix(seed: u64, r: usize, c: usize) -> Matrix {
    let mut rng = st_tensor::rng(seed);
    Matrix::from_fn(r, c, |i, j| {
        if (i + 2 * j) % 5 == 0 {
            0.0 // exact zeros: must be multiplied through, not skipped
        } else {
            (rng.gen_f64() - 0.5) * 10f64.powi((rng.next_u64() % 11) as i32 - 5)
        }
    })
}

fn assert_bits_eq(name: &str, case: &Case, got: &Matrix, want: &Matrix) -> Result<(), String> {
    prop_assert_eq!(got.shape(), want.shape());
    for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
        prop_assert!(
            x.to_bits() == y.to_bits(),
            "{name} {case:?}: blocked {x} != naive {y}"
        );
    }
    Ok(())
}

#[test]
fn blocked_kernels_are_bit_identical_to_naive_at_any_thread_count() {
    let saved = st_tensor::parallel_threshold();
    // Force every product onto the parallel path so small shapes exercise
    // band decomposition too.
    st_tensor::set_parallel_threshold(1);

    let result = std::panic::catch_unwind(|| {
        Check::new("blocked_matmul_family_matches_naive")
            .cases(40)
            .run_with_shrink(
                |g| Case {
                    m: gen_dim(g),
                    k: gen_dim(g),
                    n: gen_dim(g),
                    seed: g.u64_in(0, u64::MAX - 1),
                },
                |_| Vec::new(),
                |case| {
                    let &Case { m, k, n, seed } = case;
                    let a = gen_matrix(seed, m, k);
                    let b = gen_matrix(seed ^ 0x9E37, k, n);
                    let at = gen_matrix(seed ^ 0x79B9, k, m);
                    let bt = gen_matrix(seed ^ 0x7F4A, n, k);

                    let nn_ref = a.matmul_naive(&b);
                    let tn_ref = at.matmul_tn_naive(&b);
                    let nt_ref = a.matmul_nt_naive(&bt);

                    for threads in [1usize, 2, 4] {
                        st_par::set_num_threads(threads);
                        assert_bits_eq("matmul", case, &a.matmul(&b), &nn_ref)?;
                        assert_bits_eq("matmul_tn", case, &at.matmul_tn(&b), &tn_ref)?;
                        assert_bits_eq("matmul_nt", case, &a.matmul_nt(&bt), &nt_ref)?;

                        // The `_into` variants must overwrite dirty pool
                        // buffers with the same bits.
                        let mut out = Matrix::filled(m, n, f64::NAN);
                        a.matmul_into(&b, &mut out);
                        assert_bits_eq("matmul_into", case, &out, &nn_ref)?;
                        let mut out = Matrix::filled(m, n, f64::NAN);
                        at.matmul_tn_into(&b, &mut out);
                        assert_bits_eq("matmul_tn_into", case, &out, &tn_ref)?;
                        let mut out = Matrix::filled(m, n, f64::NAN);
                        a.matmul_nt_into(&bt, &mut out);
                        assert_bits_eq("matmul_nt_into", case, &out, &nt_ref)?;
                    }
                    Ok(())
                },
            );
    });

    st_par::set_num_threads(0);
    st_tensor::set_parallel_threshold(saved);
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn kc_panel_boundaries_preserve_bits() {
    // Reductions deeper than one KC panel carry the accumulator through the
    // output buffer between panels; that round trip must not change bits.
    let depths = [KC - 1, KC, KC + 1, 2 * KC + 3];
    for &k in &depths {
        let a = gen_matrix(11, 5, k);
        let b = gen_matrix(13, k, 6);
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "k={k} diverged");
        }
    }
}
