//! Plain-text persistence for trained models.
//!
//! Two deliberately simple, dependency-free formats:
//!
//! **v1 — parameters only.** One header line per parameter followed by its
//! row-major values; loading requires a model rebuilt from the original
//! dataset (the graphs are not stored):
//!
//! ```text
//! rihgcn-params v1
//! param <name> <rows> <cols>
//! <v> <v> ...
//! ```
//!
//! **v2 — self-contained checkpoint.** Bundles everything needed to rebuild
//! and run the model standalone — the [`RihgcnConfig`], the fitted
//! [`ZScore`] statistics, the geographic and temporal graphs with their
//! intervals, and (as an embedded v1 section) the parameters:
//!
//! ```text
//! rihgcn-checkpoint v2
//! config <key> <value>      (one line per config field)
//! meta nodes <N> features <D> slots_per_day <S>
//! zscore_mean <D values>
//! zscore_std <D values>
//! geo <N> <N>
//! <N*N values>
//! temporal <M>
//! interval <start> <end> <N> <N>    (M times)
//! <N*N values>
//! rihgcn-params v1
//! ...
//! ```
//!
//! Floats are written with Rust's shortest-round-trip (`{:?}`) formatting,
//! so both formats reload **bit-identically**. v1 files remain loadable via
//! [`load_params`].

use crate::{PredictionHead, RihgcnConfig, RihgcnModel};
use st_data::ZScore;
use st_graph::{Interval, SeriesDistance};
use st_nn::ParamStore;
use st_tensor::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error returned when loading persisted parameters fails.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not in the expected format.
    Format(String),
    /// The file's parameters do not match the model (name/shape/order).
    Mismatch(String),
    /// A value is NaN or infinite (rejected on both save and load — a NaN
    /// written to disk would otherwise round-trip silently into a poisoned
    /// model).
    NonFinite(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(msg) => write!(f, "malformed parameter file: {msg}"),
            PersistError::Mismatch(msg) => write!(f, "parameter mismatch: {msg}"),
            PersistError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

const HEADER: &str = "rihgcn-params v1";
const CKPT_HEADER: &str = "rihgcn-checkpoint v2";

/// Writes every parameter of the store.
///
/// # Errors
///
/// Returns [`PersistError::NonFinite`] if any parameter holds a NaN or
/// infinity, and any underlying I/O error.
pub fn save_params<W: Write>(store: &ParamStore, mut w: W) -> Result<(), PersistError> {
    writeln!(w, "{HEADER}")?;
    for id in store.ids() {
        let m = store.value(id);
        if !m.is_finite() {
            return Err(PersistError::NonFinite(format!(
                "parameter {} contains a NaN or infinite value; refusing to save",
                store.name(id)
            )));
        }
        writeln!(w, "param {} {} {}", store.name(id), m.rows(), m.cols())?;
        let mut line = String::new();
        for (i, v) in m.as_slice().iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&format!("{v:?}")); // Debug float formatting round-trips exactly
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Loads parameters into an existing store; names, shapes and order must
/// match exactly (i.e. the model must be built with the same configuration).
///
/// # Errors
///
/// Returns [`PersistError::Format`] for malformed input and
/// [`PersistError::Mismatch`] when the stored parameters do not line up with
/// the model's.
pub fn load_params<R: BufRead>(store: &mut ParamStore, r: R) -> Result<(), PersistError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| PersistError::Format("empty file".into()))??;
    if header.trim() != HEADER {
        return Err(PersistError::Format(format!("bad header: {header:?}")));
    }

    let ids: Vec<_> = store.ids().collect();
    for &id in &ids {
        let meta = lines
            .next()
            .ok_or_else(|| PersistError::Format("unexpected end of file".into()))??;
        let parts: Vec<&str> = meta.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "param" {
            return Err(PersistError::Format(format!("bad param header: {meta:?}")));
        }
        let (name, rows, cols) = (
            parts[1],
            parts[2]
                .parse::<usize>()
                .map_err(|e| PersistError::Format(e.to_string()))?,
            parts[3]
                .parse::<usize>()
                .map_err(|e| PersistError::Format(e.to_string()))?,
        );
        if name != store.name(id) {
            return Err(PersistError::Mismatch(format!(
                "expected parameter {:?}, file has {:?}",
                store.name(id),
                name
            )));
        }
        if (rows, cols) != store.value(id).shape() {
            return Err(PersistError::Mismatch(format!(
                "parameter {name}: expected shape {:?}, file has {rows}x{cols}",
                store.value(id).shape()
            )));
        }
        let data_line = lines
            .next()
            .ok_or_else(|| PersistError::Format("missing data line".into()))??;
        let values: Result<Vec<f64>, _> = data_line
            .split_whitespace()
            .map(str::parse::<f64>)
            .collect();
        let values = values.map_err(|e| PersistError::Format(e.to_string()))?;
        if values.len() != rows * cols {
            return Err(PersistError::Format(format!(
                "parameter {name}: expected {} values, found {}",
                rows * cols,
                values.len()
            )));
        }
        if !values.iter().all(|v| v.is_finite()) {
            return Err(PersistError::NonFinite(format!(
                "parameter {name} contains a NaN or infinite value; refusing to load"
            )));
        }
        store.set_value(id, Matrix::from_vec(rows, cols, values));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Checkpoint v2: self-contained model + normaliser persistence.
// ---------------------------------------------------------------------------

fn fmt_floats(values: &[f64]) -> String {
    let mut line = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            line.push(' ');
        }
        line.push_str(&format!("{v:?}")); // shortest round-trip formatting
    }
    line
}

fn parse_floats(line: &str, expected: usize, what: &str) -> Result<Vec<f64>, PersistError> {
    let values: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse::<f64>).collect();
    let values = values.map_err(|e| PersistError::Format(format!("{what}: {e}")))?;
    if values.len() != expected {
        return Err(PersistError::Format(format!(
            "{what}: expected {expected} values, found {}",
            values.len()
        )));
    }
    if !values.iter().all(|v| v.is_finite()) {
        return Err(PersistError::NonFinite(format!(
            "{what} contains a NaN or infinite value"
        )));
    }
    Ok(values)
}

fn distance_token(d: SeriesDistance) -> String {
    match d {
        SeriesDistance::Dtw => "dtw".to_string(),
        SeriesDistance::Erp { gap } => format!("erp {gap:?}"),
        SeriesDistance::Lcss { epsilon } => format!("lcss {epsilon:?}"),
    }
}

fn parse_distance(parts: &[&str]) -> Result<SeriesDistance, PersistError> {
    match parts {
        ["dtw"] => Ok(SeriesDistance::Dtw),
        ["erp", gap] => Ok(SeriesDistance::Erp {
            gap: gap
                .parse()
                .map_err(|e| PersistError::Format(format!("erp gap: {e}")))?,
        }),
        ["lcss", eps] => Ok(SeriesDistance::Lcss {
            epsilon: eps
                .parse()
                .map_err(|e| PersistError::Format(format!("lcss epsilon: {e}")))?,
        }),
        other => Err(PersistError::Format(format!(
            "unknown distance {other:?} (dtw | erp <gap> | lcss <epsilon>)"
        ))),
    }
}

fn write_config<W: Write>(cfg: &RihgcnConfig, w: &mut W) -> Result<(), PersistError> {
    writeln!(w, "config gcn_dim {}", cfg.gcn_dim)?;
    writeln!(w, "config lstm_dim {}", cfg.lstm_dim)?;
    writeln!(w, "config cheb_k {}", cfg.cheb_k)?;
    writeln!(w, "config num_temporal_graphs {}", cfg.num_temporal_graphs)?;
    writeln!(w, "config history {}", cfg.history)?;
    writeln!(w, "config horizon {}", cfg.horizon)?;
    writeln!(w, "config lambda {:?}", cfg.lambda)?;
    writeln!(w, "config tau {:?}", cfg.tau)?;
    writeln!(w, "config epsilon {:?}", cfg.epsilon)?;
    writeln!(w, "config distance {}", distance_token(cfg.distance))?;
    writeln!(w, "config bidirectional {}", cfg.bidirectional)?;
    writeln!(w, "config consistency_weight {:?}", cfg.consistency_weight)?;
    let head = match cfg.head {
        PredictionHead::Concat => "concat",
        PredictionHead::Attention => "attention",
    };
    writeln!(w, "config head {head}")?;
    writeln!(w, "config seed {}", cfg.seed)?;
    Ok(())
}

fn apply_config_line(cfg: &mut RihgcnConfig, parts: &[&str]) -> Result<(), PersistError> {
    fn num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, PersistError>
    where
        T::Err: fmt::Display,
    {
        v.parse()
            .map_err(|e| PersistError::Format(format!("config {key}: {e}")))
    }
    let [key, rest @ ..] = parts else {
        return Err(PersistError::Format("empty config line".into()));
    };
    let one = || -> Result<&str, PersistError> {
        match rest {
            [v] => Ok(v),
            _ => Err(PersistError::Format(format!(
                "config {key}: expected one value, got {rest:?}"
            ))),
        }
    };
    match *key {
        "gcn_dim" => cfg.gcn_dim = num(key, one()?)?,
        "lstm_dim" => cfg.lstm_dim = num(key, one()?)?,
        "cheb_k" => cfg.cheb_k = num(key, one()?)?,
        "num_temporal_graphs" => cfg.num_temporal_graphs = num(key, one()?)?,
        "history" => cfg.history = num(key, one()?)?,
        "horizon" => cfg.horizon = num(key, one()?)?,
        "lambda" => cfg.lambda = num(key, one()?)?,
        "tau" => cfg.tau = num(key, one()?)?,
        "epsilon" => cfg.epsilon = num(key, one()?)?,
        "distance" => cfg.distance = parse_distance(rest)?,
        "bidirectional" => cfg.bidirectional = num(key, one()?)?,
        "consistency_weight" => cfg.consistency_weight = num(key, one()?)?,
        "head" => {
            cfg.head = match one()? {
                "concat" => PredictionHead::Concat,
                "attention" => PredictionHead::Attention,
                other => {
                    return Err(PersistError::Format(format!(
                        "unknown prediction head {other:?}"
                    )))
                }
            }
        }
        "seed" => cfg.seed = num(key, one()?)?,
        other => {
            return Err(PersistError::Format(format!(
                "unknown config key {other:?}"
            )))
        }
    }
    Ok(())
}

/// Writes a **self-contained v2 checkpoint**: config, normaliser, graphs
/// and parameters. The result reloads standalone via [`load_checkpoint`] —
/// no dataset required — and reproduces the model's forecasts
/// bit-identically.
///
/// # Errors
///
/// Returns [`PersistError::NonFinite`] if any parameter, statistic or
/// adjacency value is NaN/infinite, and any underlying I/O error.
pub fn save_checkpoint<W: Write>(
    model: &RihgcnModel,
    z: &ZScore,
    mut w: W,
) -> Result<(), PersistError> {
    let n = model.num_nodes();
    writeln!(w, "{CKPT_HEADER}")?;
    write_config(model.config(), &mut w)?;
    writeln!(
        w,
        "meta nodes {n} features {} slots_per_day {}",
        model.num_features(),
        model.slots_per_day()
    )?;
    if !z.mean().iter().chain(z.std()).all(|v| v.is_finite()) {
        return Err(PersistError::NonFinite(
            "normaliser statistics contain a NaN or infinite value".into(),
        ));
    }
    writeln!(w, "zscore_mean {}", fmt_floats(z.mean()))?;
    writeln!(w, "zscore_std {}", fmt_floats(z.std()))?;
    let geo = model.geo_adjacency();
    if !geo.is_finite() {
        return Err(PersistError::NonFinite(
            "geographic adjacency contains a NaN or infinite value".into(),
        ));
    }
    writeln!(w, "geo {} {}", geo.rows(), geo.cols())?;
    writeln!(w, "{}", fmt_floats(geo.as_slice()))?;
    writeln!(w, "temporal {}", model.temporal_graphs().len())?;
    for (interval, adj) in model.temporal_graphs() {
        if !adj.is_finite() {
            return Err(PersistError::NonFinite(format!(
                "temporal adjacency [{}, {}) contains a NaN or infinite value",
                interval.start, interval.end
            )));
        }
        writeln!(
            w,
            "interval {} {} {} {}",
            interval.start,
            interval.end,
            adj.rows(),
            adj.cols()
        )?;
        writeln!(w, "{}", fmt_floats(adj.as_slice()))?;
    }
    save_params(model.params(), &mut w)
}

/// Reads a matrix section: a `rows cols` pair parsed by the caller plus one
/// data line.
fn read_matrix<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    rows: usize,
    cols: usize,
    what: &str,
) -> Result<Matrix, PersistError> {
    let data = lines
        .next()
        .ok_or_else(|| PersistError::Format(format!("{what}: missing data line")))?;
    Ok(Matrix::from_vec(
        rows,
        cols,
        parse_floats(data, rows * cols, what)?,
    ))
}

/// Loads a **self-contained v2 checkpoint** written by [`save_checkpoint`],
/// rebuilding the model from the stored graphs (no dataset needed) and
/// returning it together with the normalisation transform.
///
/// # Errors
///
/// Returns [`PersistError::Format`] for malformed or truncated input (a v1
/// params file is reported with a pointer to [`load_params`]),
/// [`PersistError::NonFinite`] for NaN/infinite stored values, and
/// [`PersistError::Mismatch`] when the embedded parameter section does not
/// line up with the rebuilt model.
pub fn load_checkpoint<R: BufRead>(mut r: R) -> Result<(RihgcnModel, ZScore), PersistError> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lines = text.lines();
    match lines.next().map(str::trim) {
        Some(h) if h == CKPT_HEADER => {}
        Some(h) if h == HEADER => {
            return Err(PersistError::Format(
                "this is a v1 params-only file; load it with load_params into a model \
                 built from the training dataset"
                    .into(),
            ))
        }
        Some(h) => return Err(PersistError::Format(format!("bad header: {h:?}"))),
        None => return Err(PersistError::Format("empty file".into())),
    }

    let mut cfg = RihgcnConfig::default();
    let mut seen_config = false;
    let (nodes, features, slots_per_day) = loop {
        let line = lines
            .next()
            .ok_or_else(|| PersistError::Format("unexpected end of file".into()))?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["config", rest @ ..] => {
                seen_config = true;
                apply_config_line(&mut cfg, rest)?;
            }
            ["meta", "nodes", n, "features", d, "slots_per_day", s] => {
                let parse = |v: &str, what: &str| -> Result<usize, PersistError> {
                    v.parse()
                        .map_err(|e| PersistError::Format(format!("meta {what}: {e}")))
                };
                break (
                    parse(n, "nodes")?,
                    parse(d, "features")?,
                    parse(s, "slots_per_day")?,
                );
            }
            other => {
                return Err(PersistError::Format(format!(
                    "expected config/meta line, found {other:?}"
                )))
            }
        }
    };
    if !seen_config {
        return Err(PersistError::Format(
            "checkpoint has no config lines".into(),
        ));
    }

    let mean_line = lines
        .next()
        .ok_or_else(|| PersistError::Format("missing zscore_mean line".into()))?;
    let mean = parse_floats(
        mean_line
            .strip_prefix("zscore_mean ")
            .ok_or_else(|| PersistError::Format("expected zscore_mean".into()))?,
        features,
        "zscore_mean",
    )?;
    let std_line = lines
        .next()
        .ok_or_else(|| PersistError::Format("missing zscore_std line".into()))?;
    let std = parse_floats(
        std_line
            .strip_prefix("zscore_std ")
            .ok_or_else(|| PersistError::Format("expected zscore_std".into()))?,
        features,
        "zscore_std",
    )?;
    if !std.iter().all(|&s| s > 0.0) {
        return Err(PersistError::Format(
            "zscore_std values must be positive".into(),
        ));
    }
    let z = ZScore::from_parts(mean, std);

    let geo_line = lines
        .next()
        .ok_or_else(|| PersistError::Format("missing geo line".into()))?;
    let geo = match geo_line.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["geo", r, c] if *r == nodes.to_string() && *c == nodes.to_string() => {
            read_matrix(&mut lines, nodes, nodes, "geo adjacency")?
        }
        other => {
            return Err(PersistError::Format(format!(
                "expected `geo {nodes} {nodes}`, found {other:?}"
            )))
        }
    };

    let temporal_line = lines
        .next()
        .ok_or_else(|| PersistError::Format("missing temporal line".into()))?;
    let m: usize = temporal_line
        .strip_prefix("temporal ")
        .ok_or_else(|| PersistError::Format("expected temporal count".into()))?
        .trim()
        .parse()
        .map_err(|e| PersistError::Format(format!("temporal count: {e}")))?;
    let mut temporal_graphs = Vec::with_capacity(m);
    for i in 0..m {
        let header = lines
            .next()
            .ok_or_else(|| PersistError::Format(format!("missing interval header {i}")))?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        let ["interval", start, end, r, c] = parts.as_slice() else {
            return Err(PersistError::Format(format!(
                "bad interval header: {header:?}"
            )));
        };
        let parse = |v: &str, what: &str| -> Result<usize, PersistError> {
            v.parse()
                .map_err(|e| PersistError::Format(format!("interval {what}: {e}")))
        };
        let (start, end) = (parse(start, "start")?, parse(end, "end")?);
        if start >= end {
            return Err(PersistError::Format(format!(
                "interval [{start}, {end}) is empty"
            )));
        }
        if (parse(r, "rows")?, parse(c, "cols")?) != (nodes, nodes) {
            return Err(PersistError::Format(format!(
                "temporal adjacency {i} must be {nodes}x{nodes}"
            )));
        }
        let adj = read_matrix(&mut lines, nodes, nodes, &format!("temporal adjacency {i}"))?;
        temporal_graphs.push((Interval::new(start, end), adj));
    }
    if m != cfg.num_temporal_graphs {
        return Err(PersistError::Mismatch(format!(
            "checkpoint has {m} temporal graphs but config says {}",
            cfg.num_temporal_graphs
        )));
    }

    // The remainder of the file is an embedded v1 parameter section.
    let params_text: String = lines.collect::<Vec<_>>().join("\n");
    let mut model = RihgcnModel::from_parts(cfg, features, geo, temporal_graphs, slots_per_day);
    if model.num_nodes() != nodes {
        return Err(PersistError::Mismatch(format!(
            "meta says {nodes} nodes but graphs have {}",
            model.num_nodes()
        )));
    }
    load_params(model.params_mut(), params_text.as_bytes())?;
    Ok((model, z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::{rng, uniform_matrix};

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.add("a.w", uniform_matrix(&mut rng(1), 2, 3, -1.0, 1.0));
        store.add("a.b", uniform_matrix(&mut rng(2), 1, 3, -1.0, 1.0));
        store
    }

    #[test]
    fn round_trip_is_exact() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let mut fresh = sample_store();
        // Perturb, then load back.
        let ids: Vec<_> = fresh.ids().collect();
        fresh.set_value(ids[0], st_tensor::Matrix::zeros(2, 3));
        load_params(&mut fresh, buf.as_slice()).unwrap();
        for (a, b) in store.ids().zip(fresh.ids()) {
            assert_eq!(store.value(a), fresh.value(b));
        }
    }

    #[test]
    fn rejects_bad_header() {
        let mut store = sample_store();
        let err = load_params(&mut store, "nonsense\n".as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn rejects_name_mismatch() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.add("different", st_tensor::Matrix::zeros(2, 3));
        other.add("a.b", st_tensor::Matrix::zeros(1, 3));
        let err = load_params(&mut other, buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let mut other = ParamStore::new();
        other.add("a.w", st_tensor::Matrix::zeros(3, 2));
        other.add("a.b", st_tensor::Matrix::zeros(1, 3));
        let err = load_params(&mut other, buf.as_slice()).unwrap_err();
        assert!(matches!(err, PersistError::Mismatch(_)));
    }

    #[test]
    fn rejects_truncated_file() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        let mut fresh = sample_store();
        let err = load_params(&mut fresh, truncated.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn save_rejects_non_finite_parameters() {
        let mut store = sample_store();
        let ids: Vec<_> = store.ids().collect();
        let mut poisoned = store.value(ids[0]).clone();
        poisoned[(0, 1)] = f64::NAN;
        store.set_value(ids[0], poisoned);
        let err = save_params(&store, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, PersistError::NonFinite(_)), "{err}");
        assert!(err.to_string().contains("a.w"), "{err}");
    }

    #[test]
    fn load_rejects_non_finite_parameters() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_params(&store, &mut buf).unwrap();
        // A NaN smuggled into the file must not round-trip into the model.
        let text = String::from_utf8(buf).unwrap().replacen(
            &format!("{:?}", store.value(store.ids().next().unwrap())[(0, 0)]),
            "NaN",
            1,
        );
        let mut fresh = sample_store();
        let err = load_params(&mut fresh, text.as_bytes()).unwrap_err();
        assert!(matches!(err, PersistError::NonFinite(_)), "{err}");
    }

    mod checkpoint {
        use super::*;
        use crate::{prepare_split, OnlineForecaster, RihgcnConfig, RihgcnModel};
        use st_data::{generate_pems, PemsConfig, ZScore};

        fn trained_pair() -> (RihgcnModel, ZScore, st_data::TrafficDataset) {
            let ds = generate_pems(&PemsConfig {
                num_nodes: 4,
                num_days: 2,
                ..Default::default()
            });
            let ds = ds.with_extra_missing(0.3, &mut rng(9));
            let (norm, z) = prepare_split(&ds.split_chronological());
            let cfg = RihgcnConfig {
                gcn_dim: 3,
                lstm_dim: 4,
                cheb_k: 2,
                num_temporal_graphs: 2,
                history: 4,
                horizon: 2,
                ..Default::default()
            };
            let model = RihgcnModel::from_dataset(&norm.train, cfg);
            (model, z, ds)
        }

        fn checkpoint_text() -> (RihgcnModel, ZScore, st_data::TrafficDataset, String) {
            let (model, z, ds) = trained_pair();
            let mut buf = Vec::new();
            save_checkpoint(&model, &z, &mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            (model, z, ds, text)
        }

        #[test]
        fn v2_round_trip_is_bit_exact() {
            let (model, z, ds, text) = checkpoint_text();
            let (restored, z2) = load_checkpoint(text.as_bytes()).unwrap();
            assert_eq!(z, z2, "normaliser must round-trip exactly");
            assert_eq!(restored.config(), model.config());
            assert_eq!(restored.num_nodes(), model.num_nodes());
            assert_eq!(restored.slots_per_day(), model.slots_per_day());
            assert_eq!(restored.intervals(), model.intervals());
            assert_eq!(restored.geo_adjacency(), model.geo_adjacency());

            // Identical forecasts on an identical observation stream.
            let mut a = OnlineForecaster::new(model, z);
            let mut b = OnlineForecaster::new(restored, z2);
            for t in 0..4 {
                a.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
                b.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
            }
            assert_eq!(
                a.forecast().unwrap(),
                b.forecast().unwrap(),
                "restored checkpoint must forecast bit-identically"
            );
            assert_eq!(a.imputed_window().unwrap(), b.imputed_window().unwrap());
        }

        #[test]
        fn v2_reload_of_reload_is_stable() {
            let (_, _, _, text) = checkpoint_text();
            let (m1, z1) = load_checkpoint(text.as_bytes()).unwrap();
            let mut again = Vec::new();
            save_checkpoint(&m1, &z1, &mut again).unwrap();
            assert_eq!(
                text,
                String::from_utf8(again).unwrap(),
                "save∘load must be the identity on the file"
            );
        }

        #[test]
        fn v1_params_still_load_into_dataset_built_model() {
            let (model, _z, ds) = trained_pair();
            let mut buf = Vec::new();
            save_params(model.params(), &mut buf).unwrap();
            let (norm, _) = prepare_split(&ds.split_chronological());
            let mut fresh = RihgcnModel::from_dataset(&norm.train, model.config().clone());
            load_params(fresh.params_mut(), buf.as_slice()).unwrap();
            for (a, b) in model.params().ids().zip(fresh.params().ids()) {
                assert_eq!(model.params().value(a), fresh.params().value(b));
            }
        }

        #[test]
        fn v1_file_gives_helpful_checkpoint_error() {
            let (model, _z, _ds) = trained_pair();
            let mut buf = Vec::new();
            save_params(model.params(), &mut buf).unwrap();
            let err = load_checkpoint(buf.as_slice()).unwrap_err();
            assert!(matches!(err, PersistError::Format(_)));
            assert!(err.to_string().contains("load_params"), "{err}");
        }

        #[test]
        fn truncation_at_every_section_is_a_clean_error() {
            let (_, _, _, text) = checkpoint_text();
            let total = text.lines().count();
            // Cutting the file anywhere must produce an error, never a panic
            // or a silently wrong model.
            for keep in 0..total {
                let truncated: String = text.lines().take(keep).collect::<Vec<_>>().join("\n");
                let err = load_checkpoint(truncated.as_bytes()).unwrap_err();
                assert!(
                    matches!(err, PersistError::Format(_) | PersistError::Mismatch(_)),
                    "truncation at line {keep}: unexpected {err}"
                );
            }
        }

        #[test]
        fn corrupt_values_are_rejected() {
            let (_, _, _, text) = checkpoint_text();
            let bad_header = text.replacen("rihgcn-checkpoint v2", "rihgcn-checkpoint v9", 1);
            assert!(matches!(
                load_checkpoint(bad_header.as_bytes()).unwrap_err(),
                PersistError::Format(_)
            ));
            let bad_cfg = text.replacen("config gcn_dim 3", "config gcn_dim banana", 1);
            assert!(matches!(
                load_checkpoint(bad_cfg.as_bytes()).unwrap_err(),
                PersistError::Format(_)
            ));
            let nan_z = text.replacen("zscore_std ", "zscore_std NaN ", 1);
            assert!(load_checkpoint(nan_z.as_bytes()).is_err());
        }
    }
}
