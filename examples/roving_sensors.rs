//! Roving-sensor scenario: forecasting travel times for the Stampede-like
//! shuttle loop, where ~80% of entries are structurally missing because a
//! segment is only observed when a shuttle happens to traverse it.
//!
//! Demonstrates why imputation-aware models matter in exactly the setting
//! the paper motivates: the mean-fill GCN-LSTM baseline has to invent most
//! of its input, while RIHGCN reconstructs it jointly with the forecast.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example roving_sensors
//! ```

use rihgcn::baselines::{BaselineConfig, BaselineKind, StBaseline};
use rihgcn::core::{
    evaluate_prediction, fit, prepare_split, RihgcnConfig, RihgcnModel, TrainConfig,
};
use rihgcn::data::{generate_stampede, StampedeConfig, WindowSampler};

fn main() {
    // 12 road segments on a shuttle loop, 10 simulated days; the mask comes
    // from an explicit shuttle-fleet simulation.
    let ds = generate_stampede(&StampedeConfig {
        num_days: 10,
        ..Default::default()
    });
    println!(
        "Stampede-like dataset: {} segments, {} timestamps, intrinsic missing rate {:.1}%",
        ds.num_nodes(),
        ds.num_times(),
        ds.missing_rate() * 100.0
    );

    let (norm, z) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(12, 12, 6);
    let train = sampler.sample(&norm.train);
    let val = sampler.sample(&norm.val);
    let test = sampler.sample(&norm.test);
    let tc = TrainConfig {
        max_epochs: 10,
        patience: 3,
        ..Default::default()
    };

    // Baseline: GCN-LSTM with global-mean-filled inputs (no imputation
    // path). In normalised space the global per-feature mean is zero, so
    // the zero-filled window samples are exactly the paper's mean-fill
    // preprocessing.
    let bl_cfg = BaselineConfig {
        gcn_dim: 8,
        lstm_dim: 16,
        ..Default::default()
    };
    let mut baseline = StBaseline::from_dataset(&norm.train, BaselineKind::GcnLstm, bl_cfg);
    fit(&mut baseline, &train, &val, &tc);
    let baseline_pred = evaluate_prediction(&baseline, &test, &z);

    // RIHGCN: joint recurrent imputation + forecasting.
    let cfg = RihgcnConfig {
        gcn_dim: 8,
        lstm_dim: 16,
        num_temporal_graphs: 4,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&norm.train, cfg);
    fit(&mut model, &train, &val, &tc);
    let rihgcn_pred = evaluate_prediction(&model, &test, &z);

    println!("\n60-minute travel-time forecast (test, seconds):");
    println!("  GCN-LSTM (mean fill)  {baseline_pred}");
    println!("  RIHGCN                {rihgcn_pred}");
    println!("\nUnder ~80% structural missingness the mean-fill baseline mostly");
    println!("sees the global average; RIHGCN's recurrent imputation reconstructs");
    println!("the hidden inputs from spatio-temporal correlations instead.");
}
