//! Chebyshev spectral graph convolution layer (paper Eq. 1).
//!
//! `y = Σ_{k<K} T_k(L̃) · x · W_k + b`, the generalised multi-dimensional
//! graph convolution of Defferrard et al. used by the paper. The scaled
//! Laplacian `L̃` is supplied at `forward` time as a constant, so one layer
//! instance can serve different graphs of the same node count (not needed by
//! RIHGCN itself, which allocates one layer per graph, but useful for
//! ablations).

use crate::{ParamId, ParamStore, Session};
use st_autodiff::Var;
use st_tensor::{xavier_matrix, Matrix, StRng};

/// Activation applied by [`ChebGcn::forward`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Rectified linear unit (the paper's choice for GCN blocks).
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No activation.
    Identity,
}

/// Precomputed Chebyshev polynomial basis `[T_0(L̃), …, T_{K−1}(L̃)]`.
///
/// [`ChebGcn::forward`] rebuilds the recurrence `T_k x` on the tape for
/// every sample; for a fixed graph the polynomials `T_k(L̃)` are constants,
/// so the HGCN block precomputes them once per graph at construction (the
/// per-temporal-graph fan-out parallelises across `st-par` workers) and
/// [`ChebGcn::forward_with_basis`] then needs one constant matmul per
/// order. Since the basis matrices carry no gradient, the tape also skips
/// their backward work.
///
/// # Examples
///
/// ```
/// use st_nn::ChebBasis;
/// use st_tensor::Matrix;
///
/// let basis = ChebBasis::new(&Matrix::identity(3), 3);
/// assert_eq!(basis.order(), 3);
/// assert_eq!(basis.matrices()[0], Matrix::identity(3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChebBasis {
    matrices: Vec<Matrix>,
}

impl ChebBasis {
    /// Evaluates `T_0 … T_{k−1}` of the scaled Laplacian `L̃`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `scaled` is not square.
    pub fn new(scaled: &Matrix, k: usize) -> Self {
        assert!(k >= 1, "chebyshev order must be at least 1");
        let n = scaled.rows();
        assert_eq!(n, scaled.cols(), "scaled laplacian must be square");
        let _span = st_obs::span!("nn.cheb_basis", n, k);
        let mut matrices = Vec::with_capacity(k);
        matrices.push(Matrix::identity(n));
        if k >= 2 {
            matrices.push(scaled.clone());
        }
        for i in 2..k {
            // T_k = 2·L̃·T_{k−1} − T_{k−2}.
            let two_lt = scaled.matmul(&matrices[i - 1]).scale(2.0);
            matrices.push(&two_lt - &matrices[i - 2]);
        }
        Self { matrices }
    }

    /// Number of polynomials `K`.
    pub fn order(&self) -> usize {
        self.matrices.len()
    }

    /// Node count of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.matrices[0].rows()
    }

    /// The polynomial matrices `[T_0(L̃), …, T_{K−1}(L̃)]`.
    pub fn matrices(&self) -> &[Matrix] {
        &self.matrices
    }
}

/// A `K`-order Chebyshev graph convolution.
///
/// # Examples
///
/// ```
/// use st_nn::{Activation, ChebGcn, ParamStore, Session};
/// use st_graph::{gaussian_adjacency, scaled_laplacian_from_adjacency, RoadNetwork};
/// use st_tensor::{rng, Matrix};
///
/// let net = RoadNetwork::corridor(5, 1.0);
/// let adj = gaussian_adjacency(&net.distance_matrix(), None, 0.1);
/// let laplacian = scaled_laplacian_from_adjacency(&adj);
///
/// let mut store = ParamStore::new();
/// let gcn = ChebGcn::new(&mut store, &mut rng(0), 2, 8, 3, Activation::Relu, "gcn");
/// let mut sess = Session::new(&store);
/// let x = sess.constant(Matrix::ones(5, 2));
/// let y = gcn.forward(&mut sess, &store, &laplacian, x);
/// assert_eq!(sess.tape.value(y).shape(), (5, 8));
/// ```
#[derive(Debug, Clone)]
pub struct ChebGcn {
    weights: Vec<ParamId>, // K matrices, each in_dim × out_dim
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
    k: usize,
    activation: Activation,
}

impl ChebGcn {
    /// Creates a layer of Chebyshev order `k` (the paper uses `K = 3`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StRng,
        in_dim: usize,
        out_dim: usize,
        k: usize,
        activation: Activation,
        name: &str,
    ) -> Self {
        assert!(k >= 1, "chebyshev order must be at least 1");
        let weights = (0..k)
            .map(|i| store.add(format!("{name}.w{i}"), xavier_matrix(rng, in_dim, out_dim)))
            .collect();
        let bias = store.add(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Self {
            weights,
            bias,
            in_dim,
            out_dim,
            k,
            activation,
        }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Chebyshev order `K`.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Applies the convolution over the graph described by `scaled`
    /// (the scaled Laplacian `L̃`, an `N × N` constant).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn forward(&self, sess: &mut Session, store: &ParamStore, scaled: &Matrix, x: Var) -> Var {
        let n = scaled.rows();
        assert_eq!(scaled.cols(), n, "scaled laplacian must be square");
        assert_eq!(
            sess.tape.value(x).rows(),
            n,
            "feature rows must match node count"
        );
        assert_eq!(
            sess.tape.value(x).cols(),
            self.in_dim,
            "gcn expects width {}",
            self.in_dim
        );

        let l = sess.constant_ref(scaled);
        // Chebyshev recurrence on the tape: T_0 x = x, T_1 x = L̃x,
        // T_k x = 2·L̃·T_{k−1}x − T_{k−2}x.
        let mut terms: Vec<Var> = Vec::with_capacity(self.k);
        terms.push(x);
        if self.k >= 2 {
            let t1 = sess.tape.matmul(l, x);
            terms.push(t1);
        }
        for i in 2..self.k {
            let lt = sess.tape.matmul(l, terms[i - 1]);
            let two_lt = sess.tape.scale(lt, 2.0);
            let tk = sess.tape.sub(two_lt, terms[i - 2]);
            terms.push(tk);
        }

        let mut acc: Option<Var> = None;
        for (term, &wid) in terms.iter().zip(&self.weights) {
            let w = sess.var(store, wid);
            let contribution = sess.tape.matmul(*term, w);
            acc = Some(match acc {
                Some(a) => sess.tape.add(a, contribution),
                None => contribution,
            });
        }
        let b = sess.var(store, self.bias);
        let pre = acc.expect("k >= 1 guarantees at least one term");
        let pre = sess.tape.add_bias(pre, b);
        match self.activation {
            Activation::Relu => sess.tape.relu(pre),
            Activation::Tanh => sess.tape.tanh(pre),
            Activation::Identity => pre,
        }
    }

    /// Like [`ChebGcn::forward`] but with the polynomials `T_k(L̃)`
    /// precomputed in a [`ChebBasis`]: each term is a single constant
    /// matmul `T_k(L̃) · x` instead of a tape-level recurrence (`T_0 = I`
    /// skips the matmul entirely).
    ///
    /// Numerically this re-associates the recurrence — results agree with
    /// [`ChebGcn::forward`] to round-off (exactly for `K ≤ 2`).
    ///
    /// # Panics
    ///
    /// Panics if the basis order is below `K` or shapes are inconsistent.
    pub fn forward_with_basis(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        basis: &ChebBasis,
        x: Var,
    ) -> Var {
        assert!(
            basis.order() >= self.k,
            "basis order {} below layer order {}",
            basis.order(),
            self.k
        );
        let n = basis.num_nodes();
        assert_eq!(
            sess.tape.value(x).rows(),
            n,
            "feature rows must match node count"
        );
        assert_eq!(
            sess.tape.value(x).cols(),
            self.in_dim,
            "gcn expects width {}",
            self.in_dim
        );

        let mut acc: Option<Var> = None;
        for (order, &wid) in self.weights.iter().enumerate() {
            let term = if order == 0 {
                x
            } else {
                let t = sess.constant_ref(&basis.matrices()[order]);
                sess.tape.matmul(t, x)
            };
            let w = sess.var(store, wid);
            let contribution = sess.tape.matmul(term, w);
            acc = Some(match acc {
                Some(a) => sess.tape.add(a, contribution),
                None => contribution,
            });
        }
        let b = sess.var(store, self.bias);
        let pre = acc.expect("k >= 1 guarantees at least one term");
        let pre = sess.tape.add_bias(pre, b);
        match self.activation {
            Activation::Relu => sess.tape.relu(pre),
            Activation::Tanh => sess.tape.tanh(pre),
            Activation::Identity => pre,
        }
    }

    /// [`ChebGcn::forward_with_basis`] over a batch of `blocks` windows.
    ///
    /// `x_stacked` is the row-stacked `(B·N) × in_dim` batch and `x_wide`
    /// its wide `N × (B·in_dim)` permutation (shared by every branch of an
    /// [`crate::HgcnBlock`], so the caller computes it once via
    /// `sess.tape.to_wide`). Each basis term runs as ONE packed-panel
    /// matmul `T_k(L̃) · x_wide` over all windows, then permutes back to
    /// the stacked layout; the weight products, bias and activation are
    /// row-local on the stack. Block `b` of the output is bit-identical to
    /// `forward_with_basis` on window `b` alone: matmul accumulates per
    /// output element in ascending `k` independent of the operand width,
    /// and the layout permutations are exact f64 moves.
    ///
    /// # Panics
    ///
    /// Panics if the basis order is below `K` or shapes are inconsistent.
    pub fn forward_with_basis_batched(
        &self,
        sess: &mut Session,
        store: &ParamStore,
        basis: &ChebBasis,
        x_stacked: Var,
        x_wide: Var,
        blocks: usize,
    ) -> Var {
        assert!(
            basis.order() >= self.k,
            "basis order {} below layer order {}",
            basis.order(),
            self.k
        );
        let n = basis.num_nodes();
        assert_eq!(
            sess.tape.value(x_stacked).shape(),
            (blocks * n, self.in_dim),
            "stacked batch must be (B·N) × in_dim"
        );
        assert_eq!(
            sess.tape.value(x_wide).shape(),
            (n, blocks * self.in_dim),
            "wide batch must be N × (B·in_dim)"
        );

        let mut acc: Option<Var> = None;
        for (order, &wid) in self.weights.iter().enumerate() {
            let term = if order == 0 {
                x_stacked
            } else {
                let t = sess.constant_ref(&basis.matrices()[order]);
                let propagated = sess.tape.matmul(t, x_wide);
                sess.tape.to_stacked(propagated, blocks)
            };
            let w = sess.var(store, wid);
            let contribution = sess.tape.matmul(term, w);
            acc = Some(match acc {
                Some(a) => sess.tape.add(a, contribution),
                None => contribution,
            });
        }
        let b = sess.var(store, self.bias);
        let pre = acc.expect("k >= 1 guarantees at least one term");
        let pre = sess.tape.add_bias(pre, b);
        match self.activation {
            Activation::Relu => sess.tape.relu(pre),
            Activation::Tanh => sess.tape.tanh(pre),
            Activation::Identity => pre,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_autodiff::check_gradient;
    use st_graph::{gaussian_adjacency, scaled_laplacian_from_adjacency, RoadNetwork};
    use st_tensor::rng;

    fn laplacian(n: usize) -> Matrix {
        let net = RoadNetwork::corridor(n, 1.0);
        let adj = gaussian_adjacency(&net.distance_matrix(), None, 0.1);
        scaled_laplacian_from_adjacency(&adj)
    }

    #[test]
    fn forward_shape_and_finite() {
        let mut store = ParamStore::new();
        let gcn = ChebGcn::new(&mut store, &mut rng(1), 3, 5, 3, Activation::Relu, "g");
        let mut sess = Session::new(&store);
        let x = sess.constant(Matrix::ones(4, 3));
        let y = gcn.forward(&mut sess, &store, &laplacian(4), x);
        assert_eq!(sess.tape.value(y).shape(), (4, 5));
        assert!(sess.tape.value(y).is_finite());
    }

    #[test]
    fn information_propagates_to_neighbours() {
        // With K ≥ 2, a spike on node 0 must influence node 1's output.
        let mut store = ParamStore::new();
        let gcn = ChebGcn::new(&mut store, &mut rng(2), 1, 1, 3, Activation::Identity, "g");
        let l = laplacian(4);
        let run = |x0: f64, store: &ParamStore| -> Matrix {
            let mut sess = Session::new(store);
            let mut xm = Matrix::zeros(4, 1);
            xm[(0, 0)] = x0;
            let x = sess.constant(xm);
            let y = gcn.forward(&mut sess, store, &l, x);
            sess.tape.value(y).clone()
        };
        let base = run(0.0, &store);
        let spiked = run(5.0, &store);
        assert!(
            (spiked[(1, 0)] - base[(1, 0)]).abs() > 1e-9,
            "spike on node 0 must reach node 1"
        );
    }

    #[test]
    fn order_one_ignores_graph() {
        // K = 1 uses only T_0 = I: output must not depend on the Laplacian.
        let mut store = ParamStore::new();
        let gcn = ChebGcn::new(&mut store, &mut rng(3), 2, 2, 1, Activation::Identity, "g");
        let x0 = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[0.0, -1.0]]);
        let mut sess = Session::new(&store);
        let x = sess.constant(x0.clone());
        let y1 = gcn.forward(&mut sess, &store, &laplacian(3), x);
        let v1 = sess.tape.value(y1).clone();
        let mut sess2 = Session::new(&store);
        let x = sess2.constant(x0);
        let y2 = gcn.forward(&mut sess2, &store, &Matrix::identity(3), x);
        assert!(v1.max_abs_diff(sess2.tape.value(y2)) < 1e-12);
    }

    #[test]
    fn weight_gradients_check() {
        let mut store = ParamStore::new();
        let gcn = ChebGcn::new(&mut store, &mut rng(4), 2, 3, 3, Activation::Tanh, "g");
        let l = laplacian(4);
        let x0 = Matrix::from_fn(4, 2, |r, c| (r as f64 * 0.4 - c as f64 * 0.7).sin());
        let run = |store: &ParamStore| -> (f64, Matrix) {
            let mut sess = Session::new(store);
            let x = sess.constant(x0.clone());
            let y = gcn.forward(&mut sess, store, &l, x);
            let sq = sess.tape.mul(y, y);
            let loss = sess.tape.mean(sq);
            sess.backward(loss);
            let mut tmp = store.clone();
            tmp.zero_grads();
            sess.write_grads(&mut tmp);
            (
                sess.tape.value(loss)[(0, 0)],
                tmp.grad(gcn.weights[2]).clone(),
            )
        };
        let (_, g2) = run(&store);
        let res = check_gradient(store.value(gcn.weights[2]), &g2, 1e-6, |m| {
            let mut s2 = store.clone();
            s2.set_value(gcn.weights[2], m.clone());
            run(&s2).0
        });
        assert!(res.passes(1e-5), "order-2 weight grad failed: {res:?}");
    }

    #[test]
    fn basis_matches_recurrence() {
        // T_k(L̃)·x from the precomputed basis must agree with the
        // tape-level recurrence (exactly for K ≤ 2, to round-off above).
        let l = laplacian(5);
        let x0 = Matrix::from_fn(5, 2, |r, c| (r as f64 - c as f64 * 0.3).cos());
        for k in 1..=4 {
            let mut store = ParamStore::new();
            let gcn = ChebGcn::new(&mut store, &mut rng(7), 2, 3, k, Activation::Tanh, "g");
            let basis = ChebBasis::new(&l, k);
            assert_eq!(basis.order(), k);

            let mut sess = Session::new(&store);
            let x = sess.constant(x0.clone());
            let y = gcn.forward(&mut sess, &store, &l, x);
            let recurrence = sess.tape.value(y).clone();

            let mut sess2 = Session::new(&store);
            let x = sess2.constant(x0.clone());
            let y2 = gcn.forward_with_basis(&mut sess2, &store, &basis, x);
            let direct = sess2.tape.value(y2).clone();

            let diff = recurrence.max_abs_diff(&direct);
            assert!(diff < 1e-10, "K={k} diverged by {diff}");
        }
    }

    #[test]
    fn basis_forward_routes_gradients() {
        let mut store = ParamStore::new();
        let gcn = ChebGcn::new(&mut store, &mut rng(8), 2, 3, 3, Activation::Tanh, "g");
        let basis = ChebBasis::new(&laplacian(4), 3);
        let mut sess = Session::new(&store);
        let x = sess.constant(Matrix::from_fn(4, 2, |r, c| 0.3 * (r + c) as f64));
        let y = gcn.forward_with_basis(&mut sess, &store, &basis, x);
        let loss = sess.tape.mean(y);
        sess.backward(loss);
        sess.write_grads(&mut store);
        for (i, &w) in gcn.weights.iter().enumerate() {
            assert!(store.grad(w).max_abs() > 0.0, "weight {i} got no gradient");
        }
    }

    #[test]
    fn parameter_count() {
        let mut store = ParamStore::new();
        let _ = ChebGcn::new(&mut store, &mut rng(5), 4, 8, 3, Activation::Relu, "g");
        // 3 weight matrices of 4×8 plus a 1×8 bias.
        assert_eq!(store.num_scalars(), 3 * 32 + 8);
    }
}
