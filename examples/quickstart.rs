//! Quickstart: generate a PeMS-like dataset, hide 40% of the observations,
//! train RIHGCN, and compare its forecast and imputation quality against the
//! Historical Average baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rihgcn::baselines::HistoricalAverage;
use rihgcn::core::{
    evaluate_imputation, evaluate_prediction, fit, prepare_split, RihgcnConfig, RihgcnModel,
    TrainConfig,
};
use rihgcn::data::{generate_pems, PemsConfig, WindowSampler};
use rihgcn::tensor::rng;

fn main() {
    // 1. A synthetic PeMS-like corridor: 8 sensors, 8 days, 5-minute speeds.
    let ds = generate_pems(&PemsConfig {
        num_nodes: 8,
        num_days: 8,
        ..Default::default()
    });
    // Hide 40% of the observations completely at random (Table-I protocol).
    let ds = ds.with_extra_missing(0.4, &mut rng(7));
    println!(
        "dataset: {} nodes × {} features × {} timestamps, {:.0}% missing",
        ds.num_nodes(),
        ds.num_features(),
        ds.num_times(),
        ds.missing_rate() * 100.0
    );

    // 2. Chronological 7:2:1 split, Z-score normalised on observed training
    //    entries; 1-hour history → 1-hour horizon windows.
    let (norm, z) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(12, 12, 6);
    let train = sampler.sample(&norm.train);
    let val = sampler.sample(&norm.val);
    let test = sampler.sample(&norm.test);
    println!(
        "windows: {} train / {} val / {} test",
        train.len(),
        val.len(),
        test.len()
    );

    // 3. Build and train RIHGCN (small CPU-friendly sizes).
    let cfg = RihgcnConfig {
        gcn_dim: 8,
        lstm_dim: 16,
        num_temporal_graphs: 4,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&norm.train, cfg);
    println!(
        "model: {} parameters, {} temporal graphs",
        model.num_parameters(),
        model.intervals().len()
    );
    let tc = TrainConfig {
        max_epochs: 10,
        patience: 3,
        verbose: true,
        ..Default::default()
    };
    let report = fit(&mut model, &train, &val, &tc);
    println!(
        "trained for {} epochs (best validation loss {:.4} at epoch {})",
        report.epochs(),
        report.best_val_loss,
        report.best_epoch
    );

    // 4. Evaluate against Historical Average on the held-out test period.
    let rihgcn_pred = evaluate_prediction(&model, &test, &z);
    let rihgcn_imp = evaluate_imputation(&model, &test, &z);
    let ha = HistoricalAverage::fit(&norm.train, 12);
    let ha_pred = evaluate_prediction(&ha, &test, &z);

    println!("\n60-minute forecast (test, mph):");
    println!("  HA      {ha_pred}");
    println!("  RIHGCN  {rihgcn_pred}");
    println!("imputation of hidden history entries (test, mph):");
    println!("  RIHGCN  {rihgcn_imp}");
}
