//! Circular-partitioning extension (the paper's stated future work):
//! compares the Eq. 2 objective achieved by midnight-anchored partitioning
//! vs the circular variant that also optimises the rotation of the day.

use rihgcn_bench::{pems_at, Scale};
use st_data::DayProfiles;
use st_graph::{partition_day, partition_day_circular, IntervalConfig};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Circular partitioning — PeMS historical profiles, scale `{}`",
        scale.name
    );
    let ds = pems_at(&scale, 0.0, 1000);
    let profiles = DayProfiles::from_dataset(&ds);

    println!(
        "\n{:>3} | {:>12} {:>12} | {:>8} | intervals (fixed)",
        "M", "fixed score", "circ score", "offset"
    );
    println!("{}", "-".repeat(90));
    for m in [2usize, 3, 4, 6, 8] {
        let cfg = IntervalConfig::paper_defaults(m);
        let fixed = partition_day(profiles.profiles(), &cfg);
        let circular = partition_day_circular(profiles.profiles(), &cfg);
        let boundaries: Vec<String> = fixed
            .intervals
            .iter()
            .map(|iv| format!("{}:{:02}", iv.start / 12, (iv.start % 12) * 5))
            .collect();
        println!(
            "{m:>3} | {:>12.4} {:>12.4} | {:>8} | [{}]",
            fixed.score,
            circular.partition.score,
            format!("{}:{:02}", circular.offset / 12, (circular.offset % 12) * 5),
            boundaries.join(", ")
        );
        assert!(
            circular.partition.score >= fixed.score - 1e-9,
            "circular search must never lose to the fixed anchor"
        );
    }
    println!("\nThe circular variant always matches or improves the Eq. 2 objective,");
    println!("confirming the paper's conjecture that midnight anchoring is suboptimal.");
}
