//! Self-contained seeded pseudo-random number generator.
//!
//! The workspace builds hermetically with zero registry dependencies, so the
//! deterministic random stream every experiment relies on is generated
//! in-tree: a [xoshiro256++][xo] core seeded through [SplitMix64][sm], the
//! combination recommended by the xoshiro authors. The generator is *not*
//! cryptographic — it exists to make parameter initialisation, synthetic
//! data, masking and shuffling exactly reproducible from a `u64` seed.
//!
//! [xo]: https://prng.di.unimi.it/xoshiro256plusplus.c
//! [sm]: https://prng.di.unimi.it/splitmix64.c

use std::ops::Range;

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// Construct with [`StRng::seed_from_u64`] or the [`crate::rng`] shorthand.
/// Identical seeds yield identical streams on every platform: the
/// implementation uses only wrapping integer arithmetic and IEEE-754
/// double conversion, both of which are fully specified.
///
/// # Examples
///
/// ```
/// use st_tensor::StRng;
///
/// let mut a = StRng::seed_from_u64(42);
/// let mut b = StRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!((0.0..1.0).contains(&a.gen_f64()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StRng {
    s: [u64; 4],
}

/// One step of the SplitMix64 sequence, used to expand a `u64` seed into
/// the 256-bit xoshiro state (and to derive independent sub-seeds).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StRng {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64, so that nearby seeds still produce unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Self { s }
    }

    /// Next raw 64-bit output of the xoshiro256++ sequence.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a half-open range; accepts `f64`, `usize` and
    /// `u64` ranges.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Sample {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Unbiased uniform draw from `[0, span)` by rejection sampling.
    fn uniform_below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // 2^64 mod span: values above the largest multiple of `span` are
        // rejected so the modulo below introduces no bias.
        let rem = (u64::MAX % span).wrapping_add(1) % span;
        loop {
            let v = self.next_u64();
            if rem == 0 || v <= u64::MAX - rem {
                return v % span;
            }
        }
    }
}

/// Half-open ranges [`StRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Sample;

    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut StRng) -> Self::Sample;
}

impl SampleRange for Range<f64> {
    type Sample = f64;

    fn sample(self, rng: &mut StRng) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange for Range<usize> {
    type Sample = usize;

    fn sample(self, rng: &mut StRng) -> usize {
        assert!(self.start < self.end, "empty usize sample range");
        self.start + rng.uniform_below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<u64> {
    type Sample = u64;

    fn sample(self, rng: &mut StRng) -> u64 {
        assert!(self.start < self.end, "empty u64 sample range");
        self.start + rng.uniform_below(self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_xoshiro_reference_vector() {
        // State {1, 2, 3, 4}: first outputs of the reference C
        // xoshiro256++ implementation.
        let mut r = StRng { s: [1, 2, 3, 4] };
        assert_eq!(r.next_u64(), 41943041);
        assert_eq!(r.next_u64(), 58720359);
        assert_eq!(r.next_u64(), 3588806011781223);
        assert_eq!(r.next_u64(), 3591011842654386);
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of the reference C splitmix64 for seed 0.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StRng::seed_from_u64(123);
        let mut b = StRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = StRng::seed_from_u64(1);
        let mut b = StRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_usize_covers_all_values() {
        let mut r = StRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_respects_offset_bounds() {
        let mut r = StRng::seed_from_u64(11);
        for _ in 0..200 {
            let v = r.gen_range(3..12usize);
            assert!((3..12).contains(&v));
            let f = r.gen_range(-2.0..-1.0);
            assert!((-2.0..-1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty usize sample range")]
    fn empty_range_panics() {
        let _ = StRng::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate was {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StRng::seed_from_u64(17);
        let mut v: Vec<usize> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    fn shuffle_handles_trivial_slices() {
        let mut r = StRng::seed_from_u64(19);
        let mut empty: [u8; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [42];
        r.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut r = StRng::seed_from_u64(23);
        let mut counts = [0usize; 7];
        for _ in 0..7000 {
            counts[r.uniform_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
