//! Engine shards: each shard is one thread owning the [`OnlineForecaster`]s
//! of every tenant routed to it.
//!
//! A shard generalizes the single-model engine of earlier revisions. All
//! worker threads funnel work through one bounded channel per shard; the
//! shard thread applies observations in arrival order and serves forecasts.
//! Because a tenant's rolling window only changes on its own `/observe`,
//! every forecast at the same **window version** is identical — each tenant
//! entry keeps the last computed forecast (and imputed window) per version
//! and serves repeats from that cache instead of re-running the autodiff
//! tape. Worker requests that race between two observations coalesce onto
//! one tape run, exactly as before; tenants never share state, so the
//! bit-identical determinism contract holds per tenant regardless of what
//! its shard neighbours do.
//!
//! # Batched draining
//!
//! Instead of answering one request per `recv`, the shard thread drains
//! whatever else is already queued (`try_recv`) before blocking again.
//! Observations, health probes, imputations and lifecycle requests are
//! still applied inline at their dequeue position, but forecast misses are
//! *deferred*: the tenant's window is frozen into a [`WindowSnapshot`]
//! (so later observations in the same drain can't move it) and parked in a
//! per-tenant pending batch. When the queue runs dry — or a tenant
//! accumulates `max_batch` distinct window versions — the shard answers
//! every parked forecast of that tenant from **one** batched tape run
//! ([`OnlineForecaster::forecast_batch`]), which is bit-identical to
//! running them sequentially (see `tests/batched_equivalence.rs`).
//! Forecasts for the *same* version coalesce onto one batch member, and
//! the per-version cache still answers repeats without any run at all.
//!
//! Model lifecycle ([`ShardRequest::Load`] / [`ShardRequest::Unload`]) flows
//! through the same FIFO channel as inference, which gives the registry a
//! simple ordering guarantee: a request enqueued after a `Load` observes the
//! loaded model. To keep the complementary guarantee — a forecast enqueued
//! *before* a `Load`/`Unload` observes the old model — the shard flushes the
//! tenant's pending batch before swapping or dropping its forecaster.

use crate::metrics::Metrics;
use rihgcn_core::{OnlineForecaster, WindowSnapshot};
use st_tensor::Matrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Immutable facts about a served model, captured before the forecaster
/// moves into its shard thread.
#[derive(Debug, Clone, Copy)]
pub struct ModelInfo {
    /// Graph nodes `N`.
    pub nodes: usize,
    /// Features per node `F`.
    pub features: usize,
    /// History window length `T`.
    pub history: usize,
    /// Forecast horizon `T'`.
    pub horizon: usize,
    /// Time-of-day slots per day.
    pub slots_per_day: usize,
}

impl ModelInfo {
    /// Reads the static facts off a forecaster.
    pub fn of(online: &OnlineForecaster) -> Self {
        Self {
            nodes: online.model().num_nodes(),
            features: online.model().num_features(),
            history: online.history(),
            horizon: online.horizon(),
            slots_per_day: online.model().slots_per_day(),
        }
    }
}

/// Engine-side failure modes, mapped to HTTP statuses by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The rolling window is not full yet (maps to 409).
    NotReady {
        /// Observations currently buffered.
        buffered: usize,
        /// Window length required.
        needed: usize,
    },
    /// The observation was rejected by validation (maps to 400).
    Rejected(String),
    /// No model is loaded for the tenant (maps to 404).
    UnknownTenant(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NotReady { buffered, needed } => {
                write!(f, "window not full yet ({buffered}/{needed} observations)")
            }
            EngineError::Rejected(msg) => write!(f, "observation rejected: {msg}"),
            EngineError::UnknownTenant(tenant) => write!(f, "unknown tenant: {tenant}"),
        }
    }
}

/// Acknowledgement of an applied observation.
#[derive(Debug, Clone, Copy)]
pub struct ObserveAck {
    /// Window version after the push.
    pub version: u64,
    /// Observations buffered after the push.
    pub buffered: usize,
    /// Whether a full window is now available.
    pub ready: bool,
}

/// A forecast (or imputed window) tied to the window version it was
/// computed at. The steps are shared, not cloned, across coalesced readers.
#[derive(Debug, Clone)]
pub struct StepsReply {
    /// Window version the steps were computed at.
    pub version: u64,
    /// Per-step `N × F` matrices in original units.
    pub steps: Arc<Vec<Matrix>>,
}

/// Live window state for `/healthz`.
#[derive(Debug, Clone, Copy)]
pub struct WindowState {
    /// Observations currently buffered.
    pub buffered: usize,
    /// Whether a full window is available.
    pub ready: bool,
    /// Current window version.
    pub version: u64,
}

/// Health snapshot for one tenant: static model facts plus live window
/// state and the model version (bumped by every hot reload).
#[derive(Debug, Clone, Copy)]
pub struct TenantHealth {
    /// Static model facts.
    pub info: ModelInfo,
    /// Live window state.
    pub state: WindowState,
    /// Model (checkpoint) version: 1 on first load, +1 per hot reload.
    pub model_version: u64,
}

/// Live per-tenant counters, shared between the shard thread (which bumps
/// them) and the registry directory (which renders them into `/metrics`).
#[derive(Debug, Default)]
pub struct TenantCounters {
    requests: AtomicU64,
    observations: AtomicU64,
    tape_runs: AtomicU64,
    cache_hits: AtomicU64,
    model_version: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
}

impl TenantCounters {
    /// Counters for a freshly loaded model (`model_version` starts at 1).
    pub fn new() -> Self {
        let c = Self::default();
        c.model_version.store(1, Ordering::Relaxed);
        c
    }

    /// Engine requests handled for this tenant.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Observations applied to this tenant's window.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// Model evaluations run for this tenant (cache misses).
    pub fn tape_runs(&self) -> u64 {
        self.tape_runs.load(Ordering::Relaxed)
    }

    /// Requests served from this tenant's window-version cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Model (checkpoint) version: 1 on first load, +1 per hot reload.
    pub fn model_version(&self) -> u64 {
        self.model_version.load(Ordering::Relaxed)
    }

    /// Bumps the model version; returns the new value. Called by the
    /// registry when a hot reload replaces this tenant's checkpoint.
    pub(crate) fn bump_model_version(&self) -> u64 {
        self.model_version.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Buffer-pool hit rate of this tenant's inference tape, in `[0, 1]`
    /// (0 when the tape has not run yet).
    pub fn pool_hit_rate(&self) -> f64 {
        let hits = self.pool_hits.load(Ordering::Relaxed);
        let misses = self.pool_misses.load(Ordering::Relaxed);
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// One unit of work for a shard thread.
pub enum ShardRequest {
    /// Push an observation into a tenant's rolling window.
    Observe {
        /// Tenant whose window receives the observation.
        tenant: Arc<str>,
        /// `N × F` measurements in original units.
        values: Matrix,
        /// `N × F` binary mask.
        mask: Matrix,
        /// Time-of-day slot.
        slot: usize,
        /// Reply channel.
        reply: Sender<Result<ObserveAck, EngineError>>,
    },
    /// Multi-horizon forecast in original units.
    Forecast {
        /// Tenant to forecast for.
        tenant: Arc<str>,
        /// Reply channel.
        reply: Sender<Result<StepsReply, EngineError>>,
    },
    /// Imputed history window in original units.
    Imputed {
        /// Tenant whose window to impute.
        tenant: Arc<str>,
        /// Reply channel.
        reply: Sender<Result<StepsReply, EngineError>>,
    },
    /// Model facts + window state snapshot.
    Health {
        /// Tenant to report on.
        tenant: Arc<str>,
        /// Reply channel.
        reply: Sender<Result<TenantHealth, EngineError>>,
    },
    /// Install (or hot-swap) a tenant's forecaster. Replaces any previous
    /// model for the tenant; the rolling window starts empty.
    Load {
        /// Tenant to (re)load.
        tenant: Arc<str>,
        /// The forecaster, boxed to keep the request small.
        online: Box<OnlineForecaster>,
        /// Counters shared with the registry directory.
        counters: Arc<TenantCounters>,
        /// Acknowledged once the swap is visible to later requests.
        reply: Sender<ModelInfo>,
    },
    /// Drop a tenant's forecaster (explicit unload or LRU eviction).
    Unload {
        /// Tenant to drop.
        tenant: Arc<str>,
        /// Acknowledged with `true` if a model was present.
        reply: Sender<bool>,
    },
}

/// How long a worker waits for a shard before reporting a 500.
pub const ENGINE_REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Single-slot cache: the last value computed, tagged with its version.
struct VersionCache {
    version: u64,
    value: Arc<Vec<Matrix>>,
}

/// Everything a shard owns for one tenant.
struct TenantEntry {
    online: OnlineForecaster,
    counters: Arc<TenantCounters>,
    info: ModelInfo,
    forecast_cache: Option<VersionCache>,
    imputed_cache: Option<VersionCache>,
}

/// Forecast readers parked for one window version: a single batch member
/// whose result fans out to every coalesced reply channel.
struct PendingGroup {
    snapshot: WindowSnapshot,
    replies: Vec<Sender<Result<StepsReply, EngineError>>>,
}

/// All forecasts parked for one tenant during the current drain, one group
/// per distinct window version (groups are appended as the window advances,
/// so versions are strictly increasing).
struct PendingBatch {
    tenant: Arc<str>,
    groups: Vec<PendingGroup>,
}

struct Shard {
    index: usize,
    metrics: Arc<Metrics>,
    tenants: HashMap<Arc<str>, TenantEntry>,
    pending: Vec<PendingBatch>,
    max_batch: usize,
}

impl Shard {
    /// Whether any tenant has parked forecasts awaiting a batched run.
    fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    fn entry(&mut self, tenant: &Arc<str>) -> Result<&mut TenantEntry, EngineError> {
        self.tenants
            .get_mut(tenant)
            .ok_or_else(|| EngineError::UnknownTenant(tenant.to_string()))
    }

    fn handle(&mut self, req: ShardRequest) {
        self.metrics.queue_exit(self.index);
        match req {
            ShardRequest::Observe {
                tenant,
                values,
                mask,
                slot,
                reply,
            } => {
                let _span = st_obs::span!("serve.observe", slot);
                let result = self.entry(&tenant).and_then(|entry| {
                    entry.counters.requests.fetch_add(1, Ordering::Relaxed);
                    entry
                        .online
                        .try_push(values, mask, slot)
                        .map(|()| {
                            entry.counters.observations.fetch_add(1, Ordering::Relaxed);
                            ObserveAck {
                                version: entry.online.window_version(),
                                buffered: entry.online.len(),
                                ready: entry.online.ready(),
                            }
                        })
                        .map_err(|e| EngineError::Rejected(e.to_string()))
                });
                let _ = reply.send(result);
            }
            ShardRequest::Forecast { tenant, reply } => {
                let _span = st_obs::span!("serve.forecast");
                self.admit_forecast(tenant, reply);
            }
            ShardRequest::Imputed { tenant, reply } => {
                let _span = st_obs::span!("serve.imputed");
                let metrics = Arc::clone(&self.metrics);
                let index = self.index;
                let result = self
                    .entry(&tenant)
                    .and_then(|entry| Self::imputed_steps(entry, &metrics, index));
                let _ = reply.send(result);
            }
            ShardRequest::Health { tenant, reply } => {
                let _span = st_obs::span!("serve.health");
                let result = self.entry(&tenant).map(|entry| {
                    entry.counters.requests.fetch_add(1, Ordering::Relaxed);
                    TenantHealth {
                        info: entry.info,
                        state: WindowState {
                            buffered: entry.online.len(),
                            ready: entry.online.ready(),
                            version: entry.online.window_version(),
                        },
                        model_version: entry.counters.model_version(),
                    }
                });
                let _ = reply.send(result);
            }
            ShardRequest::Load {
                tenant,
                online,
                counters,
                reply,
            } => {
                let _span = st_obs::span!("serve.load");
                // Forecasts parked before this Load must see the old model.
                self.flush_tenant(&tenant);
                let info = ModelInfo::of(&online);
                self.tenants.insert(
                    tenant,
                    TenantEntry {
                        online: *online,
                        counters,
                        info,
                        forecast_cache: None,
                        imputed_cache: None,
                    },
                );
                let _ = reply.send(info);
            }
            ShardRequest::Unload { tenant, reply } => {
                let _span = st_obs::span!("serve.unload");
                self.flush_tenant(&tenant);
                let _ = reply.send(self.tenants.remove(&tenant).is_some());
            }
        }
    }

    /// Answers (or parks) one forecast request. The fast paths reply
    /// immediately: unknown tenant, per-version cache hit, window not
    /// ready. A miss freezes the window into a snapshot and joins the
    /// tenant's pending batch — coalescing with any parked group of the
    /// same version — which [`Shard::run_batch`] later answers in one
    /// batched tape run. A tenant whose batch reaches `max_batch` distinct
    /// versions is flushed immediately so drains can't defer it forever.
    fn admit_forecast(&mut self, tenant: Arc<str>, reply: Sender<Result<StepsReply, EngineError>>) {
        let Some(entry) = self.tenants.get_mut(&tenant) else {
            let _ = reply.send(Err(EngineError::UnknownTenant(tenant.to_string())));
            return;
        };
        entry.counters.requests.fetch_add(1, Ordering::Relaxed);
        let version = entry.online.window_version();
        if let Some(c) = &entry.forecast_cache {
            if c.version == version {
                self.metrics.cache_hit();
                entry.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Ok(StepsReply {
                    version,
                    steps: Arc::clone(&c.value),
                }));
                return;
            }
        }
        let batch_index = match self.pending.iter().position(|b| b.tenant == tenant) {
            Some(i) => i,
            None => {
                self.pending.push(PendingBatch {
                    tenant: Arc::clone(&tenant),
                    groups: Vec::new(),
                });
                self.pending.len() - 1
            }
        };
        let batch = &mut self.pending[batch_index];
        if let Some(group) = batch
            .groups
            .iter_mut()
            .find(|g| g.snapshot.version() == version)
        {
            // Same window version as a parked member: coalesce. The reader
            // shares the batch member's result, so like a cache hit it
            // costs no tape run of its own.
            self.metrics.cache_hit();
            entry.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            group.replies.push(reply);
            return;
        }
        match entry.online.snapshot() {
            None => {
                let buffered = entry.online.len();
                let needed = entry.online.history();
                let _ = reply.send(Err(EngineError::NotReady { buffered, needed }));
                if batch.groups.is_empty() {
                    self.pending.swap_remove(batch_index);
                }
            }
            Some(snapshot) => {
                batch.groups.push(PendingGroup {
                    snapshot,
                    replies: vec![reply],
                });
                if batch.groups.len() >= self.max_batch {
                    let full = self.pending.swap_remove(batch_index);
                    self.run_batch(full);
                }
            }
        }
    }

    /// Flushes the pending batch (if any) of one tenant.
    fn flush_tenant(&mut self, tenant: &Arc<str>) {
        if let Some(i) = self.pending.iter().position(|b| &b.tenant == tenant) {
            let batch = self.pending.swap_remove(i);
            self.run_batch(batch);
        }
    }

    /// Flushes every pending batch. Called when the queue runs dry so no
    /// parked forecast ever waits on future traffic.
    fn flush_all(&mut self) {
        for batch in std::mem::take(&mut self.pending) {
            self.run_batch(batch);
        }
    }

    /// Answers every parked forecast of one tenant from a single batched
    /// tape run, fans results out to all coalesced readers, refreshes the
    /// per-version cache with the newest member and records the batch size.
    fn run_batch(&mut self, batch: PendingBatch) {
        let Some(entry) = self.tenants.get_mut(&batch.tenant) else {
            for group in batch.groups {
                for reply in group.replies {
                    let _ = reply.send(Err(EngineError::UnknownTenant(batch.tenant.to_string())));
                }
            }
            return;
        };
        let _span = st_obs::span!("serve.forecast_batch");
        let (snapshots, replies): (Vec<WindowSnapshot>, Vec<_>) = batch
            .groups
            .into_iter()
            .map(|g| (g.snapshot, g.replies))
            .unzip();
        let results = entry.online.forecast_batch(&snapshots);
        self.metrics.tape_run(self.index);
        self.metrics.record_batch(snapshots.len() as u64);
        entry.counters.tape_runs.fetch_add(1, Ordering::Relaxed);
        if let (Some(stats), Some(free)) =
            (entry.online.pool_stats(), entry.online.pool_free_bytes())
        {
            entry
                .counters
                .pool_hits
                .store(stats.hits, Ordering::Relaxed);
            entry
                .counters
                .pool_misses
                .store(stats.misses, Ordering::Relaxed);
            self.metrics.set_pool_stats(stats, free as u64);
        }
        for ((snapshot, group_replies), steps) in snapshots.iter().zip(replies).zip(results) {
            let version = snapshot.version();
            let value = Arc::new(steps);
            for reply in group_replies {
                let _ = reply.send(Ok(StepsReply {
                    version,
                    steps: Arc::clone(&value),
                }));
            }
            // Groups arrive in version order, so the cache ends up holding
            // the newest member — exactly what the next request will ask for.
            entry.forecast_cache = Some(VersionCache { version, value });
        }
    }

    /// Serves the imputed window from the tenant's per-version cache when
    /// its window has not advanced, recomputing (one tape run) otherwise.
    /// After a run the tenant's pool statistics are published to both the
    /// shared metrics gauges and the tenant counters. Imputations stay on
    /// the inline path: they are rare next to forecasts and always reflect
    /// the live window at their dequeue position.
    fn imputed_steps(
        entry: &mut TenantEntry,
        metrics: &Metrics,
        shard: usize,
    ) -> Result<StepsReply, EngineError> {
        entry.counters.requests.fetch_add(1, Ordering::Relaxed);
        let version = entry.online.window_version();
        if let Some(c) = &entry.imputed_cache {
            if c.version == version {
                metrics.cache_hit();
                entry.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(StepsReply {
                    version,
                    steps: Arc::clone(&c.value),
                });
            }
        }
        let steps = {
            let buffered = entry.online.len();
            let needed = entry.online.history();
            entry
                .online
                .imputed_window()
                .ok_or(EngineError::NotReady { buffered, needed })?
        };
        metrics.tape_run(shard);
        entry.counters.tape_runs.fetch_add(1, Ordering::Relaxed);
        if let (Some(stats), Some(free)) =
            (entry.online.pool_stats(), entry.online.pool_free_bytes())
        {
            metrics.set_pool_stats(stats, free as u64);
            entry
                .counters
                .pool_hits
                .store(stats.hits, Ordering::Relaxed);
            entry
                .counters
                .pool_misses
                .store(stats.misses, Ordering::Relaxed);
        }
        let value = Arc::new(steps);
        entry.imputed_cache = Some(VersionCache {
            version,
            value: Arc::clone(&value),
        });
        Ok(StepsReply {
            version,
            steps: value,
        })
    }
}

/// Spawns one shard thread. The thread exits once every sender clone is
/// dropped and the queue drains, returning the tenants it still holds
/// (sorted by name) so graceful shutdown can hand the forecasters back.
///
/// The loop blocks on `recv` only when nothing is pending: after the first
/// request it drains everything already queued with `try_recv`, then
/// flushes the forecast batches the drain accumulated. Under light load
/// the drain finds nothing and behaves exactly like the old
/// one-request-at-a-time loop (every batch has size 1); under a saturated
/// queue, up to `max_batch` distinct windows per tenant share one run.
///
/// A non-zero `batch_linger` softens the flush-at-queue-empty rule: when
/// the drain finds the queue empty but holds parked forecasts, it keeps
/// receiving for up to that long (one deadline per drain cycle, so the
/// wait is bounded no matter how steadily requests trickle in) before
/// flushing. That fills batches even when producers and the drain race —
/// e.g. a single submitter on a small host that the drain keeps catching
/// up with — at the cost of up to `batch_linger` added latency for the
/// parked requests. Zero preserves the strict flush-at-empty behaviour.
pub(crate) fn spawn_shard(
    index: usize,
    metrics: Arc<Metrics>,
    queue_depth: usize,
    max_batch: usize,
    batch_linger: Duration,
) -> (
    SyncSender<ShardRequest>,
    JoinHandle<Vec<(String, OnlineForecaster)>>,
) {
    let (tx, rx): (SyncSender<ShardRequest>, Receiver<ShardRequest>) =
        std::sync::mpsc::sync_channel(queue_depth.max(1));
    let handle = std::thread::Builder::new()
        .name(format!("st-serve-shard-{index}"))
        .spawn(move || {
            let mut shard = Shard {
                index,
                metrics,
                tenants: HashMap::new(),
                pending: Vec::new(),
                max_batch: max_batch.max(1),
            };
            while let Ok(req) = rx.recv() {
                shard.handle(req);
                let mut deadline: Option<Instant> = None;
                loop {
                    match rx.try_recv() {
                        Ok(req) => {
                            shard.handle(req);
                            continue;
                        }
                        Err(TryRecvError::Disconnected) => break,
                        Err(TryRecvError::Empty) => {}
                    }
                    if batch_linger.is_zero() || !shard.has_pending() {
                        break;
                    }
                    let due = *deadline.get_or_insert_with(|| Instant::now() + batch_linger);
                    let now = Instant::now();
                    if now >= due {
                        break;
                    }
                    match rx.recv_timeout(due - now) {
                        Ok(req) => shard.handle(req),
                        Err(_) => break,
                    }
                }
                shard.flush_all();
            }
            let mut drained: Vec<(String, OnlineForecaster)> = shard
                .tenants
                .into_iter()
                .map(|(name, entry)| (name.to_string(), entry.online))
                .collect();
            drained.sort_by(|a, b| a.0.cmp(&b.0));
            drained
        })
        .expect("spawn shard thread");
    (tx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rihgcn_core::{prepare_split, RihgcnConfig, RihgcnModel};
    use st_data::{generate_pems, PemsConfig};
    use st_tensor::rng;
    use std::sync::mpsc::channel;

    fn setup() -> (OnlineForecaster, st_data::TrafficDataset) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.3, &mut rng(3));
        let (norm, z) = prepare_split(&ds.split_chronological());
        let cfg = RihgcnConfig {
            gcn_dim: 3,
            lstm_dim: 4,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        let model = RihgcnModel::from_dataset(&norm.train, cfg);
        (OnlineForecaster::new(model, z), ds)
    }

    fn load(tx: &SyncSender<ShardRequest>, metrics: &Metrics, tenant: &Arc<str>) {
        let (online, _) = setup();
        let (reply, ack) = channel();
        metrics.queue_enter(0);
        tx.send(ShardRequest::Load {
            tenant: Arc::clone(tenant),
            online: Box::new(online),
            counters: Arc::new(TenantCounters::new()),
            reply,
        })
        .unwrap();
        ack.recv().unwrap();
    }

    fn observe(
        tx: &SyncSender<ShardRequest>,
        metrics: &Metrics,
        tenant: &Arc<str>,
        ds: &st_data::TrafficDataset,
        t: usize,
    ) -> ObserveAck {
        let (reply, ack) = channel();
        metrics.queue_enter(0);
        tx.send(ShardRequest::Observe {
            tenant: Arc::clone(tenant),
            values: ds.values.time_slice(t),
            mask: ds.mask.time_slice(t),
            slot: t,
            reply,
        })
        .unwrap();
        ack.recv().unwrap().unwrap()
    }

    fn forecast(
        tx: &SyncSender<ShardRequest>,
        metrics: &Metrics,
        tenant: &Arc<str>,
    ) -> Result<StepsReply, EngineError> {
        let (reply, ack) = channel();
        metrics.queue_enter(0);
        tx.send(ShardRequest::Forecast {
            tenant: Arc::clone(tenant),
            reply,
        })
        .unwrap();
        ack.recv().unwrap()
    }

    #[test]
    fn shard_serves_and_coalesces_per_tenant() {
        let (_, ds) = setup();
        let metrics = Arc::new(Metrics::new());
        let (tx, join) = spawn_shard(0, Arc::clone(&metrics), 16, 16, Duration::ZERO);
        let a: Arc<str> = Arc::from("alpha");
        let b: Arc<str> = Arc::from("beta");

        // No model yet → UnknownTenant.
        let err = forecast(&tx, &metrics, &a).unwrap_err();
        assert!(matches!(err, EngineError::UnknownTenant(_)));

        load(&tx, &metrics, &a);
        load(&tx, &metrics, &b);

        // Not ready yet.
        let err = forecast(&tx, &metrics, &a).unwrap_err();
        assert!(matches!(err, EngineError::NotReady { buffered: 0, .. }));

        for t in 0..4 {
            let ack = observe(&tx, &metrics, &a, &ds, t);
            assert_eq!(ack.version, t as u64 + 1);
        }

        let first = forecast(&tx, &metrics, &a).unwrap();
        let second = forecast(&tx, &metrics, &a).unwrap();
        assert_eq!(first.version, second.version);
        assert_eq!(first.steps, second.steps);
        assert_eq!(metrics.total_tape_runs(), 1, "second call cached");
        assert_eq!(metrics.total_cache_hits(), 1);

        // Tenant b is independent: its window is still empty.
        let err = forecast(&tx, &metrics, &b).unwrap_err();
        assert!(matches!(err, EngineError::NotReady { buffered: 0, .. }));

        // A new observation invalidates only tenant a's cache.
        observe(&tx, &metrics, &a, &ds, 4);
        let third = forecast(&tx, &metrics, &a).unwrap();
        assert_ne!(third.version, first.version);
        assert_eq!(metrics.total_tape_runs(), 2);

        // Unload makes the tenant unknown again.
        let (reply, ack) = channel();
        metrics.queue_enter(0);
        tx.send(ShardRequest::Unload {
            tenant: Arc::clone(&b),
            reply,
        })
        .unwrap();
        assert!(ack.recv().unwrap());
        let err = forecast(&tx, &metrics, &b).unwrap_err();
        assert!(matches!(err, EngineError::UnknownTenant(_)));

        assert_eq!(metrics.queue_depth(), 0, "every request was dequeued");

        drop(tx);
        let drained = join.join().unwrap();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, "alpha");
        assert_eq!(drained[0].1.len(), 4);
    }

    #[test]
    fn batch_linger_holds_then_flushes_identically() {
        let (_, ds) = setup();

        // Zero-linger reference shard.
        let metrics0 = Arc::new(Metrics::new());
        let (tx0, join0) = spawn_shard(0, Arc::clone(&metrics0), 16, 16, Duration::ZERO);
        let a: Arc<str> = Arc::from("alpha");
        load(&tx0, &metrics0, &a);
        for t in 0..4 {
            observe(&tx0, &metrics0, &a, &ds, t);
        }
        let reference = forecast(&tx0, &metrics0, &a).unwrap();
        drop(tx0);
        join0.join().unwrap();

        // A lone forecast miss parks; with no further arrivals it is the
        // linger deadline, not queue-empty, that flushes it — the wait is
        // bounded below by the linger and the reply is bit-identical.
        let linger = Duration::from_millis(5);
        let metrics = Arc::new(Metrics::new());
        let (tx, join) = spawn_shard(0, Arc::clone(&metrics), 16, 16, linger);
        load(&tx, &metrics, &a);
        for t in 0..4 {
            observe(&tx, &metrics, &a, &ds, t);
        }
        let started = Instant::now();
        let lingered = forecast(&tx, &metrics, &a).unwrap();
        assert!(
            started.elapsed() >= linger,
            "parked forecast flushed before the linger deadline"
        );
        assert_eq!(lingered.version, reference.version);
        assert_eq!(lingered.steps, reference.steps);
        assert_eq!(metrics.total_batches(), 1);
        assert_eq!(metrics.total_batched_windows(), 1);

        drop(tx);
        join.join().unwrap();
    }
}
