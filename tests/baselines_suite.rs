//! Integration tests over the full baseline roster: every comparison model
//! trains, predicts finitely, and the classical models behave as specified.

use rihgcn::baselines::{
    mean_fill_samples, AstgcnConfig, AstgcnLite, BaselineConfig, BaselineKind, DcrnnConfig,
    DcrnnLite, GraphWaveNetConfig, GraphWaveNetLite, HistoricalAverage, StBaseline, VarModel,
};
use rihgcn::core::{evaluate_prediction, fit, prepare_split, TrainConfig};
use rihgcn::data::{generate_pems, DatasetSplit, PemsConfig, WindowSampler, ZScore};
use rihgcn::tensor::rng;

fn setup() -> (DatasetSplit, ZScore) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 5,
        num_days: 3,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.4, &mut rng(11));
    prepare_split(&ds.split_chronological())
}

#[test]
fn every_deep_baseline_trains_and_predicts() {
    let (norm, z) = setup();
    let sampler = WindowSampler::new(6, 3, 24);
    let train = sampler.sample(&norm.train);
    let test = sampler.sample(&norm.test);
    let tc = TrainConfig {
        max_epochs: 2,
        batch_size: 8,
        ..Default::default()
    };

    for kind in BaselineKind::all() {
        let cfg = BaselineConfig {
            gcn_dim: 4,
            lstm_dim: 5,
            cheb_k: 2,
            history: 6,
            horizon: 3,
            ..Default::default()
        };
        let mut model = StBaseline::from_dataset(&norm.train, kind, cfg);
        let (tr, te) = if kind.imputing() {
            (train.clone(), test.clone())
        } else {
            (mean_fill_samples(&train), mean_fill_samples(&test))
        };
        let report = fit(&mut model, &tr, &[], &tc);
        assert!(
            report.train_losses.iter().all(|l| l.is_finite()),
            "{}",
            kind.name()
        );
        let m = evaluate_prediction(&model, &te, &z);
        assert!(
            m.mae.is_finite() && m.mae > 0.0,
            "{} MAE {}",
            kind.name(),
            m.mae
        );
        assert!(m.mae < 60.0, "{} diverged: {}", kind.name(), m.mae);
    }
}

#[test]
fn comparator_architectures_train() {
    let (norm, z) = setup();
    let sampler = WindowSampler::new(6, 3, 24);
    let train = mean_fill_samples(&sampler.sample(&norm.train));
    let test = mean_fill_samples(&sampler.sample(&norm.test));
    let tc = TrainConfig {
        max_epochs: 2,
        batch_size: 8,
        ..Default::default()
    };

    let mut astgcn = AstgcnLite::from_dataset(
        &norm.train,
        AstgcnConfig {
            gcn_dim: 4,
            cheb_k: 2,
            history: 6,
            horizon: 3,
            ..Default::default()
        },
    );
    fit(&mut astgcn, &train, &[], &tc);
    let m = evaluate_prediction(&astgcn, &test, &z);
    assert!(m.mae.is_finite() && m.mae < 60.0, "ASTGCN MAE {}", m.mae);

    let mut gwn = GraphWaveNetLite::from_dataset(
        &norm.train,
        GraphWaveNetConfig {
            hidden_dim: 4,
            embed_dim: 3,
            history: 6,
            horizon: 3,
            ..Default::default()
        },
    );
    fit(&mut gwn, &train, &[], &tc);
    let m = evaluate_prediction(&gwn, &test, &z);
    assert!(
        m.mae.is_finite() && m.mae < 60.0,
        "GraphWaveNet MAE {}",
        m.mae
    );

    let mut dcrnn = DcrnnLite::from_dataset(
        &norm.train,
        DcrnnConfig {
            hidden_dim: 4,
            cheb_k: 2,
            history: 6,
            horizon: 3,
            ..Default::default()
        },
    );
    fit(&mut dcrnn, &train, &[], &tc);
    let m = evaluate_prediction(&dcrnn, &test, &z);
    assert!(m.mae.is_finite() && m.mae < 60.0, "DCRNN MAE {}", m.mae);
}

#[test]
fn classical_models_are_competitive_on_their_home_turf() {
    let (norm, z) = setup();
    let sampler = WindowSampler::new(6, 3, 24);
    let test = sampler.sample(&norm.test);

    // HA on strongly periodic data is a solid yardstick.
    let ha = HistoricalAverage::fit(&norm.train, 3);
    let ha_m = evaluate_prediction(&ha, &test, &z);
    assert!(
        ha_m.mae.is_finite() && ha_m.mae < 30.0,
        "HA MAE {}",
        ha_m.mae
    );

    // VAR must be fittable and finite on mean-filled data.
    let var = VarModel::fit(&norm.train, 3, 3).expect("VAR fit");
    let var_m = evaluate_prediction(&var, &test, &z);
    assert!(var_m.mae.is_finite(), "VAR MAE {}", var_m.mae);
}

#[test]
fn untrained_vs_trained_gap_exists_for_deep_baselines() {
    let (norm, z) = setup();
    let sampler = WindowSampler::new(6, 3, 24);
    let train = mean_fill_samples(&sampler.sample(&norm.train));
    let test = mean_fill_samples(&sampler.sample(&norm.test));
    let cfg = BaselineConfig {
        gcn_dim: 4,
        lstm_dim: 5,
        cheb_k: 2,
        history: 6,
        horizon: 3,
        ..Default::default()
    };
    let untrained = StBaseline::from_dataset(&norm.train, BaselineKind::GcnLstm, cfg.clone());
    let before = evaluate_prediction(&untrained, &test, &z);
    let mut model = StBaseline::from_dataset(&norm.train, BaselineKind::GcnLstm, cfg);
    let tc = TrainConfig {
        max_epochs: 5,
        batch_size: 8,
        learning_rate: 3e-3,
        ..Default::default()
    };
    fit(&mut model, &train, &[], &tc);
    let after = evaluate_prediction(&model, &test, &z);
    assert!(
        after.mae < before.mae,
        "training must help: {} → {}",
        before.mae,
        after.mae
    );
}
