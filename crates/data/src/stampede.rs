//! Synthetic Stampede-like roving-sensor dataset.
//!
//! The paper's Stampede data is private: GPS traces from smartphones on 15
//! campus shuttles, aggregated into per-segment travel times for 12 road
//! segments (Feb–Jun 2019). Its defining characteristics — the ones the
//! Table-II comparison actually stresses — are:
//!
//! * only 12 nodes with travel-time (seconds) as the single feature;
//! * **very high structural missingness**: a segment is only observed when
//!   a shuttle happens to traverse it, producing bursty, irregular
//!   observation patterns and ~70–90% missing entries;
//! * urban dynamics: traffic-light delays and rush-hour multipliers on top
//!   of a per-segment base travel time.
//!
//! This generator reproduces all three. Ground truth is materialised for
//! every timestamp (so imputation can be scored exactly); the mask comes
//! from an explicit shuttle-fleet simulation over the loop route.

use crate::TrafficDataset;
use st_graph::RoadNetwork;
use st_tensor::{rng, standard_normal, StRng, Tensor3};

/// Configuration for [`generate_stampede`].
#[derive(Debug, Clone, PartialEq)]
pub struct StampedeConfig {
    /// Number of road segments on the shuttle loop (paper: 12).
    pub num_segments: usize,
    /// Number of simulated days.
    pub num_days: usize,
    /// Sampling interval in minutes (paper aggregates to 5).
    pub interval_minutes: usize,
    /// Number of shuttles simultaneously serving the loop.
    pub num_shuttles: usize,
    /// First service hour (shuttles do not run at night).
    pub service_start_hour: usize,
    /// Last service hour (exclusive).
    pub service_end_hour: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StampedeConfig {
    fn default() -> Self {
        Self {
            num_segments: 12,
            num_days: 28,
            interval_minutes: 5,
            num_shuttles: 4,
            service_start_hour: 6,
            service_end_hour: 22,
            seed: 11,
        }
    }
}

/// Generates the synthetic Stampede-like dataset (travel times in seconds).
///
/// # Examples
///
/// ```
/// use st_data::{generate_stampede, StampedeConfig};
///
/// let ds = generate_stampede(&StampedeConfig { num_days: 2, ..Default::default() });
/// assert_eq!(ds.num_nodes(), 12);
/// assert!(ds.missing_rate() > 0.5); // roving coverage is sparse
/// ```
///
/// # Panics
///
/// Panics if any dimension is zero, the interval does not divide a day, or
/// the service window is empty.
pub fn generate_stampede(cfg: &StampedeConfig) -> TrafficDataset {
    assert!(
        cfg.num_segments > 0 && cfg.num_days > 0,
        "empty dataset requested"
    );
    assert!(
        cfg.service_start_hour < cfg.service_end_hour && cfg.service_end_hour <= 24,
        "invalid service window"
    );
    let slots = 24 * 60 / cfg.interval_minutes;
    let total = slots * cfg.num_days;
    let n = cfg.num_segments;
    let mut rand = rng(cfg.seed);

    let network = RoadNetwork::loop_route(n, 1.6);

    // Base travel time per segment from its geometry: length / limit, plus
    // a fixed delay per traffic light.
    let seg_len_km = 2.0 * std::f64::consts::PI * 1.6 / n as f64;
    let base_tt: Vec<f64> = network
        .segments()
        .iter()
        .map(|s| {
            let drive = seg_len_km / s.speed_limit * 3600.0;
            let lights = s.traffic_lights as f64 * 18.0;
            let lane_penalty = 25.0 / s.lanes as f64;
            drive + lights + lane_penalty
        })
        .collect();

    // Ground-truth travel times with rush-hour multipliers and AR(1) noise.
    let mut ar = vec![0.0f64; n];
    let rho = 0.9;
    let mut values = Tensor3::zeros(n, 1, total);
    for t in 0..total {
        let day = t / slots;
        let slot = t % slots;
        let minute = (slot * cfg.interval_minutes) as f64;
        let weekday = day % 7 < 5;
        for seg in 0..n {
            let mut mult = 1.0;
            if weekday {
                mult += 0.75 * bump(minute, 480.0, 60.0); // 8:00 class rush
                mult += 0.55 * bump(minute, 720.0, 70.0); // lunchtime
                mult += 0.85 * bump(minute, 1020.0, 75.0); // 17:00 rush
            } else {
                mult += 0.25 * bump(minute, 840.0, 120.0);
            }
            // Segments with more lights suffer disproportionally in rush.
            let lights = network.segments()[seg].traffic_lights as f64;
            mult += (mult - 1.0) * 0.15 * lights;
            let eps = standard_normal(&mut rand);
            ar[seg] = rho * ar[seg] + 4.0 * eps;
            let tt = (base_tt[seg] * mult + ar[seg] + 2.0 * standard_normal(&mut rand)).max(20.0);
            values[(seg, 0, t)] = tt;
        }
    }

    let mask = simulate_fleet(cfg, &values, slots, &mut rand);
    TrafficDataset::new(
        "stampede-synth",
        values,
        mask,
        network,
        cfg.interval_minutes,
    )
}

fn bump(x: f64, centre: f64, width: f64) -> f64 {
    let z = (x - centre) / width;
    (-0.5 * z * z).exp()
}

/// Simulates shuttles driving the loop: a segment is observed at a timestamp
/// only when some shuttle traverses it then. Shuttles take layover breaks at
/// the depot (segment 0) and only run during service hours, yielding the
/// bursty high-missingness pattern characteristic of roving sensors.
fn simulate_fleet(
    cfg: &StampedeConfig,
    values: &Tensor3,
    slots: usize,
    rand: &mut StRng,
) -> Tensor3 {
    let n = cfg.num_segments;
    let total = values.times();
    let mut mask = Tensor3::zeros(n, 1, total);
    let service_start = cfg.service_start_hour * 60 / cfg.interval_minutes;
    let service_end = cfg.service_end_hour * 60 / cfg.interval_minutes;
    let slot_secs = (cfg.interval_minutes * 60) as f64;

    for _shuttle in 0..cfg.num_shuttles {
        let mut seg = rand.gen_range(0..n);
        // Fractional progress through the current segment, in seconds.
        let mut progress = 0.0f64;
        let mut layover_until = 0usize;
        for t in 0..total {
            let slot = t % slots;
            if slot < service_start || slot >= service_end {
                // Out of service: park at the depot.
                seg = 0;
                progress = 0.0;
                continue;
            }
            if t < layover_until {
                continue;
            }
            // The shuttle spends this slot on its current segment.
            mask[(seg, 0, t)] = 1.0;
            progress += slot_secs;
            let needed = values[(seg, 0, t)].max(30.0);
            if progress >= needed {
                progress = 0.0;
                seg = (seg + 1) % n;
                // Occasional layover at the depot.
                if seg == 0 && rand.gen_f64() < 0.6 {
                    layover_until = t + rand.gen_range(3..12usize);
                }
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::masking::missing_rate;

    fn small() -> TrafficDataset {
        generate_stampede(&StampedeConfig {
            num_days: 7,
            ..Default::default()
        })
    }

    #[test]
    fn shapes_and_determinism() {
        let ds = small();
        assert_eq!(ds.num_nodes(), 12);
        assert_eq!(ds.num_features(), 1);
        assert_eq!(ds.num_times(), 7 * 288);
        assert_eq!(ds.values, small().values);
        assert_eq!(ds.mask, small().mask);
    }

    #[test]
    fn high_intrinsic_missing_rate() {
        let ds = small();
        let rate = missing_rate(&ds.mask);
        assert!(
            (0.55..0.97).contains(&rate),
            "roving missing rate should be high, was {rate}"
        );
    }

    #[test]
    fn travel_times_plausible() {
        let ds = small();
        for &v in ds.values.as_slice() {
            assert!((20.0..2000.0).contains(&v), "travel time {v} out of range");
        }
    }

    #[test]
    fn rush_hour_travel_time_higher() {
        let ds = small();
        let rush_slot = 17 * 12; // 17:00
        let calm_slot = 10 * 12 + 6; // 10:30
        let mut rush = 0.0;
        let mut calm = 0.0;
        for day in 0..5 {
            rush += ds.values[(3, 0, day * 288 + rush_slot)];
            calm += ds.values[(3, 0, day * 288 + calm_slot)];
        }
        assert!(rush > calm, "rush {rush} should exceed calm {calm}");
    }

    #[test]
    fn no_observations_outside_service_hours() {
        let ds = small();
        let slots = ds.slots_per_day();
        for day in 0..7 {
            for slot in 0..(6 * 60 / 5) {
                for seg in 0..12 {
                    assert_eq!(ds.mask[(seg, 0, day * slots + slot)], 0.0);
                }
            }
        }
    }

    #[test]
    fn observations_are_bursty_consecutive_runs() {
        // A shuttle sitting on a slow segment observes it for several
        // consecutive slots — verify runs of length ≥ 2 exist.
        let ds = small();
        let mut found_run = false;
        'outer: for seg in 0..12 {
            let series = ds.mask.series(seg, 0);
            for w in series.windows(2) {
                if w[0] == 1.0 && w[1] == 1.0 {
                    found_run = true;
                    break 'outer;
                }
            }
        }
        assert!(found_run, "expected bursty observation runs");
    }

    #[test]
    fn every_segment_observed_sometimes() {
        let ds = small();
        for seg in 0..12 {
            let count: f64 = ds.mask.series(seg, 0).iter().sum();
            assert!(count > 0.0, "segment {seg} never observed");
        }
    }

    #[test]
    #[should_panic(expected = "invalid service window")]
    fn rejects_empty_service_window() {
        let _ = generate_stampede(&StampedeConfig {
            service_start_hour: 10,
            service_end_hour: 10,
            ..Default::default()
        });
    }
}
