//! Observability overhead and determinism benchmark.
//!
//! Runs the same training-step workload as `bench_step` twice:
//!
//! * **phase A** — tracing disabled. Measures steady-state step time; when
//!   a `BENCH_step.json` baseline with matching `smoke`/`threads` fields is
//!   present, asserts the instrumented-but-disabled hot path costs < 2%
//!   over the baseline (plus a small absolute noise floor — micro-scale
//!   timings jitter).
//! * **phase B** — tracing enabled. Repeats the identical run, asserts
//!   every per-step loss is **bit-identical** to phase A (spans must never
//!   change numerical results), and validates the captured trace contains
//!   spans from each instrumented layer.
//!
//! ```text
//! cargo run --release -p rihgcn-bench --bin bench_obs -- \
//!     [--smoke] [--steps N] [--baseline BENCH_step.json] \
//!     [--out BENCH_obs.json] [--trace FILE]
//! ```
//!
//! Writes a JSON report and exits non-zero on any violated invariant.

use rihgcn_bench::alloc::CountingAlloc;
use rihgcn_core::{Forecaster, RihgcnConfig, RihgcnModel};
use st_data::{generate_pems, PemsConfig, WindowSampler};
use st_nn::Adam;
use std::time::Instant;

// Same allocator as bench_step so the timing environments match.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Maximum step-time overhead of disabled tracing vs the baseline.
const MAX_DISABLED_OVERHEAD: f64 = 0.02;

/// Absolute slack for micro-scale timing jitter (milliseconds): the 2%
/// budget only binds once the delta clears this floor.
const NOISE_FLOOR_MS: f64 = 0.25;

struct Args {
    smoke: bool,
    steps: usize,
    baseline: String,
    out: String,
    trace: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        steps: 0,
        baseline: "BENCH_step.json".to_string(),
        out: "BENCH_obs.json".to_string(),
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--steps" => {
                let v = it.next().expect("--steps needs a value");
                args.steps = v.parse().expect("--steps must be an integer");
            }
            "--baseline" => args.baseline = it.next().expect("--baseline needs a path"),
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--trace" => args.trace = Some(it.next().expect("--trace needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_obs [--smoke] [--steps N] [--baseline FILE] \
                     [--out FILE] [--trace FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.steps == 0 {
        args.steps = if args.smoke { 4 } else { 10 };
    }
    assert!(args.steps >= 2, "need at least 2 steps for a steady state");
    args
}

/// One full training run at the `bench_step` workload: returns the per-step
/// losses and per-step wall times (ms). Deterministic given the step count.
fn run_training(smoke: bool, steps: usize) -> (Vec<f64>, Vec<f64>) {
    let (nodes, graphs, gcn_dim, lstm_dim, history, horizon) = if smoke {
        (4, 2, 4, 6, 4, 2)
    } else {
        (8, 4, 8, 16, 12, 12)
    };
    let ds = generate_pems(&PemsConfig {
        num_nodes: nodes,
        num_days: 3,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.4, &mut st_tensor::rng(8));
    let cfg = RihgcnConfig {
        gcn_dim,
        lstm_dim,
        num_temporal_graphs: graphs,
        history,
        horizon,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&ds, cfg);
    let sample = WindowSampler::new(history, horizon, 1).window_at(&ds, 0);
    let mut adam = Adam::new(model.params(), 1e-3);

    let mut losses = Vec::with_capacity(steps);
    let mut times = Vec::with_capacity(steps);
    for _ in 0..steps {
        model.params_mut().zero_grads();
        let start = Instant::now();
        let loss = model.accumulate_gradients(&sample);
        model.params_mut().clip_grad_norm(5.0);
        adam.step(model.params_mut());
        times.push(start.elapsed().as_secs_f64() * 1e3);
        losses.push(loss);
    }
    (losses, times)
}

/// Mean steady-state step time: step 1 is excluded (cold buffer pool).
fn steady_ms(times: &[f64]) -> f64 {
    times[1..].iter().sum::<f64>() / (times.len() - 1) as f64
}

/// Reads `time_per_step_ms` from a `bench_step` report, but only when its
/// `smoke` and `threads` fields match this run (comparing against a
/// different configuration would be meaningless).
fn matching_baseline_ms(path: &str, smoke: bool, threads: usize) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = st_obs::json::parse(&text).ok()?;
    let num = |key: &str| match doc.get(key) {
        Some(st_obs::json::Json::Num(v)) => Some(*v),
        _ => None,
    };
    if doc.get("smoke") != Some(&st_obs::json::Json::Bool(smoke)) {
        eprintln!("note: baseline {path} has a different smoke setting; skipping comparison");
        return None;
    }
    if num("threads") != Some(threads as f64) {
        eprintln!("note: baseline {path} ran at a different thread count; skipping comparison");
        return None;
    }
    num("time_per_step_ms")
}

fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.6}"),
        _ => "null".to_string(),
    }
}

fn main() {
    let args = parse_args();
    let threads = st_par::num_threads();
    let mut failed = false;

    // Phase A: instrumented code, tracing disabled — the production path.
    st_obs::set_enabled(false);
    let (losses_off, times_off) = run_training(args.smoke, args.steps);
    let off_ms = steady_ms(&times_off);

    let baseline_ms = matching_baseline_ms(&args.baseline, args.smoke, threads);
    let overhead = baseline_ms.map(|base| off_ms / base - 1.0);
    if let (Some(base), Some(ovh)) = (baseline_ms, overhead) {
        eprintln!(
            "disabled tracing: {off_ms:.3} ms/step vs baseline {base:.3} ms/step \
             ({:+.2}% overhead)",
            ovh * 100.0
        );
        if ovh > MAX_DISABLED_OVERHEAD && off_ms - base > NOISE_FLOOR_MS {
            eprintln!(
                "FAIL: disabled-tracing overhead {:.2}% exceeds the {:.0}% budget \
                 (delta {:.3} ms above the {NOISE_FLOOR_MS} ms noise floor)",
                ovh * 100.0,
                MAX_DISABLED_OVERHEAD * 100.0,
                off_ms - base
            );
            failed = true;
        }
    } else {
        eprintln!("disabled tracing: {off_ms:.3} ms/step (no matching baseline)");
    }

    // Phase B: identical run with tracing on. Results must not move a bit.
    st_obs::trace::reset();
    st_obs::set_enabled(true);
    let (losses_on, times_on) = run_training(args.smoke, args.steps);
    st_obs::set_enabled(false);
    let on_ms = steady_ms(&times_on);
    eprintln!(
        "enabled tracing:  {on_ms:.3} ms/step ({:+.2}% vs disabled)",
        (on_ms / off_ms - 1.0) * 100.0
    );

    assert_eq!(losses_off.len(), losses_on.len());
    for (step, (a, b)) in losses_off.iter().zip(&losses_on).enumerate() {
        if a.to_bits() != b.to_bits() {
            eprintln!(
                "FAIL: step {step} loss changed under tracing: {a:?} (off) vs {b:?} (on) — \
                 spans must not perturb training"
            );
            failed = true;
        }
    }

    // The captured trace must be valid Chrome JSON with spans from every
    // layer the workload exercises.
    let snap = st_obs::trace::snapshot();
    let trace_json = st_obs::trace::chrome_trace_json(&snap);
    if let Some(path) = &args.trace {
        std::fs::write(path, &trace_json).expect("write trace");
        eprintln!("wrote trace to {path}");
    }
    match st_obs::trace::validate_chrome_trace(&trace_json) {
        Ok(stats) => {
            for prefix in ["tensor.", "autodiff.", "par.", "nn.", "core."] {
                if !stats.has_prefix(prefix) {
                    eprintln!(
                        "FAIL: traced run produced no {prefix}* span (names: {:?})",
                        stats.names
                    );
                    failed = true;
                }
            }
            eprintln!(
                "trace: {} span events across {} names; slowest spans:\n{}",
                stats.span_events,
                stats.names.len(),
                st_obs::trace::render_table(&st_obs::trace::aggregate(&snap))
            );
        }
        Err(e) => {
            eprintln!("FAIL: captured trace is invalid: {e}");
            failed = true;
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"rihgcn_obs_overhead\",\n  \"smoke\": {},\n  \"threads\": {},\n  \"steps\": {},\n  \"time_disabled_ms\": {},\n  \"time_enabled_ms\": {},\n  \"baseline_ms\": {},\n  \"disabled_overhead\": {},\n  \"span_events\": {},\n  \"bit_identical\": {}\n}}\n",
        args.smoke,
        threads,
        args.steps,
        json_f64(Some(off_ms)),
        json_f64(Some(on_ms)),
        json_f64(baseline_ms),
        json_f64(overhead),
        snap.spans.len(),
        !failed,
    );
    std::fs::write(&args.out, &json).expect("write report");
    print!("{json}");

    if failed {
        std::process::exit(1);
    }
}
