//! Property test: randomly composed tape programs must gradcheck.

use proptest::prelude::*;
use st_autodiff::{check_gradient, Tape, Var};
use st_tensor::Matrix;

/// One step of a randomly chosen smooth operation.
#[derive(Debug, Clone, Copy)]
enum OpChoice {
    Tanh,
    Sigmoid,
    Scale,
    AddConst,
    MulSelf,
    MatmulConst,
}

fn op_strategy() -> impl Strategy<Value = OpChoice> {
    prop_oneof![
        Just(OpChoice::Tanh),
        Just(OpChoice::Sigmoid),
        Just(OpChoice::Scale),
        Just(OpChoice::AddConst),
        Just(OpChoice::MulSelf),
        Just(OpChoice::MatmulConst),
    ]
}

fn apply(tape: &mut Tape, x: Var, op: OpChoice) -> Var {
    match op {
        OpChoice::Tanh => tape.tanh(x),
        OpChoice::Sigmoid => tape.sigmoid(x),
        OpChoice::Scale => tape.scale(x, 0.7),
        OpChoice::AddConst => tape.add_scalar(x, 0.3),
        OpChoice::MulSelf => tape.mul(x, x),
        OpChoice::MatmulConst => {
            let cols = tape.value(x).cols();
            let w = tape.constant(Matrix::from_fn(cols, cols, |r, c| {
                ((r * cols + c) as f64 * 0.13).sin() * 0.5
            }));
            tape.matmul(x, w)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_gradcheck(
        ops in proptest::collection::vec(op_strategy(), 1..6),
        data in proptest::collection::vec(-0.9f64..0.9, 6),
    ) {
        let at = Matrix::from_vec(2, 3, data);
        let build = |tape: &mut Tape, p: Var| -> Var {
            let mut x = p;
            for &op in &ops {
                x = apply(tape, x, op);
            }
            tape.mean(x)
        };
        let mut tape = Tape::new();
        let p = tape.parameter(at.clone());
        let loss = build(&mut tape, p);
        tape.backward(loss);
        let analytic = tape.grad(p);

        let res = check_gradient(&at, &analytic, 1e-6, |m| {
            let mut t = Tape::new();
            let p = t.parameter(m.clone());
            let l = build(&mut t, p);
            t.value(l)[(0, 0)]
        });
        prop_assert!(res.passes(1e-4), "ops {:?} failed: {:?}", ops, res);
    }

    #[test]
    fn gradients_always_finite(
        ops in proptest::collection::vec(op_strategy(), 1..8),
        data in proptest::collection::vec(-3.0f64..3.0, 6),
    ) {
        let at = Matrix::from_vec(2, 3, data);
        let mut tape = Tape::new();
        let p = tape.parameter(at);
        let mut x = p;
        for &op in &ops {
            x = apply(&mut tape, x, op);
        }
        let loss = tape.mean(x);
        tape.backward(loss);
        prop_assert!(tape.grad(p).is_finite());
    }
}
