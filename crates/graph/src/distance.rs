//! Time-series distance measures: DTW, ERP and LCSS.
//!
//! The paper measures similarity between road segments' historical profiles
//! with Dynamic Time Warping (Section III-D), mentioning Edit distance with
//! Real Penalty and Longest Common Subsequence as alternatives; all three are
//! implemented here so the temporal-graph construction can be ablated.

/// A pluggable time-series distance measure.
///
/// The paper uses DTW for temporal-graph construction and names ERP and
/// LCSS as alternatives (§III-D); this enum lets the graph builders and the
/// ablation benches switch between all three.
///
/// # Examples
///
/// ```
/// use st_graph::SeriesDistance;
///
/// let a = [1.0, 2.0, 3.0];
/// assert_eq!(SeriesDistance::Dtw.compute(&a, &a), 0.0);
/// assert_eq!(SeriesDistance::Erp { gap: 0.0 }.compute(&a, &a), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeriesDistance {
    /// Dynamic Time Warping (the paper's choice).
    Dtw,
    /// Edit distance with Real Penalty, with the given gap value.
    Erp {
        /// Gap (reference) value `g`.
        gap: f64,
    },
    /// LCSS-based distance with the given matching threshold.
    Lcss {
        /// Pointwise matching threshold `ε`.
        epsilon: f64,
    },
}

impl Default for SeriesDistance {
    fn default() -> Self {
        SeriesDistance::Dtw
    }
}

impl SeriesDistance {
    /// Computes the distance between two scalar series.
    pub fn compute(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            SeriesDistance::Dtw => dtw(a, b),
            SeriesDistance::Erp { gap } => erp(a, b, gap),
            SeriesDistance::Lcss { epsilon } => lcss(a, b, epsilon),
        }
    }
}

/// Dynamic Time Warping distance between two scalar series.
///
/// Handles series of different lengths; uses squared pointwise cost summed
/// along the optimal warping path, returned as the square root (a common
/// DTW convention that keeps units comparable to Euclidean distance).
///
/// Returns `f64::INFINITY` if either series is empty (nothing to align).
///
/// # Examples
///
/// ```
/// let d = st_graph::dtw(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
/// assert_eq!(d, 0.0);
/// ```
pub fn dtw(a: &[f64], b: &[f64]) -> f64 {
    dtw_windowed(a, b, usize::MAX)
}

/// DTW with a Sakoe–Chiba band of half-width `window` (in indices).
///
/// `window = usize::MAX` disables the band. A tighter band speeds up the
/// computation and regularises pathological alignments.
///
/// Returns `f64::INFINITY` if either series is empty or the band makes the
/// end state unreachable.
pub fn dtw_windowed(a: &[f64], b: &[f64], window: usize) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    // The band must be at least |n−m| wide to reach the corner.
    let w = window.max(n.abs_diff(m));
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = i.saturating_add(w).min(m);
        for j in lo..=hi {
            let cost = {
                let d = a[i - 1] - b[j - 1];
                d * d
            };
            let best = prev[j - 1].min(prev[j]).min(curr[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

/// Multivariate DTW: the mean of per-dimension DTW distances.
///
/// Each element of `a`/`b` is one dimension's series. Dimensions present in
/// only one input are ignored; returns `f64::INFINITY` when no dimension is
/// comparable.
pub fn dtw_multivariate(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let dims = a.len().min(b.len());
    if dims == 0 {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for d in 0..dims {
        let dist = dtw(&a[d], &b[d]);
        if dist.is_finite() {
            total += dist;
            count += 1;
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

/// Symmetric pairwise distance matrix between nodes' multivariate series.
///
/// `series[n]` holds node `n`'s per-feature scalar series; the distance
/// between two nodes is the mean finite `measure` distance over their
/// common features (0 when no feature is comparable). The diagonal is zero.
///
/// The O(N²) pair loop is the hottest step of temporal-graph construction,
/// so pairs are evaluated across `st-par` workers once the estimated work
/// clears [`st_tensor::parallel_threshold`]. Each pair's distance is
/// computed wholly by one worker and written to a dedicated slot, so the
/// result is bit-identical for any thread count.
pub fn pairwise_distances(series: &[Vec<Vec<f64>>], measure: SeriesDistance) -> st_tensor::Matrix {
    let n = series.len();
    let mut dist = st_tensor::Matrix::zeros(n, n);
    if n < 2 {
        return dist;
    }
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .collect();
    let pair_distance = |&(i, j): &(usize, usize)| -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for f in 0..series[i].len().min(series[j].len()) {
            let d = measure.compute(&series[i][f], &series[j][f]);
            if d.is_finite() {
                total += d;
                count += 1;
            }
        }
        if count > 0 {
            total / count as f64
        } else {
            0.0
        }
    };

    // Work estimate: each DTW/ERP/LCSS pair costs O(len²) per feature.
    let len = series
        .iter()
        .flat_map(|node| node.iter().map(Vec::len))
        .max()
        .unwrap_or(0);
    let features = series.iter().map(Vec::len).max().unwrap_or(0);
    let work = pairs
        .len()
        .saturating_mul(len * len)
        .saturating_mul(features);

    let mut values = vec![0.0; pairs.len()];
    if st_par::num_threads() <= 1 || work < st_tensor::parallel_threshold() {
        for (v, pair) in values.iter_mut().zip(&pairs) {
            *v = pair_distance(pair);
        }
    } else {
        st_par::par_chunks_mut(&mut values, 1, |idx, slot| {
            slot[0] = pair_distance(&pairs[idx]);
        });
    }
    for (&(i, j), &d) in pairs.iter().zip(&values) {
        dist[(i, j)] = d;
        dist[(j, i)] = d;
    }
    dist
}

/// Edit distance with Real Penalty (ERP) with gap value `g`.
///
/// A metric (satisfies the triangle inequality) unlike raw DTW. Empty series
/// are handled by pure gap cost.
pub fn erp(a: &[f64], b: &[f64], g: f64) -> f64 {
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<f64> = (0..=m)
        .map(|j| b[..j].iter().map(|x| (x - g).abs()).sum())
        .collect();
    let mut curr = vec![0.0; m + 1];
    for i in 1..=n {
        curr[0] = prev[0] + (a[i - 1] - g).abs();
        for j in 1..=m {
            let match_cost = prev[j - 1] + (a[i - 1] - b[j - 1]).abs();
            let gap_a = prev[j] + (a[i - 1] - g).abs();
            let gap_b = curr[j - 1] + (b[j - 1] - g).abs();
            curr[j] = match_cost.min(gap_a).min(gap_b);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Longest-Common-SubSequence similarity turned into a distance:
/// `1 − |LCSS| / min(n, m)` with matching threshold `epsilon`.
///
/// Returns `1.0` (maximally distant) when either series is empty.
pub fn lcss(a: &[f64], b: &[f64], epsilon: f64) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return 1.0;
    }
    let mut prev = vec![0usize; m + 1];
    let mut curr = vec![0usize; m + 1];
    for i in 1..=n {
        for j in 1..=m {
            curr[j] = if (a[i - 1] - b[j - 1]).abs() <= epsilon {
                prev[j - 1] + 1
            } else {
                prev[j].max(curr[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
        curr.fill(0);
    }
    1.0 - prev[m] as f64 / n.min(m) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtw_identity_is_zero() {
        let s = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(dtw(&s, &s), 0.0);
    }

    #[test]
    fn dtw_is_symmetric() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.5, 2.5, 2.0];
        assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn dtw_aligns_shifted_series() {
        // A time-shifted copy should be much closer under DTW than
        // pointwise Euclidean distance.
        let a: Vec<f64> = (0..20).map(|i| ((i as f64) * 0.5).sin()).collect();
        let b: Vec<f64> = (0..20).map(|i| (((i + 2) as f64) * 0.5).sin()).collect();
        let euclid: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        let d = dtw(&a, &b);
        assert!(d < euclid, "dtw {d} should beat euclidean {euclid}");
    }

    #[test]
    fn dtw_brute_force_agreement() {
        // Compare against a straightforward full-matrix implementation.
        fn brute(a: &[f64], b: &[f64]) -> f64 {
            let (n, m) = (a.len(), b.len());
            let mut dp = vec![vec![f64::INFINITY; m + 1]; n + 1];
            dp[0][0] = 0.0;
            for i in 1..=n {
                for j in 1..=m {
                    let c = (a[i - 1] - b[j - 1]).powi(2);
                    dp[i][j] = c + dp[i - 1][j - 1].min(dp[i - 1][j]).min(dp[i][j - 1]);
                }
            }
            dp[n][m].sqrt()
        }
        let a = [0.3, 1.2, -0.5, 2.0, 0.0, 1.1];
        let b = [0.1, 1.0, 0.0, 1.8];
        assert!((dtw(&a, &b) - brute(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn dtw_empty_is_infinite() {
        assert!(dtw(&[], &[1.0]).is_infinite());
        assert!(dtw(&[1.0], &[]).is_infinite());
    }

    #[test]
    fn dtw_window_matches_full_when_wide() {
        let a = [1.0, 2.0, 1.5, 0.5];
        let b = [1.1, 1.9, 1.4, 0.6];
        assert_eq!(dtw_windowed(&a, &b, 100), dtw(&a, &b));
    }

    #[test]
    fn dtw_window_never_below_full() {
        // Constraining alignments can only increase the optimal cost.
        let a: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7).cos()).collect();
        let b: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7 + 1.0).cos()).collect();
        assert!(dtw_windowed(&a, &b, 1) >= dtw(&a, &b) - 1e-12);
    }

    #[test]
    fn multivariate_averages_dimensions() {
        let a = vec![vec![1.0, 2.0], vec![5.0, 5.0]];
        let b = vec![vec![1.0, 2.0], vec![5.0, 5.0]];
        assert_eq!(dtw_multivariate(&a, &b), 0.0);
        let c = vec![vec![2.0, 3.0], vec![5.0, 5.0]];
        assert!(dtw_multivariate(&a, &c) > 0.0);
    }

    #[test]
    fn erp_identity_and_symmetry() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(erp(&a, &a, 0.0), 0.0);
        let b = [2.0, 2.5];
        assert!((erp(&a, &b, 0.0) - erp(&b, &a, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn erp_triangle_inequality_spot_check() {
        let a = [1.0, 2.0];
        let b = [1.5, 2.5, 0.0];
        let c = [0.5];
        let (ab, bc, ac) = (erp(&a, &b, 0.0), erp(&b, &c, 0.0), erp(&a, &c, 0.0));
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn lcss_bounds() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(lcss(&a, &a, 0.01), 0.0);
        let far = [100.0, 200.0, 300.0];
        assert_eq!(lcss(&a, &far, 0.01), 1.0);
        assert_eq!(lcss(&[], &a, 0.1), 1.0);
    }

    #[test]
    fn series_distance_dispatch_matches_functions() {
        let a = [1.0, 2.0, 3.0, 2.0];
        let b = [1.5, 2.5, 2.0];
        assert_eq!(SeriesDistance::Dtw.compute(&a, &b), dtw(&a, &b));
        assert_eq!(
            SeriesDistance::Erp { gap: 0.5 }.compute(&a, &b),
            erp(&a, &b, 0.5)
        );
        assert_eq!(
            SeriesDistance::Lcss { epsilon: 0.6 }.compute(&a, &b),
            lcss(&a, &b, 0.6)
        );
        assert_eq!(SeriesDistance::default(), SeriesDistance::Dtw);
    }

    #[test]
    fn pairwise_matches_the_scalar_functions() {
        // Three nodes, two features each.
        let mk = |phase: f64| -> Vec<Vec<f64>> {
            (0..2)
                .map(|f| {
                    (0..30)
                        .map(|t| ((t as f64) * 0.3 + phase + f as f64).sin())
                        .collect()
                })
                .collect()
        };
        let series = vec![mk(0.0), mk(0.4), mk(2.0)];
        let dist = pairwise_distances(&series, SeriesDistance::Dtw);
        assert_eq!(dist.shape(), (3, 3));
        for i in 0..3 {
            assert_eq!(dist[(i, i)], 0.0);
        }
        let expected01 =
            (dtw(&series[0][0], &series[1][0]) + dtw(&series[0][1], &series[1][1])) / 2.0;
        assert_eq!(dist[(0, 1)], expected01);
        assert_eq!(dist[(0, 1)], dist[(1, 0)]);
        // Closer phases are closer in DTW.
        assert!(dist[(0, 1)] < dist[(0, 2)]);
    }

    #[test]
    fn pairwise_handles_degenerate_inputs() {
        assert_eq!(pairwise_distances(&[], SeriesDistance::Dtw).shape(), (0, 0));
        let one = vec![vec![vec![1.0, 2.0]]];
        assert_eq!(
            pairwise_distances(&one, SeriesDistance::Dtw).shape(),
            (1, 1)
        );
        // Nodes with no comparable features get distance 0.
        let mixed = vec![vec![vec![1.0, 2.0]], vec![]];
        let d = pairwise_distances(&mixed, SeriesDistance::Dtw);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn pairwise_is_bitwise_thread_invariant() {
        let series: Vec<Vec<Vec<f64>>> = (0..9)
            .map(|n| {
                (0..2)
                    .map(|f| {
                        (0..40)
                            .map(|t| {
                                ((t + n) as f64 * 0.17 + f as f64 * 0.9).sin() * (n + 1) as f64
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let saved = st_tensor::parallel_threshold();
        st_tensor::set_parallel_threshold(usize::MAX);
        let serial = pairwise_distances(&series, SeriesDistance::Dtw);
        st_tensor::set_parallel_threshold(1);
        st_par::set_num_threads(4);
        let parallel = pairwise_distances(&series, SeriesDistance::Dtw);
        st_par::set_num_threads(0);
        st_tensor::set_parallel_threshold(saved);
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lcss_partial_overlap() {
        let a = [1.0, 5.0, 2.0, 8.0];
        let b = [1.0, 2.0];
        // Subsequence [1, 2] matches fully against the shorter series.
        assert_eq!(lcss(&a, &b, 0.01), 0.0);
    }
}
