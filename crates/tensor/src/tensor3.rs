//! Three-dimensional tensor used for spatio-temporal data cubes.
//!
//! Traffic data in the paper is a cube `X ∈ R^{N×D×T}` (nodes × features ×
//! timestamps) together with a same-shaped mask `M`. [`Tensor3`] stores such
//! cubes contiguously with axis order `(node, feature, time)` and offers the
//! slicing patterns the models need: per-timestamp `N×D` matrices and
//! per-node `T×D` series.

use crate::Matrix;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `N × D × T` tensor of `f64` with axes (node, feature, time).
///
/// # Examples
///
/// ```
/// use st_tensor::Tensor3;
///
/// let mut cube = Tensor3::zeros(2, 1, 3);
/// cube[(0, 0, 2)] = 5.0;
/// assert_eq!(cube.time_slice(2)[(0, 0)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor3 {
    nodes: usize,
    features: usize,
    times: usize,
    data: Vec<f64>,
}

impl Tensor3 {
    /// Creates a tensor of the given shape filled with `value`.
    pub fn filled(nodes: usize, features: usize, times: usize, value: f64) -> Self {
        Self {
            nodes,
            features,
            times,
            data: vec![value; nodes * features * times],
        }
    }

    /// Creates a zero tensor of the given shape.
    pub fn zeros(nodes: usize, features: usize, times: usize) -> Self {
        Self::filled(nodes, features, times, 0.0)
    }

    /// Creates a tensor of ones of the given shape.
    pub fn ones(nodes: usize, features: usize, times: usize) -> Self {
        Self::filled(nodes, features, times, 1.0)
    }

    /// Creates a tensor by evaluating `f(node, feature, time)` everywhere.
    pub fn from_fn(
        nodes: usize,
        features: usize,
        times: usize,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(nodes * features * times);
        for n in 0..nodes {
            for d in 0..features {
                for t in 0..times {
                    data.push(f(n, d, t));
                }
            }
        }
        Self {
            nodes,
            features,
            times,
            data,
        }
    }

    /// Number of nodes (first axis).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of features (second axis).
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of timestamps (third axis).
    pub fn times(&self) -> usize {
        self.times
    }

    /// `(nodes, features, times)` triple.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nodes, self.features, self.times)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage (node-major, then feature,
    /// then time).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    #[inline]
    fn offset(&self, n: usize, d: usize, t: usize) -> usize {
        debug_assert!(n < self.nodes && d < self.features && t < self.times);
        (n * self.features + d) * self.times + t
    }

    /// Element access returning `None` when out of bounds.
    pub fn get(&self, n: usize, d: usize, t: usize) -> Option<f64> {
        if n < self.nodes && d < self.features && t < self.times {
            Some(self.data[(n * self.features + d) * self.times + t])
        } else {
            None
        }
    }

    /// Extracts the `N × D` matrix of all node features at timestamp `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.times()`.
    pub fn time_slice(&self, t: usize) -> Matrix {
        assert!(
            t < self.times,
            "time {} out of bounds for {} times",
            t,
            self.times
        );
        Matrix::from_fn(self.nodes, self.features, |n, d| {
            self.data[self.offset(n, d, t)]
        })
    }

    /// Writes an `N × D` matrix into timestamp `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds or the matrix shape is not `N × D`.
    pub fn set_time_slice(&mut self, t: usize, values: &Matrix) {
        assert!(
            t < self.times,
            "time {} out of bounds for {} times",
            t,
            self.times
        );
        assert_eq!(
            values.shape(),
            (self.nodes, self.features),
            "time slice must be {}x{}",
            self.nodes,
            self.features
        );
        for n in 0..self.nodes {
            for d in 0..self.features {
                let off = self.offset(n, d, t);
                self.data[off] = values[(n, d)];
            }
        }
    }

    /// Extracts node `n`'s full series as a `T × D` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.nodes()`.
    pub fn node_series(&self, n: usize) -> Matrix {
        assert!(
            n < self.nodes,
            "node {} out of bounds for {} nodes",
            n,
            self.nodes
        );
        Matrix::from_fn(self.times, self.features, |t, d| {
            self.data[self.offset(n, d, t)]
        })
    }

    /// Extracts the scalar series of feature `d` for node `n`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn series(&self, n: usize, d: usize) -> Vec<f64> {
        assert!(
            n < self.nodes && d < self.features,
            "series index out of bounds"
        );
        (0..self.times)
            .map(|t| self.data[self.offset(n, d, t)])
            .collect()
    }

    /// Returns the sub-tensor covering timestamps `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.times()`.
    pub fn slice_times(&self, start: usize, end: usize) -> Tensor3 {
        assert!(
            start <= end && end <= self.times,
            "slice_times range out of bounds"
        );
        Tensor3::from_fn(self.nodes, self.features, end - start, |n, d, t| {
            self.data[self.offset(n, d, start + t)]
        })
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Tensor3 {
        Tensor3 {
            nodes: self.nodes,
            features: self.features,
            times: self.times,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two equal-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, rhs: &Tensor3, mut f: impl FnMut(f64, f64) -> f64) -> Tensor3 {
        assert_eq!(self.shape(), rhs.shape(), "zip_map shape mismatch");
        Tensor3 {
            nodes: self.nodes,
            features: self.features,
            times: self.times,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Mean of all elements; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Mean of elements selected by a same-shaped `{0,1}` mask; `None` when
    /// the mask selects nothing.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn masked_mean(&self, mask: &Tensor3) -> Option<f64> {
        assert_eq!(self.shape(), mask.shape(), "masked_mean shape mismatch");
        let mut sum = 0.0;
        let mut count = 0usize;
        for (&x, &m) in self.data.iter().zip(&mask.data) {
            if m != 0.0 {
                sum += x;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// Whether all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize, usize)> for Tensor3 {
    type Output = f64;

    fn index(&self, (n, d, t): (usize, usize, usize)) -> &f64 {
        assert!(
            n < self.nodes && d < self.features && t < self.times,
            "index ({n},{d},{t}) out of bounds for {}x{}x{}",
            self.nodes,
            self.features,
            self.times
        );
        &self.data[(n * self.features + d) * self.times + t]
    }
}

impl IndexMut<(usize, usize, usize)> for Tensor3 {
    fn index_mut(&mut self, (n, d, t): (usize, usize, usize)) -> &mut f64 {
        assert!(
            n < self.nodes && d < self.features && t < self.times,
            "index ({n},{d},{t}) out of bounds for {}x{}x{}",
            self.nodes,
            self.features,
            self.times
        );
        &mut self.data[(n * self.features + d) * self.times + t]
    }
}

impl fmt::Debug for Tensor3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor3 {}x{}x{} (mean {:.4})",
            self.nodes,
            self.features,
            self.times,
            self.mean()
        )
    }
}

impl Default for Tensor3 {
    fn default() -> Self {
        Tensor3::zeros(0, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_indexing() {
        let mut t = Tensor3::zeros(2, 3, 4);
        assert_eq!(t.shape(), (2, 3, 4));
        assert_eq!(t.len(), 24);
        t[(1, 2, 3)] = 7.0;
        assert_eq!(t[(1, 2, 3)], 7.0);
        assert_eq!(t.get(1, 2, 3), Some(7.0));
        assert_eq!(t.get(2, 0, 0), None);
    }

    #[test]
    fn from_fn_layout() {
        let t = Tensor3::from_fn(2, 2, 2, |n, d, tt| (n * 100 + d * 10 + tt) as f64);
        assert_eq!(t[(0, 0, 0)], 0.0);
        assert_eq!(t[(0, 1, 1)], 11.0);
        assert_eq!(t[(1, 0, 1)], 101.0);
    }

    #[test]
    fn time_slice_round_trip() {
        let mut t = Tensor3::zeros(2, 2, 3);
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        t.set_time_slice(1, &m);
        assert_eq!(t.time_slice(1), m);
        assert_eq!(t.time_slice(0), Matrix::zeros(2, 2));
        assert_eq!(t[(1, 0, 1)], 3.0);
    }

    #[test]
    fn node_series_and_series() {
        let t = Tensor3::from_fn(2, 2, 3, |n, d, tt| (n * 100 + d * 10 + tt) as f64);
        let s = t.node_series(1);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s[(2, 1)], 112.0);
        assert_eq!(t.series(0, 1), vec![10.0, 11.0, 12.0]);
    }

    #[test]
    fn slice_times_subrange() {
        let t = Tensor3::from_fn(1, 1, 5, |_, _, tt| tt as f64);
        let s = t.slice_times(1, 4);
        assert_eq!(s.shape(), (1, 1, 3));
        assert_eq!(s.series(0, 0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor3::ones(1, 2, 2);
        let b = a.map(|x| x * 3.0);
        assert_eq!(b[(0, 1, 1)], 3.0);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c[(0, 0, 0)], 4.0);
    }

    #[test]
    fn masked_mean_counts_only_selected() {
        let x = Tensor3::from_fn(1, 1, 4, |_, _, t| t as f64);
        let mut m = Tensor3::zeros(1, 1, 4);
        m[(0, 0, 1)] = 1.0;
        m[(0, 0, 3)] = 1.0;
        assert_eq!(x.masked_mean(&m), Some(2.0));
        let empty_mask = Tensor3::zeros(1, 1, 4);
        assert_eq!(x.masked_mean(&empty_mask), None);
    }

    #[test]
    fn empty_tensor() {
        let t = Tensor3::default();
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert!(!format!("{t:?}").is_empty());
    }
}
