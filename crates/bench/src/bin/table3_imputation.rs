//! RQ2 imputation study: RIHGCN's recurrent imputation vs the classical
//! imputers Last / KNN / MF / TD at 40% and 80% missing rates on PeMS.
//!
//! Classical imputers reconstruct the full test tensor; all methods are
//! scored on the same hidden entries against the synthetic ground truth.

use rihgcn_baselines::{cp_impute, knn_impute, last_observed_fill, matrix_factorization_impute};
use rihgcn_bench::{pems_at, print_table, rihgcn_imputation, train_rihgcn, Bench, Scale};
use st_data::ZScore;
use st_nn::{ErrorAccum, Metrics};
use st_tensor::Tensor3;
use std::time::Instant;

fn hidden_metrics(truth: &Tensor3, filled: &Tensor3, mask: &Tensor3) -> Metrics {
    let mut acc = ErrorAccum::new();
    for t in 0..truth.times() {
        let hidden = mask.time_slice(t).map(|m| 1.0 - m);
        acc.update(&filled.time_slice(t), &truth.time_slice(t), Some(&hidden));
    }
    acc.summary()
}

fn main() {
    let scale = Scale::from_env();
    let rates = [0.4, 0.8];
    let columns: Vec<String> = rates
        .iter()
        .map(|r| format!("{:.0}% missing", r * 100.0))
        .collect();
    println!("Imputation study (RQ2) — PeMS, scale `{}`", scale.name);

    let mut rows: Vec<(String, Vec<Metrics>)> = vec![
        ("Last".into(), Vec::new()),
        ("KNN".into(), Vec::new()),
        ("MF".into(), Vec::new()),
        ("TD".into(), Vec::new()),
        ("RIHGCN".into(), Vec::new()),
    ];
    for (i, &rate) in rates.iter().enumerate() {
        let ds = pems_at(&scale, rate, 400 + i as u64);
        let split = ds.split_chronological();
        let test = &split.test;
        let t0 = Instant::now();
        // Standard protocol: factorisation/distance-based imputers run in
        // normalised space (fitted on observed entries), scores in raw units.
        let z = ZScore::fit(&test.values, &test.mask);
        let norm_values = z.apply(&test.values);
        let denorm = |filled: &Tensor3| z.invert(filled);
        rows[0].1.push(hidden_metrics(
            &test.values,
            &last_observed_fill(&test.values, &test.mask),
            &test.mask,
        ));
        rows[1].1.push(hidden_metrics(
            &test.values,
            &denorm(&knn_impute(&norm_values, &test.mask, 3)),
            &test.mask,
        ));
        rows[2].1.push(hidden_metrics(
            &test.values,
            &denorm(&matrix_factorization_impute(
                &norm_values,
                &test.mask,
                4,
                15,
                41,
            )),
            &test.mask,
        ));
        rows[3].1.push(hidden_metrics(
            &test.values,
            &denorm(&cp_impute(&norm_values, &test.mask, 4, 10, 43)),
            &test.mask,
        ));
        eprintln!(
            "classical imputers at {:.0}%: {:?}",
            rate * 100.0,
            t0.elapsed()
        );

        let t1 = Instant::now();
        let bench = Bench::prepare(&ds, &scale, 12, 12);
        let model = train_rihgcn(&bench, 4, 1.0);
        rows[4].1.push(rihgcn_imputation(&model, &bench));
        eprintln!("RIHGCN at {:.0}%: {:?}", rate * 100.0, t1.elapsed());
    }
    print_table("Imputation MAE/RMSE on hidden entries", &columns, &rows);
}
