//! Minimal seeded property-testing harness.
//!
//! The workspace builds hermetically with zero registry dependencies, so
//! property-based tests cannot use `proptest`. This crate provides the small
//! subset the workspace actually needs:
//!
//! * **seeded case generation** — every case derives its input from a
//!   [`Gen`] seeded by `(suite seed, case index)`, so failures replay
//!   exactly;
//! * **configurable case count** — [`Check::cases`];
//! * **failing-input reporting** — failures panic with the case index, the
//!   replay seed, the original failing input and the shrunk input;
//! * **basic shrinking** — the [`Shrink`] trait proposes structurally
//!   smaller candidates (toward zero / shorter vectors) and the runner
//!   greedily descends while the property keeps failing.
//!
//! Properties return `Result<(), String>`; the [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assume!`] macros mirror the `proptest`
//! macros of the same names so ports are mechanical.
//!
//! # Examples
//!
//! ```
//! use st_check::{prop_assert, Check};
//!
//! Check::new("addition_commutes").cases(50).run(
//!     |g| (g.f64_in(-100.0, 100.0), g.f64_in(-100.0, 100.0)),
//!     |&(a, b)| {
//!         prop_assert!((a + b - (b + a)).abs() < 1e-12);
//!         Ok(())
//!     },
//! );
//! ```

#![warn(missing_docs)]

mod gen;
mod runner;
mod shrink;

pub use gen::Gen;
pub use runner::Check;
pub use shrink::Shrink;

/// Fails the property with a message unless the condition holds.
///
/// Inside a property body (which returns `Result<(), String>`), evaluates
/// the condition and early-returns an `Err` describing it on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Fails the property unless both expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (lhs, rhs) = (&$left, &$right);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                lhs,
                rhs
            ));
        }
    }};
}

/// Vacuously passes the case when the precondition does not hold.
///
/// Shrink candidates that fall outside a property's precondition are
/// discarded through the same path, so shrinking never "minimises" into
/// inputs the generator could not have produced.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
}
