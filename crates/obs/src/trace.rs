//! Lock-free span tracing: per-thread ring buffers, global snapshots,
//! Chrome `trace_event` export and per-span-name aggregation.
//!
//! # Design
//!
//! Each thread that opens a span owns one [`ring`](ThreadRing) of
//! [`ring_capacity`] fixed slots ([`RING_CAPACITY`] by default; the
//! `ST_OBS_RING` variable resizes it for long traced runs). Recording a
//! finished span is a handful
//! of relaxed atomic stores guarded by a per-slot sequence counter
//! (a seqlock): the writer never blocks and never allocates. A global
//! registry keeps one `Arc` per ring so any thread can [`snapshot`] all
//! of them; readers detect torn slots via the sequence counter and skip
//! them instead of waiting. Once a ring wraps, the oldest spans are
//! overwritten — the snapshot reports how many were [dropped]
//! (TraceSnapshot::dropped).
//!
//! Self time is computed exactly at record time: every thread keeps a
//! (plain, thread-local) stack of open spans; when a span closes, its
//! duration is charged to the parent's child-time accumulator, so
//! `self = total − Σ direct children` without any post-hoc tree
//! reconstruction.
//!
//! Timestamps come from one process-wide monotonic epoch
//! ([`now_ns`]), so spans from different threads share a timeline.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default spans kept per thread before the ring wraps; override with the
/// `ST_OBS_RING` environment variable (see [`ring_capacity`]).
pub const RING_CAPACITY: usize = 4096;

/// Per-thread ring capacity in slots: `ST_OBS_RING` when set to a valid
/// integer (clamped to at least 64), [`RING_CAPACITY`] otherwise. Read
/// once on first use — changing the variable later has no effect. Long
/// traced runs (a full training epoch) emit more spans than the default
/// holds; raising the ring keeps early spans (model-construction fan-outs
/// and the like) from being overwritten by wrap-around.
pub fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("ST_OBS_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(64))
            .unwrap_or(RING_CAPACITY)
    })
}

/// Maximum key/value arguments recorded per span.
pub const MAX_ARGS: usize = 4;

/// Nanoseconds since the process-wide trace epoch (first use).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One recorded span slot. All fields are atomics so concurrent snapshot
/// reads are race-free; the `seq` counter (odd while a write is in
/// flight) lets readers detect and skip torn slots.
struct Slot {
    seq: AtomicU64,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    self_ns: AtomicU64,
    argc: AtomicUsize,
    arg_name_ptr: [AtomicUsize; MAX_ARGS],
    arg_name_len: [AtomicUsize; MAX_ARGS],
    arg_val: [AtomicU64; MAX_ARGS],
}

impl Slot {
    fn new() -> Self {
        const ZU: AtomicUsize = AtomicUsize::new(0);
        const Z64: AtomicU64 = AtomicU64::new(0);
        Slot {
            seq: AtomicU64::new(0),
            name_ptr: ZU,
            name_len: ZU,
            start_ns: Z64,
            dur_ns: Z64,
            self_ns: Z64,
            argc: ZU,
            arg_name_ptr: [ZU; MAX_ARGS],
            arg_name_len: [ZU; MAX_ARGS],
            arg_val: [Z64; MAX_ARGS],
        }
    }
}

/// One thread's span ring, shared (via `Arc`) with the global registry.
struct ThreadRing {
    /// Small dense id assigned at registration (used as the Chrome `tid`).
    tid: u64,
    /// OS thread name at registration, for the Chrome thread-name row.
    thread_name: String,
    /// Total spans ever recorded; the write cursor is `head % CAPACITY`.
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl ThreadRing {
    /// Records one finished span. Only the owning thread calls this, so
    /// `head` has a single writer; the seqlock protects readers.
    fn record(&self, name: &'static str, start_ns: u64, dur_ns: u64, self_ns: u64, args: &ArgBuf) {
        let idx = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed); // odd: write in flight
        fence(Ordering::Release);
        slot.name_ptr
            .store(name.as_ptr() as usize, Ordering::Relaxed);
        slot.name_len.store(name.len(), Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.self_ns.store(self_ns, Ordering::Relaxed);
        slot.argc.store(args.len, Ordering::Relaxed);
        for i in 0..args.len {
            let (k, v) = args.entries[i];
            slot.arg_name_ptr[i].store(k.as_ptr() as usize, Ordering::Relaxed);
            slot.arg_name_len[i].store(k.len(), Ordering::Relaxed);
            slot.arg_val[i].store(v, Ordering::Relaxed);
        }
        slot.seq.store(seq.wrapping_add(2), Ordering::Release); // even: stable
        self.head.store(idx + 1, Ordering::Release);
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// An open span on the thread-local stack.
struct Frame {
    name: &'static str,
    args: ArgBuf,
    start_ns: u64,
    /// Total duration of direct children, accumulated as they close.
    child_ns: u64,
}

/// Fixed-capacity copy of a span's arguments.
#[derive(Clone, Copy)]
struct ArgBuf {
    entries: [(&'static str, u64); MAX_ARGS],
    len: usize,
}

impl ArgBuf {
    fn from_slice(args: &[(&'static str, u64)]) -> Self {
        let mut buf = ArgBuf {
            entries: [("", 0); MAX_ARGS],
            len: args.len().min(MAX_ARGS),
        };
        buf.entries[..buf.len].copy_from_slice(&args[..buf.len]);
        buf
    }
}

struct Local {
    ring: Arc<ThreadRing>,
    stack: Vec<Frame>,
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    LOCAL
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            let local = slot.get_or_insert_with(|| {
                let mut reg = registry().lock().expect("trace registry poisoned");
                let ring = Arc::new(ThreadRing {
                    tid: reg.len() as u64,
                    thread_name: std::thread::current().name().unwrap_or("?").to_string(),
                    head: AtomicU64::new(0),
                    slots: (0..ring_capacity()).map(|_| Slot::new()).collect(),
                });
                reg.push(Arc::clone(&ring));
                Local {
                    ring,
                    stack: Vec::with_capacity(32),
                }
            });
            f(local)
        })
        .ok()
}

/// RAII guard created by [`span!`](crate::span); records the span into the
/// current thread's ring when dropped.
///
/// Guards must nest (drop in reverse creation order) on the thread that
/// created them — the natural shape of `let _g = span!(...)` scoping.
pub struct SpanGuard {
    armed: bool,
    // Not Send: the guard must drop on the thread whose stack it pushed.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    /// Opens a span named `name` if tracing is enabled (see
    /// [`enabled`](crate::enabled)); otherwise returns a disarmed guard
    /// whose drop is a no-op.
    #[inline]
    pub fn begin(name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                armed: false,
                _not_send: std::marker::PhantomData,
            };
        }
        Self::begin_slow(name, args)
    }

    #[cold]
    fn begin_slow(name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
        let armed = with_local(|local| {
            local.stack.push(Frame {
                name,
                args: ArgBuf::from_slice(args),
                start_ns: now_ns(),
                child_ns: 0,
            });
        })
        .is_some();
        SpanGuard {
            armed,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let _ = with_local(|local| {
            let Some(frame) = local.stack.pop() else {
                return;
            };
            let dur_ns = now_ns().saturating_sub(frame.start_ns);
            let self_ns = dur_ns.saturating_sub(frame.child_ns);
            local
                .ring
                .record(frame.name, frame.start_ns, dur_ns, self_ns, &frame.args);
            if let Some(parent) = local.stack.last_mut() {
                parent.child_ns += dur_ns;
            }
        });
    }
}

/// Opens a tracing span for the enclosing scope.
///
/// The first argument is a `&'static str` span name (convention:
/// `layer.operation`, e.g. `"tensor.matmul"`). Up to four further
/// integer expressions are recorded as named arguments (the expression
/// text is the key). Returns a [`SpanGuard`]; bind it to a variable so
/// it drops at scope end:
///
/// ```
/// let (m, n) = (3usize, 4usize);
/// let _span = st_obs::span!("example.op", m, n);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::begin($name, &[])
    };
    ($name:expr, $($arg:expr),+ $(,)?) => {
        $crate::trace::SpanGuard::begin(
            $name,
            &[$((stringify!($arg), ($arg) as u64)),+],
        )
    };
}

/// One span read out of a ring by [`snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (the `span!` literal).
    pub name: &'static str,
    /// Dense trace-local thread id.
    pub tid: u64,
    /// Start time, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Total duration in nanoseconds.
    pub dur_ns: u64,
    /// Duration minus direct children, in nanoseconds.
    pub self_ns: u64,
    /// Named integer arguments captured at the call site.
    pub args: Vec<(&'static str, u64)>,
}

/// A point-in-time copy of every thread's ring.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All readable spans, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Per-thread `(tid, thread name)` pairs.
    pub threads: Vec<(u64, String)>,
    /// Spans lost to ring wrap-around or skipped as torn.
    pub dropped: u64,
}

/// Copies every registered thread's ring without stopping writers.
///
/// Torn slots (a writer racing the read) are skipped and counted in
/// [`TraceSnapshot::dropped`] along with spans already overwritten by
/// ring wrap-around.
pub fn snapshot() -> TraceSnapshot {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().expect("trace registry poisoned").clone();
    let mut out = TraceSnapshot::default();
    for ring in &rings {
        out.threads.push((ring.tid, ring.thread_name.clone()));
        let cap = ring.slots.len() as u64;
        let head = ring.head.load(Ordering::Acquire);
        let count = head.min(cap);
        out.dropped += head - count;
        for logical in (head - count)..head {
            let slot = &ring.slots[(logical % cap) as usize];
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 & 1 == 1 {
                out.dropped += 1;
                continue;
            }
            let name_ptr = slot.name_ptr.load(Ordering::Relaxed);
            let name_len = slot.name_len.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            let self_ns = slot.self_ns.load(Ordering::Relaxed);
            let argc = slot.argc.load(Ordering::Relaxed).min(MAX_ARGS);
            let mut raw_args = [(0usize, 0usize, 0u64); MAX_ARGS];
            for (i, raw) in raw_args.iter_mut().enumerate().take(argc) {
                *raw = (
                    slot.arg_name_ptr[i].load(Ordering::Relaxed),
                    slot.arg_name_len[i].load(Ordering::Relaxed),
                    slot.arg_val[i].load(Ordering::Relaxed),
                );
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq1 || name_ptr == 0 {
                out.dropped += 1;
                continue;
            }
            // SAFETY: name_ptr/name_len were written from a `&'static str`
            // (the span! literal) and the seqlock check above proved the
            // pair was read consistently, so the bytes are live for the
            // whole program and valid UTF-8. The same holds for arg names.
            let name = unsafe { static_str(name_ptr, name_len) };
            let args = raw_args[..argc]
                .iter()
                .map(|&(p, l, v)| (unsafe { static_str(p, l) }, v))
                .collect();
            out.spans.push(SpanRecord {
                name,
                tid: ring.tid,
                start_ns,
                dur_ns,
                self_ns,
                args,
            });
        }
    }
    out.spans.sort_by_key(|s| (s.start_ns, s.tid));
    out
}

/// # Safety
///
/// `ptr`/`len` must come from a `&'static str` read consistently (see the
/// seqlock reasoning at the call site).
unsafe fn static_str(ptr: usize, len: usize) -> &'static str {
    std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr as *const u8, len))
}

/// Discards all recorded spans (best effort: rings of live threads are
/// rewound, not freed). Mainly for tests and between benchmark phases.
pub fn reset() {
    for ring in registry().lock().expect("trace registry poisoned").iter() {
        ring.head.store(0, Ordering::Release);
    }
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAgg {
    /// Span name.
    pub name: &'static str,
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of total durations, nanoseconds.
    pub total_ns: u64,
    /// Sum of self times (total minus direct children), nanoseconds.
    pub self_ns: u64,
    /// Median duration (nearest-rank ⌈p·n⌉ convention), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile duration (nearest-rank), nanoseconds.
    pub p99_ns: u64,
}

/// Nearest-rank percentile (rank `⌈p·n⌉`, matching the workspace's
/// timing convention) over a sorted slice.
fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Groups a snapshot's spans by name, most total time first.
pub fn aggregate(snap: &TraceSnapshot) -> Vec<SpanAgg> {
    let mut by_name: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut self_by_name: BTreeMap<&'static str, u64> = BTreeMap::new();
    for s in &snap.spans {
        by_name.entry(s.name).or_default().push(s.dur_ns);
        *self_by_name.entry(s.name).or_default() += s.self_ns;
    }
    let mut out: Vec<SpanAgg> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            SpanAgg {
                name,
                count: durs.len() as u64,
                total_ns: durs.iter().sum(),
                self_ns: self_by_name[name],
                p50_ns: percentile_sorted(&durs, 0.50),
                p99_ns: percentile_sorted(&durs, 0.99),
            }
        })
        .collect();
    out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
    out
}

/// Renders an aggregate as an aligned text table (times in milliseconds).
pub fn render_table(aggs: &[SpanAgg]) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut out = format!(
        "{:<28} {:>8} {:>12} {:>12} {:>10} {:>10}\n",
        "span", "count", "total_ms", "self_ms", "p50_ms", "p99_ms"
    );
    for a in aggs {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12.3} {:>12.3} {:>10.3} {:>10.3}\n",
            a.name,
            a.count,
            ms(a.total_ns),
            ms(a.self_ns),
            ms(a.p50_ns),
            ms(a.p99_ns)
        ));
    }
    out
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders a snapshot as Chrome `trace_event` JSON (load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>). Events appear in
/// start-time order; `ts`/`dur` are microseconds with nanosecond
/// fractions.
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(128 + snap.spans.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in &snap.threads {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\""
        ));
        escape_json(name, &mut out);
        out.push_str("\"}}");
    }
    for s in &snap.spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"name\":\"");
        escape_json(s.name, &mut out);
        out.push_str(&format!(
            "\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"self_ns\":{}",
            s.tid,
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
            s.self_ns,
        ));
        for (k, v) in &s.args {
            out.push_str(",\"");
            escape_json(k, &mut out);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("}}");
    }
    out.push_str(&format!(
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_spans\":{}}}}}\n",
        snap.dropped
    ));
    out
}

/// Snapshots all rings and writes the Chrome trace to `path`, returning
/// the number of span events written.
///
/// # Errors
///
/// Propagates any I/O error from writing the file.
pub fn write_chrome_trace(path: &str) -> std::io::Result<usize> {
    let snap = snapshot();
    std::fs::write(path, chrome_trace_json(&snap))?;
    Ok(snap.spans.len())
}

/// Summary statistics returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// All events, including metadata rows.
    pub events: usize,
    /// Complete (`ph == "X"`) span events.
    pub span_events: usize,
    /// Distinct span names, sorted.
    pub names: Vec<String>,
}

impl TraceStats {
    /// Whether any span name starts with `prefix` (layer checks).
    pub fn has_prefix(&self, prefix: &str) -> bool {
        self.names.iter().any(|n| n.starts_with(prefix))
    }
}

/// Structurally validates Chrome-trace JSON: well-formed JSON, a
/// `traceEvents` array, every span event carrying a non-empty name and
/// non-negative `ts`/`dur`, with `ts` non-decreasing in file order.
///
/// # Errors
///
/// Returns a description of the first structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    use crate::json::Json;
    let root = crate::json::parse(text)?;
    let Json::Obj(fields) = &root else {
        return Err("top level is not an object".into());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?;
    let Json::Arr(events) = events else {
        return Err("traceEvents is not an array".into());
    };
    let mut stats = TraceStats {
        events: events.len(),
        span_events: 0,
        names: Vec::new(),
    };
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ev) in events.iter().enumerate() {
        let Json::Obj(ev) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |key: &str| ev.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(Json::Str(ph)) = get("ph") else {
            return Err(format!("event {i} has no ph"));
        };
        if ph != "X" {
            continue;
        }
        let Some(Json::Str(name)) = get("name") else {
            return Err(format!("event {i} has no name"));
        };
        if name.is_empty() {
            return Err(format!("event {i} has an empty name"));
        }
        let Some(Json::Num(ts)) = get("ts") else {
            return Err(format!("event {i} ({name}) has no numeric ts"));
        };
        let Some(Json::Num(dur)) = get("dur") else {
            return Err(format!("event {i} ({name}) has no numeric dur"));
        };
        if !ts.is_finite() || *ts < 0.0 || !dur.is_finite() || *dur < 0.0 {
            return Err(format!("event {i} ({name}) has negative ts/dur"));
        }
        if *ts < last_ts {
            return Err(format!(
                "event {i} ({name}) breaks ts monotonicity ({ts} after {last_ts})"
            ));
        }
        last_ts = *ts;
        stats.span_events += 1;
        if !stats.names.iter().any(|n| n == name) {
            stats.names.push(name.clone());
        }
    }
    stats.names.sort();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialise tests that toggle the global enabled flag / rings.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = LOCK.lock().unwrap();
        crate::set_enabled(false);
        reset();
        {
            let _s = crate::span!("test.disabled");
        }
        assert!(snapshot().spans.iter().all(|s| s.name != "test.disabled"));
    }

    #[test]
    fn nested_spans_compute_self_time_and_args() {
        let _g = LOCK.lock().unwrap();
        crate::set_enabled(true);
        reset();
        {
            let _outer = crate::span!("test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let k = 7usize;
                let _inner = crate::span!("test.inner", k);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        crate::set_enabled(false);
        let snap = snapshot();
        let outer = snap.spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(inner.args, vec![("k", 7u64)]);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(
            outer.self_ns <= outer.dur_ns - inner.dur_ns,
            "outer self {} vs dur {} inner {}",
            outer.self_ns,
            outer.dur_ns,
            inner.dur_ns
        );
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn spans_from_many_threads_share_one_timeline() {
        let _g = LOCK.lock().unwrap();
        crate::set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _s = crate::span!("test.worker");
                });
            }
        });
        crate::set_enabled(false);
        let snap = snapshot();
        let workers: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.name == "test.worker")
            .collect();
        assert_eq!(workers.len(), 4);
        let tids: std::collections::BTreeSet<u64> = workers.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4, "each thread gets its own ring");
        // Sorted by start time.
        for w in snap.spans.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let _g = LOCK.lock().unwrap();
        crate::set_enabled(true);
        reset();
        for _ in 0..ring_capacity() + 10 {
            let _s = crate::span!("test.wrap");
        }
        crate::set_enabled(false);
        let snap = snapshot();
        assert!(snap.dropped >= 10);
        assert!(snap.spans.iter().filter(|s| s.name == "test.wrap").count() <= ring_capacity());
    }

    #[test]
    fn chrome_json_round_trips_the_validator() {
        let _g = LOCK.lock().unwrap();
        crate::set_enabled(true);
        reset();
        {
            let n = 3usize;
            let _a = crate::span!("test.json", n);
        }
        {
            let _b = crate::span!("test.json2");
        }
        crate::set_enabled(false);
        let json = chrome_trace_json(&snapshot());
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert!(stats.span_events >= 2);
        assert!(stats.has_prefix("test."));
        assert!(stats.names.iter().any(|n| n == "test.json"));
    }

    #[test]
    fn aggregate_groups_and_ranks() {
        let snap = TraceSnapshot {
            spans: vec![
                SpanRecord {
                    name: "a",
                    tid: 0,
                    start_ns: 0,
                    dur_ns: 100,
                    self_ns: 60,
                    args: vec![],
                },
                SpanRecord {
                    name: "a",
                    tid: 0,
                    start_ns: 1,
                    dur_ns: 300,
                    self_ns: 300,
                    args: vec![],
                },
                SpanRecord {
                    name: "b",
                    tid: 0,
                    start_ns: 2,
                    dur_ns: 50,
                    self_ns: 50,
                    args: vec![],
                },
            ],
            threads: vec![(0, "t".into())],
            dropped: 0,
        };
        let aggs = aggregate(&snap);
        assert_eq!(aggs[0].name, "a");
        assert_eq!(aggs[0].count, 2);
        assert_eq!(aggs[0].total_ns, 400);
        assert_eq!(aggs[0].self_ns, 360);
        assert_eq!(aggs[0].p50_ns, 100); // nearest rank ⌈0.5·2⌉ = 1st
        assert_eq!(aggs[0].p99_ns, 300);
        assert_eq!(aggs[1].name, "b");
        let table = render_table(&aggs);
        assert!(table.contains("p99_ms"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":0}").is_err());
        let bad_ts = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":5,\"dur\":1},{\"name\":\"y\",\"ph\":\"X\",\"ts\":1,\"dur\":1}]}";
        let err = validate_chrome_trace(bad_ts).unwrap_err();
        assert!(err.contains("monotonicity"), "{err}");
    }
}
