//! Property runner: case loop, failure reporting and shrink descent.

use crate::{Gen, Shrink};
use st_tensor::splitmix64;
use std::fmt::Debug;

/// Default number of cases per property.
const DEFAULT_CASES: usize = 100;

/// Default bound on total shrink attempts per failure.
const DEFAULT_MAX_SHRINK_ITERS: usize = 1024;

/// Suite seed used unless overridden; arbitrary but fixed so every CI run
/// tests the same inputs.
const DEFAULT_SEED: u64 = 0x5EED_CA5E;

/// One property check: a name, a case budget and a seed.
///
/// # Examples
///
/// ```
/// use st_check::{prop_assert, Check};
///
/// Check::new("reverse_twice_is_identity").cases(32).run(
///     |g| {
///         let len = g.usize_in(0, 16);
///         g.vec_f64(len, -5.0, 5.0)
///     },
///     |v| {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         prop_assert!(w == *v);
///         Ok(())
///     },
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Check {
    name: String,
    cases: usize,
    seed: u64,
    max_shrink_iters: usize,
}

impl Check {
    /// Creates a check with the default case count and seed.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            max_shrink_iters: DEFAULT_MAX_SHRINK_ITERS,
        }
    }

    /// Sets the number of generated cases.
    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the suite seed (each case derives its own sub-seed from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bounds the total number of shrink attempts after a failure.
    pub fn max_shrink_iters(mut self, iters: usize) -> Self {
        self.max_shrink_iters = iters;
        self
    }

    /// Runs the property over generated inputs, shrinking failures with the
    /// input type's [`Shrink`] implementation.
    ///
    /// # Panics
    ///
    /// Panics with a replayable report if any case fails.
    pub fn run<T, G, P>(self, generate: G, property: P)
    where
        T: Clone + Debug + Shrink,
        G: Fn(&mut Gen) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        self.run_with_shrink(generate, |t| t.shrink(), property);
    }

    /// Runs the property with an explicit shrinker, for input types whose
    /// structural invariants the generic [`Shrink`] candidates would break.
    ///
    /// # Panics
    ///
    /// Panics with a replayable report if any case fails.
    pub fn run_with_shrink<T, G, S, P>(self, generate: G, shrink: S, property: P)
    where
        T: Clone + Debug,
        G: Fn(&mut Gen) -> T,
        S: Fn(&T) -> Vec<T>,
        P: Fn(&T) -> Result<(), String>,
    {
        for case in 0..self.cases {
            let case_seed = case_seed(self.seed, case);
            let input = generate(&mut Gen::new(case_seed));
            if let Err(error) = property(&input) {
                let (minimal, minimal_error, steps) =
                    self.descend(input.clone(), error.clone(), &shrink, &property);
                panic!(
                    "property '{name}' failed at case {case}/{cases} (case seed {seed:#x})\n\
                     original input: {input:?}\n\
                     original error: {error}\n\
                     shrunk input ({steps} shrink steps): {minimal:?}\n\
                     shrunk error: {minimal_error}",
                    name = self.name,
                    cases = self.cases,
                    seed = case_seed,
                );
            }
        }
    }

    /// Greedy shrink descent: repeatedly move to the first candidate that
    /// still fails, until no candidate fails or the attempt budget runs out.
    fn descend<T, S, P>(
        &self,
        input: T,
        error: String,
        shrink: &S,
        property: &P,
    ) -> (T, String, usize)
    where
        T: Clone + Debug,
        S: Fn(&T) -> Vec<T>,
        P: Fn(&T) -> Result<(), String>,
    {
        let mut current = input;
        let mut current_error = error;
        let mut attempts = 0usize;
        let mut steps = 0usize;
        'descend: while attempts < self.max_shrink_iters {
            for candidate in shrink(&current) {
                attempts += 1;
                if let Err(e) = property(&candidate) {
                    current = candidate;
                    current_error = e;
                    steps += 1;
                    continue 'descend;
                }
                if attempts >= self.max_shrink_iters {
                    break 'descend;
                }
            }
            break;
        }
        (current, current_error, steps)
    }
}

/// Derives the per-case seed from the suite seed and case index.
fn case_seed(suite_seed: u64, case: usize) -> u64 {
    let mut state = suite_seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop_assert;

    #[test]
    fn passing_property_completes() {
        Check::new("tautology")
            .cases(20)
            .run(|g| g.usize_in(0, 10), |_| Ok(()));
    }

    #[test]
    fn case_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..100).map(|c| case_seed(DEFAULT_SEED, c)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn failure_reports_shrunk_input() {
        let result = std::panic::catch_unwind(|| {
            Check::new("all_below_fifty").cases(200).run(
                |g| g.usize_in(0, 1000),
                |&n| {
                    prop_assert!(n < 50, "{n} is not below 50");
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Greedy halving/decrement descent must land on the boundary case.
        assert!(msg.contains("shrunk input"), "message was: {msg}");
        assert!(msg.contains(": 50\n"), "not minimal: {msg}");
    }

    #[test]
    fn failures_replay_deterministically() {
        let run = || {
            std::panic::catch_unwind(|| {
                Check::new("big_vecs_fail").cases(50).run(
                    |g| {
                        let len = g.usize_in(0, 20);
                        g.vec_f64(len, -1.0, 1.0)
                    },
                    |v| {
                        prop_assert!(v.len() < 10);
                        Ok(())
                    },
                );
            })
        };
        let a = *run().unwrap_err().downcast::<String>().unwrap();
        let b = *run().unwrap_err().downcast::<String>().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_shrinker_preserves_invariants() {
        // Inputs must stay even; the custom shrinker only halves to even.
        let result = std::panic::catch_unwind(|| {
            Check::new("even_below_twenty").cases(100).run_with_shrink(
                |g| 2 * g.usize_in(0, 500),
                |&n| {
                    if n >= 2 {
                        vec![n - 2, n / 2 * 2 - 2]
                    } else {
                        vec![]
                    }
                },
                |&n| {
                    prop_assert!(n % 2 == 0, "shrinker broke evenness: {n}");
                    prop_assert!(n < 20);
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains(": 20\n"), "not minimal even: {msg}");
    }

    #[test]
    fn shrink_budget_is_respected() {
        // A shrinker that always proposes a failing candidate would loop
        // forever without the budget.
        let result = std::panic::catch_unwind(|| {
            Check::new("budget")
                .cases(1)
                .max_shrink_iters(17)
                .run_with_shrink(|_| 1usize, |&n| vec![n], |_| Err("always fails".into()));
        });
        assert!(result.is_err());
    }
}
