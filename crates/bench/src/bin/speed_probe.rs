//! Developer probe: wall-clock cost of dataset generation, model/graph
//! construction and one training epoch at a representative size. Use to
//! re-budget the `Scale` presets after performance-relevant changes.

use rihgcn_core::{fit, prepare_split, RihgcnConfig, RihgcnModel, TrainConfig};
use st_data::{generate_pems, PemsConfig, WindowSampler};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let ds = generate_pems(&PemsConfig {
        num_nodes: 10,
        num_days: 10,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.4, &mut st_tensor::rng(1));
    let split = ds.split_chronological();
    let (norm, _z) = prepare_split(&split);
    println!("datagen: {:?}", t0.elapsed());

    let t1 = Instant::now();
    let cfg = RihgcnConfig {
        gcn_dim: 8,
        lstm_dim: 16,
        num_temporal_graphs: 4,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&norm.train, cfg);
    println!(
        "model build (incl. DTW graphs): {:?}  params={}",
        t1.elapsed(),
        model.num_parameters()
    );

    let sampler = WindowSampler::new(12, 12, 12);
    let train: Vec<_> = sampler.sample(&norm.train);
    let val: Vec<_> = sampler.sample(&norm.val).into_iter().step_by(4).collect();
    println!("train windows: {}, val: {}", train.len(), val.len());

    let t2 = Instant::now();
    let tc = TrainConfig {
        max_epochs: 1,
        batch_size: 16,
        ..Default::default()
    };
    let report = fit(
        &mut model,
        &train[..40.min(train.len())],
        &val[..5.min(val.len())],
        &tc,
    );
    println!(
        "1 epoch on 40 samples: {:?}  loss={:?}",
        t2.elapsed(),
        report.train_losses
    );
}
