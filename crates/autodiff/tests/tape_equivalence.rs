//! Pooled-tape equivalence suite: for every `Op`, a graph built on a
//! recycled tape (`Tape::reset()` after a different, buffer-dirtying graph)
//! must produce bit-identical values and gradients to the same graph on a
//! fresh `Tape::new()` — including across two consecutive recycled passes,
//! which would expose any stale-buffer reuse (a pooled buffer whose old
//! contents leak into a new node).

use st_autodiff::{Tape, Var};
use st_tensor::{rng, uniform_matrix, Matrix};

/// A graph builder: records parameters and returns (params, scalar loss).
type Builder = fn(&mut Tape) -> (Vec<Var>, Var);

fn mat(seed: u64, r: usize, c: usize) -> Matrix {
    uniform_matrix(&mut rng(seed), r, c, -1.5, 1.5)
}

/// Strictly positive inputs for `ln` / `sqrt` / `div` denominators.
fn pos(seed: u64, r: usize, c: usize) -> Matrix {
    uniform_matrix(&mut rng(seed), r, c, 0.5, 2.0)
}

fn binary_mask(seed: u64, r: usize, c: usize) -> Matrix {
    let noise = uniform_matrix(&mut rng(seed), r, c, 0.0, 1.0);
    noise.map(|v| if v < 0.6 { 1.0 } else { 0.0 })
}

/// Bitwise snapshot of a completed backward pass.
#[derive(Debug, PartialEq, Eq)]
struct Snapshot {
    loss: u64,
    grads: Vec<Vec<u64>>,
}

fn run(tape: &mut Tape, builder: Builder) -> Snapshot {
    let (params, loss) = builder(tape);
    tape.backward(loss);
    Snapshot {
        loss: tape.value(loss)[(0, 0)].to_bits(),
        grads: params
            .iter()
            .map(|&p| {
                tape.grad_ref(p)
                    .expect("parameters always receive a gradient")
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect()
            })
            .collect(),
    }
}

/// Fills the tape's pool with buffers of shapes *different* from what the
/// cases use, then runs a backward pass, so a recycled tape starts from a
/// dirty pool rather than an empty one.
fn dirty(tape: &mut Tape) {
    let w = tape.parameter(mat(901, 7, 5));
    let x = tape.constant(mat(902, 2, 7));
    let h = tape.matmul(x, w);
    let t = tape.tanh(h);
    let neg = tape.scale(t, -3.0);
    let e = tape.exp(neg);
    let loss = tape.mean(e);
    tape.backward(loss);
}

fn cases() -> Vec<(&'static str, Builder)> {
    vec![
        ("leaf", |t| {
            let a = t.parameter(mat(1, 3, 4));
            let loss = t.sum(a);
            (vec![a], loss)
        }),
        ("add", |t| {
            let a = t.parameter(mat(2, 3, 4));
            let b = t.parameter(mat(3, 3, 4));
            let y = t.add(a, b);
            let loss = t.sum(y);
            (vec![a, b], loss)
        }),
        ("sub", |t| {
            let a = t.parameter(mat(4, 3, 4));
            let b = t.parameter(mat(5, 3, 4));
            let y = t.sub(a, b);
            let loss = t.sum(y);
            (vec![a, b], loss)
        }),
        ("mul", |t| {
            let a = t.parameter(mat(6, 3, 4));
            let b = t.parameter(mat(7, 3, 4));
            let y = t.mul(a, b);
            let loss = t.sum(y);
            (vec![a, b], loss)
        }),
        ("mul_same_operand", |t| {
            let a = t.parameter(mat(8, 3, 4));
            let y = t.mul(a, a);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("matmul", |t| {
            let a = t.parameter(mat(9, 3, 5));
            let b = t.parameter(mat(10, 5, 2));
            let y = t.matmul(a, b);
            let loss = t.sum(y);
            (vec![a, b], loss)
        }),
        ("scale", |t| {
            let a = t.parameter(mat(11, 3, 4));
            let y = t.scale(a, -2.5);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("add_scalar", |t| {
            let a = t.parameter(mat(12, 3, 4));
            let y = t.add_scalar(a, 0.75);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("add_bias", |t| {
            let x = t.parameter(mat(13, 3, 4));
            let b = t.parameter(mat(14, 1, 4));
            let y = t.add_bias(x, b);
            let loss = t.sum(y);
            (vec![x, b], loss)
        }),
        ("sigmoid", |t| {
            let a = t.parameter(mat(15, 3, 4));
            let y = t.sigmoid(a);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("tanh", |t| {
            let a = t.parameter(mat(16, 3, 4));
            let y = t.tanh(a);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("relu", |t| {
            let a = t.parameter(mat(17, 3, 4));
            let y = t.relu(a);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("abs", |t| {
            let a = t.parameter(mat(18, 3, 4));
            let y = t.abs(a);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("concat_cols", |t| {
            let a = t.parameter(mat(19, 3, 2));
            let b = t.parameter(mat(20, 3, 5));
            let y = t.concat_cols(a, b);
            let loss = t.sum(y);
            (vec![a, b], loss)
        }),
        ("slice_cols_partial", |t| {
            let a = t.parameter(mat(21, 3, 5));
            let y = t.slice_cols(a, 1, 4);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("slice_cols_full_width", |t| {
            // start == 0 covering every column: exercises the fused
            // backward path that skips the zero-scatter entirely.
            let a = t.parameter(mat(22, 3, 5));
            let y = t.slice_cols(a, 0, 5);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("sum", |t| {
            let a = t.parameter(mat(23, 3, 4));
            let loss = t.sum(a);
            (vec![a], loss)
        }),
        ("mean", |t| {
            let a = t.parameter(mat(24, 3, 4));
            let loss = t.mean(a);
            (vec![a], loss)
        }),
        ("softmax_rows", |t| {
            let a = t.parameter(mat(25, 3, 4));
            let y = t.softmax_rows(a);
            let w = t.constant(mat(26, 3, 4));
            let m = t.mul(y, w);
            let loss = t.sum(m);
            (vec![a], loss)
        }),
        ("scale_var", |t| {
            let x = t.parameter(mat(27, 3, 4));
            let s = t.parameter(mat(28, 1, 1));
            let y = t.scale_var(x, s);
            let loss = t.sum(y);
            (vec![x, s], loss)
        }),
        ("transpose", |t| {
            let a = t.parameter(mat(29, 3, 5));
            let y = t.transpose(a);
            let w = t.constant(mat(30, 5, 3));
            let m = t.mul(y, w);
            let loss = t.sum(m);
            (vec![a], loss)
        }),
        ("exp", |t| {
            let a = t.parameter(mat(31, 3, 4));
            let y = t.exp(a);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("ln", |t| {
            let a = t.parameter(pos(32, 3, 4));
            let y = t.ln(a);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("sqrt", |t| {
            let a = t.parameter(pos(33, 3, 4));
            let y = t.sqrt(a);
            let loss = t.sum(y);
            (vec![a], loss)
        }),
        ("div", |t| {
            let a = t.parameter(mat(34, 3, 4));
            let b = t.parameter(pos(35, 3, 4));
            let y = t.div(a, b);
            let loss = t.sum(y);
            (vec![a, b], loss)
        }),
        ("masked_mae", |t| {
            let a = t.parameter(mat(36, 3, 4));
            let b = t.parameter(mat(37, 3, 4));
            let loss = t.masked_mae(a, b, &binary_mask(38, 3, 4));
            (vec![a, b], loss)
        }),
        ("masked_mae_var", |t| {
            let a = t.parameter(mat(39, 3, 4));
            let b = t.parameter(mat(40, 3, 4));
            let m = t.constant_ref(&binary_mask(41, 3, 4));
            let loss = t.masked_mae_var(a, b, m);
            (vec![a, b], loss)
        }),
        ("deep_composite", |t| {
            // A mixed graph chaining most ops, closer to a model step.
            let w1 = t.parameter(mat(42, 4, 6));
            let w2 = t.parameter(mat(43, 6, 3));
            let b = t.parameter(mat(44, 1, 6));
            let x = t.constant(mat(45, 5, 4));
            let h = t.matmul(x, w1);
            let h = t.add_bias(h, b);
            let h = t.tanh(h);
            let left = t.slice_cols(h, 0, 3);
            let right = t.slice_cols(h, 3, 6);
            let g = t.sigmoid(right);
            let gated = t.mul(left, g);
            let out = t.matmul(h, w2);
            let cat = t.concat_cols(gated, out);
            let sm = t.softmax_rows(cat);
            let loss = t.mean(sm);
            (vec![w1, w2, b], loss)
        }),
    ]
}

#[test]
fn every_op_is_bit_identical_on_a_recycled_tape() {
    for (name, builder) in cases() {
        let mut fresh = Tape::new();
        let reference = run(&mut fresh, builder);

        // Recycled pass 1: the tape has run (and backward-swept) a graph of
        // unrelated shapes, so the pool hands back dirty buffers.
        let mut tape = Tape::new();
        dirty(&mut tape);
        tape.reset();
        let first = run(&mut tape, builder);
        assert_eq!(
            first, reference,
            "{name}: recycled tape diverged from fresh tape"
        );

        // Recycled pass 2: now the pool holds buffers from the case itself —
        // any stale-content reuse shows up here.
        tape.reset();
        let second = run(&mut tape, builder);
        assert_eq!(
            second, reference,
            "{name}: second consecutive recycled pass diverged"
        );
    }
}

#[test]
fn recycled_tape_reuses_buffers() {
    let mut tape = Tape::new();
    let builder: Builder = |t| {
        let a = t.parameter(mat(50, 6, 6));
        let b = t.parameter(mat(51, 6, 6));
        let y = t.matmul(a, b);
        let s = t.sigmoid(y);
        let loss = t.mean(s);
        (vec![a, b], loss)
    };
    let _ = run(&mut tape, builder);
    let misses_after_first = tape.pool_stats().misses;
    tape.reset();
    let _ = run(&mut tape, builder);
    let stats = tape.pool_stats();
    assert_eq!(
        stats.misses, misses_after_first,
        "steady-state pass must not miss the pool"
    );
    assert!(stats.hits > 0, "steady-state pass must hit the pool");
}
