//! Imputation shoot-out: RIHGCN's learned recurrent imputation against the
//! classical imputers (last-observed, KNN, matrix factorisation, CP tensor
//! decomposition) on the same hidden entries.
//!
//! Mirrors the paper's RQ2 protocol: hide a fraction of the observations,
//! reconstruct them, score against ground truth (available exactly because
//! the dataset is synthetic).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example imputation_compare
//! ```

use rihgcn::baselines::{cp_impute, knn_impute, last_observed_fill, matrix_factorization_impute};
use rihgcn::core::{
    evaluate_imputation, fit, prepare_split, RihgcnConfig, RihgcnModel, TrainConfig,
};
use rihgcn::data::{generate_pems, PemsConfig, WindowSampler, ZScore};
use rihgcn::nn::ErrorAccum;
use rihgcn::tensor::{rng, Tensor3};

fn hidden_mae_rmse(truth: &Tensor3, filled: &Tensor3, mask: &Tensor3) -> (f64, f64) {
    let mut acc = ErrorAccum::new();
    for t in 0..truth.times() {
        let hidden = mask.time_slice(t).map(|m| 1.0 - m);
        acc.update(&filled.time_slice(t), &truth.time_slice(t), Some(&hidden));
    }
    (acc.mae(), acc.rmse())
}

fn main() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 8,
        num_days: 8,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.6, &mut rng(13));
    println!(
        "PeMS-like dataset at {:.0}% missing — reconstructing the hidden entries\n",
        ds.missing_rate() * 100.0
    );

    // Classical imputers reconstruct the test tensor; factorisation and
    // distance-based methods run in normalised space (standard protocol),
    // with scores reported in raw units.
    let split = ds.split_chronological();
    let test = &split.test;
    let zs = ZScore::fit(&test.values, &test.mask);
    let norm_values = zs.apply(&test.values);
    println!("{:<22} {:>9} {:>9}", "method", "MAE", "RMSE");
    println!("{}", "-".repeat(42));
    for (name, filled) in [
        (
            "last observed",
            last_observed_fill(&test.values, &test.mask),
        ),
        (
            "KNN (k=3)",
            zs.invert(&knn_impute(&norm_values, &test.mask, 3)),
        ),
        (
            "matrix factorisation",
            zs.invert(&matrix_factorization_impute(
                &norm_values,
                &test.mask,
                4,
                15,
                1,
            )),
        ),
        (
            "CP decomposition",
            zs.invert(&cp_impute(&norm_values, &test.mask, 4, 10, 2)),
        ),
    ] {
        let (mae, rmse) = hidden_mae_rmse(&test.values, &filled, &test.mask);
        println!("{name:<22} {mae:>9.4} {rmse:>9.4}");
    }

    // RIHGCN learns to impute jointly with forecasting.
    let (norm, z) = prepare_split(&split);
    let sampler = WindowSampler::new(12, 12, 6);
    let cfg = RihgcnConfig {
        gcn_dim: 8,
        lstm_dim: 16,
        num_temporal_graphs: 4,
        ..Default::default()
    };
    let mut model = RihgcnModel::from_dataset(&norm.train, cfg);
    let tc = TrainConfig {
        max_epochs: 10,
        patience: 3,
        ..Default::default()
    };
    fit(
        &mut model,
        &sampler.sample(&norm.train),
        &sampler.sample(&norm.val),
        &tc,
    );
    let m = evaluate_imputation(&model, &sampler.sample(&norm.test), &z);
    println!("{:<22} {:>9.4} {:>9.4}", "RIHGCN (learned)", m.mae, m.rmse);
}
