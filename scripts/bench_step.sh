#!/usr/bin/env bash
# Allocation-tracking training-step benchmark: builds the workspace and runs
# the bench_step binary, which writes BENCH_step.json (time per step, heap
# allocations and bytes per step, steady-state allocation reduction, buffer
# pool hit rate) and fails if any metric is non-finite or the steady-state
# allocation reduction falls below 90%. Extra flags (e.g. --smoke,
# --steps N) are passed straight through. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q --release --offline -p rihgcn-bench --bin bench_step -- \
    --out BENCH_step.json "$@"
