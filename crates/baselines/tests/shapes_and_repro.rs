//! Shape, finiteness and seeded-reproducibility contracts for the full
//! baseline roster: HA, VAR, STGCN-lite, DCRNN-lite, ASTGCN-lite and
//! Graph WaveNet-lite.
//!
//! Each model must (a) emit `horizon` matrices of shape
//! `num_nodes × num_features` with every entry finite, and (b) reproduce
//! its predictions bit for bit when constructed and trained again from
//! the same seed — the per-model counterpart of the whole-pipeline
//! guarantee in the workspace-level `tests/determinism.rs`.

use rihgcn_baselines::{
    mean_fill_samples, AstgcnConfig, AstgcnLite, DcrnnConfig, DcrnnLite, GraphWaveNetConfig,
    GraphWaveNetLite, HistoricalAverage, StgcnConfig, StgcnLite, VarModel,
};
use rihgcn_core::{fit, prepare_split, Forecaster, TrainConfig};
use st_data::{generate_pems, PemsConfig, TrafficDataset, WindowSample, WindowSampler};
use st_tensor::{rng, Matrix};

const NODES: usize = 4;
const FEATURES: usize = st_data::PEMS_FEATURES;
const HISTORY: usize = 6;
const HORIZON: usize = 3;

fn setup() -> (TrafficDataset, Vec<WindowSample>) {
    let ds = generate_pems(&PemsConfig {
        num_nodes: NODES,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.2, &mut rng(17));
    let (norm, _) = prepare_split(&ds.split_chronological());
    let samples = mean_fill_samples(&WindowSampler::new(HISTORY, HORIZON, 24).sample(&norm.test));
    (norm.train, samples)
}

fn assert_well_formed(name: &str, predictions: &[Matrix]) {
    assert_eq!(
        predictions.len(),
        HORIZON,
        "{name}: expected {HORIZON} horizon steps, got {}",
        predictions.len()
    );
    for (step, m) in predictions.iter().enumerate() {
        assert_eq!(
            m.shape(),
            (NODES, FEATURES),
            "{name}: bad shape at horizon step {step}"
        );
        assert!(
            m.as_slice().iter().all(|v| v.is_finite()),
            "{name}: non-finite prediction at horizon step {step}"
        );
    }
}

fn assert_bitwise_equal(name: &str, a: &[Matrix], b: &[Matrix]) {
    assert_eq!(a.len(), b.len(), "{name}: prediction counts diverged");
    for (step, (m_a, m_b)) in a.iter().zip(b).enumerate() {
        for (x, y) in m_a.as_slice().iter().zip(m_b.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}: run-to-run divergence at horizon step {step}: {x} vs {y}"
            );
        }
    }
}

/// Runs `build` twice and checks both well-formedness and bitwise
/// run-to-run agreement of the resulting predictions on every sample.
fn check_model<F>(name: &str, samples: &[WindowSample], build: F)
where
    F: Fn() -> Box<dyn Forecaster>,
{
    let first = build();
    let second = build();
    for sample in samples {
        let a = first.predict(sample);
        let b = second.predict(sample);
        assert_well_formed(name, &a);
        assert_bitwise_equal(name, &a, &b);
    }
}

#[test]
fn historical_average_shapes_and_reproducibility() {
    let (train, samples) = setup();
    check_model("HA", &samples, || {
        Box::new(HistoricalAverage::fit(&train, HORIZON))
    });
}

#[test]
fn var_shapes_and_reproducibility() {
    let (train, samples) = setup();
    check_model("VAR", &samples, || {
        Box::new(VarModel::fit(&train, 3, HORIZON).expect("VAR fit"))
    });
}

#[test]
fn stgcn_shapes_and_reproducibility() {
    let (train, samples) = setup();
    let fit_samples = samples.clone();
    check_model("STGCN", &samples, move || {
        let mut model = StgcnLite::from_dataset(
            &train,
            StgcnConfig {
                hidden_dim: 4,
                cheb_k: 2,
                history: HISTORY,
                horizon: HORIZON,
                ..Default::default()
            },
        );
        fit(
            &mut model,
            &fit_samples,
            &[],
            &TrainConfig {
                max_epochs: 1,
                batch_size: 4,
                ..Default::default()
            },
        );
        Box::new(model)
    });
}

#[test]
fn dcrnn_shapes_and_reproducibility() {
    let (train, samples) = setup();
    let fit_samples = samples.clone();
    check_model("DCRNN", &samples, move || {
        let mut model = DcrnnLite::from_dataset(
            &train,
            DcrnnConfig {
                hidden_dim: 4,
                cheb_k: 2,
                history: HISTORY,
                horizon: HORIZON,
                ..Default::default()
            },
        );
        fit(
            &mut model,
            &fit_samples,
            &[],
            &TrainConfig {
                max_epochs: 1,
                batch_size: 4,
                ..Default::default()
            },
        );
        Box::new(model)
    });
}

#[test]
fn astgcn_shapes_and_reproducibility() {
    let (train, samples) = setup();
    let fit_samples = samples.clone();
    check_model("ASTGCN", &samples, move || {
        let mut model = AstgcnLite::from_dataset(
            &train,
            AstgcnConfig {
                gcn_dim: 4,
                cheb_k: 2,
                history: HISTORY,
                horizon: HORIZON,
                ..Default::default()
            },
        );
        fit(
            &mut model,
            &fit_samples,
            &[],
            &TrainConfig {
                max_epochs: 1,
                batch_size: 4,
                ..Default::default()
            },
        );
        Box::new(model)
    });
}

#[test]
fn graph_wavenet_shapes_and_reproducibility() {
    let (train, samples) = setup();
    let fit_samples = samples.clone();
    check_model("GraphWaveNet", &samples, move || {
        let mut model = GraphWaveNetLite::from_dataset(
            &train,
            GraphWaveNetConfig {
                hidden_dim: 4,
                embed_dim: 3,
                history: HISTORY,
                horizon: HORIZON,
                ..Default::default()
            },
        );
        fit(
            &mut model,
            &fit_samples,
            &[],
            &TrainConfig {
                max_epochs: 1,
                batch_size: 4,
                ..Default::default()
            },
        );
        Box::new(model)
    });
}

#[test]
fn different_seeds_change_deep_baseline_predictions() {
    // Sanity companion to the reproducibility checks above: if the lite
    // models ignored their seeds, bitwise equality would hold vacuously.
    let (train, samples) = setup();
    let build = |seed| {
        StgcnLite::from_dataset(
            &train,
            StgcnConfig {
                hidden_dim: 4,
                cheb_k: 2,
                history: HISTORY,
                horizon: HORIZON,
                seed,
                ..Default::default()
            },
        )
    };
    let a = build(43).predict(&samples[0]);
    let b = build(44).predict(&samples[0]);
    let identical = a.iter().zip(&b).all(|(m, n)| m.as_slice() == n.as_slice());
    assert!(!identical, "changing the seed must change the predictions");
}
