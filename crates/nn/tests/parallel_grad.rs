//! Finite-difference gradient checks for the layers whose kernels run on
//! the parallel path: the blocked matmul family and the HGCN block.
//!
//! The serial and parallel code paths are bit-identical by construction
//! (the st-par determinism contract), but an indexing bug in the blocked
//! kernels would corrupt values *and* gradients — so here the analytic
//! gradients are re-verified against central differences with the
//! parallel work threshold forced low enough that every product actually
//! fans out across workers, at sizes on both sides of the threshold.

use st_autodiff::{check_gradient, Tape};
use st_graph::{gaussian_adjacency, Interval, RoadNetwork};
use st_nn::{HgcnBlock, ParamStore, Session};
use st_tensor::{rng, uniform_matrix, Matrix};

fn matmul_chain_check(n: usize, label: &str) {
    // loss(w) = mean(tanh(x·w)·wᵀ-ish chain) exercising matmul, matmul_tn
    // and matmul_nt through the tape's forward and backward sweeps.
    let x0 = uniform_matrix(&mut rng(21), n, n, -1.0, 1.0);
    let w0 = uniform_matrix(&mut rng(22), n, n, -0.5, 0.5);
    let run = |w: &Matrix| -> (f64, Matrix) {
        let mut tape = Tape::new();
        let wv = tape.parameter(w.clone());
        let x = tape.constant(x0.clone());
        let h = tape.matmul(x, wv);
        let h = tape.tanh(h);
        let h = tape.matmul(h, wv);
        let loss = tape.mean(h);
        tape.backward(loss);
        (tape.value(loss)[(0, 0)], tape.grad(wv))
    };
    let (_, analytic) = run(&w0);
    let res = check_gradient(&w0, &analytic, 1e-6, |w| run(w).0);
    assert!(
        res.passes(1e-5),
        "{label}: matmul chain grad failed: {res:?}"
    );
}

fn hgcn_check(threads: usize, label: &str) {
    st_par::set_num_threads(threads);
    let n = 5;
    let net = RoadNetwork::corridor(n, 1.0);
    let geo = gaussian_adjacency(&net.distance_matrix(), None, 0.1);
    let day = Matrix::from_fn(n, n, |i, j| if i != j { 0.8 } else { 0.0 });
    let night = Matrix::from_fn(n, n, |i, j| {
        if i != j && i.abs_diff(j) == 1 {
            0.5
        } else {
            0.0
        }
    });
    let temporal = vec![(Interval::new(72, 216), day), (Interval::new(0, 72), night)];
    let mut store = ParamStore::new();
    let block = HgcnBlock::new(
        &mut store,
        &mut rng(23),
        3,
        4,
        2,
        &geo,
        temporal,
        288,
        4.0,
        "hgcn",
    );
    let x0 = uniform_matrix(&mut rng(24), n, 3, -1.0, 1.0);

    let run = |store: &ParamStore, id: st_nn::ParamId| -> (f64, Matrix) {
        let mut sess = Session::new(store);
        let x = sess.constant(x0.clone());
        let y = block.forward(&mut sess, store, 100, x);
        let sq = sess.tape.mul(y, y);
        let loss = sess.tape.mean(sq);
        sess.backward(loss);
        let mut tmp = store.clone();
        tmp.zero_grads();
        sess.write_grads(&mut tmp);
        (sess.tape.value(loss)[(0, 0)], tmp.grad(id).clone())
    };

    // Checking every parameter would be slow under finite differences;
    // first, middle and last cover the geo GCN, a temporal GCN and the
    // interval gate.
    let ids: Vec<_> = store.ids().collect();
    let picks = [ids[0], ids[ids.len() / 2], ids[ids.len() - 1]];
    for id in picks {
        let (_, analytic) = run(&store, id);
        let res = check_gradient(store.value(id), &analytic, 1e-6, |m| {
            let mut s2 = store.clone();
            s2.set_value(id, m.clone());
            run(&s2, id).0
        });
        assert!(
            res.passes(1e-5),
            "{label}: HGCN grad for {} failed: {res:?}",
            store.name(id)
        );
    }
}

// One #[test] owns all the global-knob flipping: the parallel threshold
// and the thread override are process-wide and the harness runs tests on
// concurrent threads.
#[test]
fn gradients_are_correct_on_both_sides_of_the_parallel_threshold() {
    let saved = st_tensor::parallel_threshold();

    // Threshold between the two matmul sizes: 6³ = 216 flops stays
    // serial, 14³ = 2744 goes parallel — the same chain is checked on
    // both sides of the cut.
    st_par::set_num_threads(4);
    st_tensor::set_parallel_threshold(1000);
    matmul_chain_check(6, "below threshold (serial)");
    matmul_chain_check(14, "above threshold (parallel)");
    // 13 = 3·MR + 1 = 3·NR + 1: exercises the microkernel's row and
    // column tail paths (partial 4-wide tiles) through the whole chain.
    matmul_chain_check(13, "above threshold, tile remainder (parallel)");

    // HGCN forward: force every product through the parallel path, then
    // repeat fully serial.
    st_tensor::set_parallel_threshold(1);
    hgcn_check(4, "parallel");
    st_tensor::set_parallel_threshold(usize::MAX);
    hgcn_check(1, "serial");

    st_tensor::set_parallel_threshold(saved);
    st_par::set_num_threads(0);
}
