//! Finite-difference gradient checking.
//!
//! The correctness of the whole training stack rests on the tape computing
//! exact gradients, so every layer and the full RIHGCN cell are verified
//! against central finite differences in tests. This module hosts the shared
//! checker.

use st_tensor::Matrix;

/// Result of a gradient check: the largest absolute and relative deviation
/// between analytic and numeric gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Largest absolute difference over all parameter entries.
    pub max_abs_err: f64,
    /// Largest relative difference `|a−n| / max(1, |a|, |n|)`.
    pub max_rel_err: f64,
}

impl GradCheck {
    /// Whether both deviations are below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err.is_finite() && self.max_rel_err < tol
    }
}

/// Compares an analytic gradient against central finite differences.
///
/// `loss` evaluates the scalar objective as a function of the parameter
/// matrix; `analytic` is the gradient produced by a [`crate::Tape`] sweep for
/// the same parameter value `at`.
///
/// # Panics
///
/// Panics if `analytic` and `at` have different shapes.
pub fn check_gradient(
    at: &Matrix,
    analytic: &Matrix,
    eps: f64,
    mut loss: impl FnMut(&Matrix) -> f64,
) -> GradCheck {
    assert_eq!(at.shape(), analytic.shape(), "gradient shape mismatch");
    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    for r in 0..at.rows() {
        for c in 0..at.cols() {
            let mut plus = at.clone();
            plus[(r, c)] += eps;
            let mut minus = at.clone();
            minus[(r, c)] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let a = analytic[(r, c)];
            let abs_err = (a - numeric).abs();
            let rel_err = abs_err / a.abs().max(numeric.abs()).max(1.0);
            max_abs = max_abs.max(abs_err);
            max_rel = max_rel.max(rel_err);
        }
    }
    GradCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_correct_gradient() {
        // f(x) = sum(x²): gradient is 2x.
        let at = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let analytic = at.scale(2.0);
        let res = check_gradient(&at, &analytic, 1e-6, |m| {
            m.as_slice().iter().map(|&x| x * x).sum()
        });
        assert!(res.passes(1e-6), "unexpected failure: {res:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        let at = Matrix::from_rows(&[&[1.0, -2.0]]);
        let wrong = at.scale(3.0); // should be 2x
        let res = check_gradient(&at, &wrong, 1e-6, |m| {
            m.as_slice().iter().map(|&x| x * x).sum()
        });
        assert!(!res.passes(1e-4));
    }
}
