//! Graph Laplacians and Chebyshev polynomial propagation.
//!
//! The spectral GCN in the paper (Eq. 1) convolves node features with
//! `Σ_{k<K} θ_k T_k(L̃)` where `L̃ = (2/λ_max)·L − I` is the scaled normalized
//! Laplacian and `T_k` are Chebyshev polynomials of the first kind. This
//! module computes `L`, `L̃` and the stack `[T_0(L̃)X, …, T_{K−1}(L̃)X]` used
//! by the GCN layer.

use st_tensor::{linalg, Matrix};

/// Symmetric normalized Laplacian `L = I − D^{−1/2} A D^{−1/2}`.
///
/// Isolated nodes (zero degree) contribute an identity row/column, matching
/// the convention `D^{−1/2}_{ii} = 0` when `D_ii = 0`.
///
/// # Panics
///
/// Panics if `adjacency` is not square.
pub fn normalized_laplacian(adjacency: &Matrix) -> Matrix {
    let n = adjacency.rows();
    assert_eq!(adjacency.cols(), n, "adjacency must be square");
    let mut d_inv_sqrt = vec![0.0; n];
    for (i, d) in d_inv_sqrt.iter_mut().enumerate() {
        let deg: f64 = adjacency.row(i).iter().sum();
        *d = if deg > 0.0 { 1.0 / deg.sqrt() } else { 0.0 };
    }
    Matrix::from_fn(n, n, |i, j| {
        let norm = d_inv_sqrt[i] * adjacency[(i, j)] * d_inv_sqrt[j];
        if i == j {
            1.0 - norm
        } else {
            -norm
        }
    })
}

/// Scaled Laplacian `L̃ = (2/λ_max)·L − I`, whose spectrum lies in `[−1, 1]`.
///
/// `λ_max` is estimated by power iteration; for the normalized Laplacian it
/// is at most 2, and we clamp the estimate into `[1e-6, 2]` for robustness.
///
/// # Panics
///
/// Panics if `laplacian` is not square.
pub fn scaled_laplacian(laplacian: &Matrix) -> Matrix {
    let n = laplacian.rows();
    assert_eq!(laplacian.cols(), n, "laplacian must be square");
    let lambda_max = linalg::power_iteration_max_eig(laplacian, 200, 1e-9).clamp(1e-6, 2.0);
    let mut out = laplacian.scale(2.0 / lambda_max);
    for i in 0..n {
        out[(i, i)] -= 1.0;
    }
    out
}

/// Convenience: scaled Laplacian straight from an adjacency matrix.
///
/// # Panics
///
/// Panics if `adjacency` is not square.
pub fn scaled_laplacian_from_adjacency(adjacency: &Matrix) -> Matrix {
    scaled_laplacian(&normalized_laplacian(adjacency))
}

/// Computes the Chebyshev feature stack `[T_0(L̃)X, T_1(L̃)X, …, T_{K−1}(L̃)X]`.
///
/// Uses the recurrence `T_k(L̃)X = 2·L̃·T_{k−1}(L̃)X − T_{k−2}(L̃)X`, which
/// needs only matrix–matrix products against `X` (never materialises
/// `T_k(L̃)` itself).
///
/// # Panics
///
/// Panics if `k == 0`, `scaled` is not square, or `x.rows()` does not match
/// the node count.
pub fn chebyshev_stack(scaled: &Matrix, x: &Matrix, k: usize) -> Vec<Matrix> {
    assert!(k >= 1, "chebyshev order must be at least 1");
    let n = scaled.rows();
    assert_eq!(scaled.cols(), n, "scaled laplacian must be square");
    assert_eq!(x.rows(), n, "feature matrix must have one row per node");

    let mut stack = Vec::with_capacity(k);
    stack.push(x.clone()); // T_0 X = X
    if k >= 2 {
        stack.push(scaled.matmul(x)); // T_1 X = L̃ X
    }
    for i in 2..k {
        let next = {
            let prev = &stack[i - 1];
            let prev2 = &stack[i - 2];
            let mut t = scaled.matmul(prev).scale(2.0);
            t.axpy(-1.0, prev2);
            t
        };
        stack.push(next);
    }
    stack
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph3() -> Matrix {
        // 0 — 1 — 2 with unit weights.
        Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]])
    }

    #[test]
    fn laplacian_known_values() {
        let l = normalized_laplacian(&path_graph3());
        // Degrees: 1, 2, 1 → L_01 = −1/√2.
        assert!((l[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(0, 1)] + 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert_eq!(l[(0, 2)], 0.0);
    }

    #[test]
    fn laplacian_rows_annihilate_constant_vector_after_degree_scaling() {
        // L·D^{1/2}·1 = 0 for the symmetric normalized Laplacian.
        let a = path_graph3();
        let l = normalized_laplacian(&a);
        let d_sqrt = Matrix::col_vector(&[1.0, 2.0_f64.sqrt(), 1.0]);
        let res = l.matmul(&d_sqrt);
        assert!(res.max_abs() < 1e-12);
    }

    #[test]
    fn laplacian_handles_isolated_nodes() {
        let a = Matrix::zeros(3, 3);
        let l = normalized_laplacian(&a);
        assert_eq!(l, Matrix::identity(3));
    }

    #[test]
    fn scaled_laplacian_spectrum_in_unit_interval() {
        let l = normalized_laplacian(&path_graph3());
        let s = scaled_laplacian(&l);
        let lambda = linalg::power_iteration_max_eig(&s, 500, 1e-10);
        assert!(lambda <= 1.0 + 1e-6, "spectral radius was {lambda}");
    }

    #[test]
    fn chebyshev_stack_first_terms() {
        let l = scaled_laplacian_from_adjacency(&path_graph3());
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let stack = chebyshev_stack(&l, &x, 3);
        assert_eq!(stack.len(), 3);
        assert_eq!(stack[0], x);
        assert_eq!(stack[1], l.matmul(&x));
        let expected_t2 = {
            let mut t = l.matmul(&stack[1]).scale(2.0);
            t.axpy(-1.0, &stack[0]);
            t
        };
        assert_eq!(stack[2], expected_t2);
    }

    #[test]
    fn chebyshev_order_one_is_identity_propagation() {
        let l = scaled_laplacian_from_adjacency(&path_graph3());
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[-1.0, 0.5]]);
        let stack = chebyshev_stack(&l, &x, 1);
        assert_eq!(stack, vec![x]);
    }

    #[test]
    fn chebyshev_matches_explicit_polynomials() {
        // T_3(x) = 4x³ − 3x applied to the matrix must match the recurrence.
        let l = scaled_laplacian_from_adjacency(&path_graph3());
        let x = Matrix::identity(3);
        let stack = chebyshev_stack(&l, &x, 4);
        let l2 = l.matmul(&l);
        let l3 = l2.matmul(&l);
        let mut explicit = l3.scale(4.0);
        explicit.axpy(-3.0, &l);
        assert!(stack[3].max_abs_diff(&explicit) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn chebyshev_rejects_zero_order() {
        let l = Matrix::identity(2);
        let x = Matrix::zeros(2, 1);
        let _ = chebyshev_stack(&l, &x, 0);
    }
}
