//! Model and training configuration.

/// Hyper-parameters of the RIHGCN model.
///
/// Defaults follow the paper (§IV-B3) scaled to CPU-friendly sizes; the
/// paper's exact sizes (`gcn_dim = 64`, `lstm_dim = 128`) are available via
/// [`RihgcnConfig::paper_scale`].
///
/// # Examples
///
/// ```
/// use rihgcn_core::RihgcnConfig;
///
/// let cfg = RihgcnConfig::default()
///     .with_num_temporal_graphs(8)
///     .with_lambda(1.0);
/// assert_eq!(cfg.num_temporal_graphs, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RihgcnConfig {
    /// GCN filter count `F` (paper: 64).
    pub gcn_dim: usize,
    /// LSTM hidden width `q` (paper: 128).
    pub lstm_dim: usize,
    /// Chebyshev polynomial order `K` (paper: 3).
    pub cheb_k: usize,
    /// Number of temporal graphs `M` (paper default 4, best 8 in Fig. 4).
    pub num_temporal_graphs: usize,
    /// History window length `T` (paper: 12 = 1 hour).
    pub history: usize,
    /// Forecast horizon `T'` (paper: up to 12).
    pub horizon: usize,
    /// Imputation-loss weight `λ` (paper studies 1e-4…10; ~1 works well).
    pub lambda: f64,
    /// Temperature of the interval soft-membership weights.
    pub tau: f64,
    /// Adjacency sparsity threshold `ε` (paper: 0.1).
    pub epsilon: f64,
    /// Time-series distance used to build the temporal graphs (paper: DTW;
    /// ERP and LCSS are named as alternatives in §III-D).
    pub distance: st_graph::SeriesDistance,
    /// Whether to run the bi-directional recurrent imputation (paper: yes).
    pub bidirectional: bool,
    /// Weight of the forward/backward consistency term inside `L_m`
    /// (paper: 1; set 0 for the ablation).
    pub consistency_weight: f64,
    /// How the per-step hidden states are aggregated for prediction
    /// (paper §III-F: concatenation or attention).
    pub head: PredictionHead,
    /// Parameter-initialisation seed.
    pub seed: u64,
}

/// Aggregation of the hidden states `Z_1..Z_T` feeding the prediction FC
/// (the paper offers both: "we can concatenate hidden states Z_i in Z or
/// use attention mechanism to obtain a weighted sum").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictionHead {
    /// Concatenate all `T` hidden states (the default).
    #[default]
    Concat,
    /// Learned softmax attention over the `T` hidden states.
    Attention,
}

impl Default for RihgcnConfig {
    fn default() -> Self {
        Self {
            gcn_dim: 12,
            lstm_dim: 24,
            cheb_k: 3,
            num_temporal_graphs: 4,
            history: 12,
            horizon: 12,
            lambda: 1.0,
            tau: 6.0,
            epsilon: 0.1,
            distance: st_graph::SeriesDistance::Dtw,
            bidirectional: true,
            consistency_weight: 1.0,
            head: PredictionHead::Concat,
            seed: 17,
        }
    }
}

impl RihgcnConfig {
    /// The paper's full-size configuration (64 GCN filters, 128 LSTM units).
    pub fn paper_scale() -> Self {
        Self {
            gcn_dim: 64,
            lstm_dim: 128,
            ..Self::default()
        }
    }

    /// Sets the number of temporal graphs `M`.
    pub fn with_num_temporal_graphs(mut self, m: usize) -> Self {
        self.num_temporal_graphs = m;
        self
    }

    /// Sets the imputation-loss weight `λ`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the forecast horizon `T'`.
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the history window `T`.
    pub fn with_history(mut self, history: usize) -> Self {
        self.history = history;
        self
    }

    /// Sets the RNG seed for parameter initialisation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the backward pass (ablation).
    pub fn unidirectional(mut self) -> Self {
        self.bidirectional = false;
        self
    }

    /// Sets the consistency-term weight (0 disables the term).
    pub fn with_consistency_weight(mut self, w: f64) -> Self {
        self.consistency_weight = w;
        self
    }

    /// Selects the prediction-head aggregation.
    pub fn with_head(mut self, head: PredictionHead) -> Self {
        self.head = head;
        self
    }

    /// Selects the temporal-graph series distance (DTW / ERP / LCSS).
    pub fn with_distance(mut self, distance: st_graph::SeriesDistance) -> Self {
        self.distance = distance;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `λ`, `τ` are non-positive where
    /// positivity is required.
    pub fn validate(&self) {
        assert!(self.gcn_dim > 0, "gcn_dim must be positive");
        assert!(self.lstm_dim > 0, "lstm_dim must be positive");
        assert!(self.cheb_k > 0, "cheb_k must be positive");
        assert!(self.history > 0, "history must be positive");
        assert!(self.horizon > 0, "horizon must be positive");
        assert!(self.lambda >= 0.0, "lambda must be non-negative");
        assert!(
            self.consistency_weight >= 0.0,
            "consistency weight must be non-negative"
        );
        assert!(self.tau > 0.0, "tau must be positive");
        assert!(
            (0.0..=1.0).contains(&self.epsilon),
            "epsilon must be in [0, 1]"
        );
    }
}

/// Training-loop configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f64,
    /// Maximum epochs (early stopping usually fires first).
    pub max_epochs: usize,
    /// Samples per gradient step (paper: 64).
    pub batch_size: usize,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// Early-stopping patience in epochs (paper: 6).
    pub patience: usize,
    /// Learning-rate schedule over epochs (paper: constant).
    pub lr_schedule: st_nn::LrSchedule,
    /// Shuffling seed.
    pub seed: u64,
    /// Print per-epoch progress to stderr.
    pub verbose: bool,
    /// Worker threads for the parallel kernels: `0` inherits the ambient
    /// setting (`ST_NUM_THREADS` or available parallelism). Training
    /// results are bit-identical for any value (see the `st-par` crate).
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            max_epochs: 30,
            batch_size: 16,
            clip_norm: 5.0,
            patience: 6,
            lr_schedule: st_nn::LrSchedule::default(),
            seed: 23,
            verbose: false,
            threads: 0,
        }
    }
}

impl TrainConfig {
    /// Sets the worker-thread count (`0` = inherit the ambient setting).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range.
    pub fn validate(&self) {
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(self.max_epochs > 0, "max_epochs must be positive");
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.clip_norm > 0.0, "clip_norm must be positive");
        assert!(self.patience > 0, "patience must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        RihgcnConfig::default().validate();
        TrainConfig::default().validate();
        RihgcnConfig::paper_scale().validate();
    }

    #[test]
    fn builder_chain() {
        let cfg = RihgcnConfig::default()
            .with_num_temporal_graphs(8)
            .with_lambda(0.5)
            .with_horizon(3)
            .with_history(6)
            .with_seed(99)
            .unidirectional();
        assert_eq!(cfg.num_temporal_graphs, 8);
        assert_eq!(cfg.lambda, 0.5);
        assert_eq!(cfg.horizon, 3);
        assert_eq!(cfg.history, 6);
        assert_eq!(cfg.seed, 99);
        assert!(!cfg.bidirectional);
    }

    #[test]
    fn head_and_consistency_builders() {
        let cfg = RihgcnConfig::default()
            .with_head(PredictionHead::Attention)
            .with_consistency_weight(0.0);
        assert_eq!(cfg.head, PredictionHead::Attention);
        assert_eq!(cfg.consistency_weight, 0.0);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "tau")]
    fn invalid_tau_rejected() {
        let mut cfg = RihgcnConfig::default();
        cfg.tau = 0.0;
        cfg.validate();
    }

    #[test]
    fn threads_defaults_to_inherit() {
        assert_eq!(TrainConfig::default().threads, 0);
        assert_eq!(TrainConfig::default().with_threads(4).threads, 4);
        TrainConfig::default().with_threads(4).validate();
    }

    #[test]
    fn paper_scale_sizes() {
        let cfg = RihgcnConfig::paper_scale();
        assert_eq!(cfg.gcn_dim, 64);
        assert_eq!(cfg.lstm_dim, 128);
        assert_eq!(cfg.cheb_k, 3);
    }
}
