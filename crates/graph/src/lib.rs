//! Graph substrate for the RIHGCN reproduction.
//!
//! Everything graph-shaped that the model needs, independent of any neural
//! network code:
//!
//! * [`RoadNetwork`] — sensor/segment topology with geographic metadata;
//! * [`gaussian_adjacency`] — the paper's Eq. (8) thresholded Gaussian
//!   kernel, used for both the geographic graph and every temporal graph;
//! * [`normalized_laplacian`] / [`scaled_laplacian`] / [`chebyshev_stack`]
//!   — spectral utilities behind the Chebyshev GCN (paper Eq. 1);
//! * [`dtw`] (plus [`erp`] and [`lcss`]) — time-series distances for
//!   temporal-graph construction;
//! * [`partition_day`] — the constrained interval-partitioning solver of
//!   paper Eq. (2), and [`interval_weights`] for per-sample soft interval
//!   membership used when aggregating HGCN branches.
//!
//! # Examples
//!
//! ```
//! use st_graph::{gaussian_adjacency, scaled_laplacian_from_adjacency, RoadNetwork};
//!
//! let net = RoadNetwork::corridor(10, 1.0);
//! let adj = gaussian_adjacency(&net.distance_matrix(), None, 0.1);
//! let laplacian = scaled_laplacian_from_adjacency(&adj);
//! assert_eq!(laplacian.shape(), (10, 10));
//! ```

#![warn(missing_docs)]

mod adjacency;
mod connectivity;
mod distance;
mod intervals;
mod laplacian;
mod road;

pub use adjacency::{gaussian_adjacency, off_diagonal_std, sparsity};
pub use connectivity::{connected_components, degrees, is_connected, k_hop_neighbourhood};
pub use distance::{
    dtw, dtw_multivariate, dtw_windowed, erp, lcss, pairwise_distances, DistanceScratch,
    SeriesDistance,
};
pub use intervals::{
    interval_weights, partition_day, partition_day_circular, CircularPartition, Interval,
    IntervalConfig, Partition,
};
pub use laplacian::{
    chebyshev_stack, normalized_laplacian, scaled_laplacian, scaled_laplacian_from_adjacency,
};
pub use road::{RoadNetwork, RoadSegment};
