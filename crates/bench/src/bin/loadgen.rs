//! Load generator for the st-serve forecast service.
//!
//! Two modes:
//!
//! * `--smoke` — one client walks every route (healthz → observe×history →
//!   forecast → imputed → metrics) and fails loudly on any unexpected
//!   status or payload. Used by `scripts/ci.sh`.
//! * load mode (default) — fills the window, then `--threads K` clients
//!   each issue `--requests N` `GET /forecast` calls over keep-alive
//!   connections and the tool reports throughput and p50/p99 latency.
//! * multi-tenant mode (`--tenants N`) — discovers the tenant directory
//!   via `GET /admin/tenants`, fills the first `N` tenants' windows, then
//!   every client thread samples tenants from a Zipf(`--zipf`)
//!   distribution (seeded by `--seed`, deterministic per thread) and hits
//!   `GET /forecast?tenant=`. Reports per-shard p50/p99 plus aggregate
//!   throughput, and fails unless the per-shard request counters scraped
//!   from `/metrics` sum to the aggregate engine counter.
//!
//! `--shutdown` additionally posts `/admin/shutdown` at the end, so a
//! scripted server run terminates cleanly. Exits non-zero on any failure.

use st_serve::{shard_of, wire, HttpClient};
use st_tensor::Matrix;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);

struct Args {
    addr: String,
    threads: usize,
    requests: usize,
    tenants: usize,
    zipf: f64,
    seed: u64,
    smoke: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8100".into(),
        threads: 4,
        requests: 200,
        tenants: 0,
        zipf: 1.1,
        seed: 42,
        smoke: false,
        shutdown: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--tenants" => {
                args.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
            }
            "--zipf" => {
                args.zipf = value("--zipf")?
                    .parse()
                    .map_err(|e| format!("--zipf: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                println!(
                    "loadgen --addr HOST:PORT [--threads K] [--requests N] \
                     [--tenants N [--zipf S] [--seed S]] [--smoke] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Model facts parsed from the `/healthz` token stream
/// (`ok nodes 4 features 2 history 12 … ready false …`).
struct Health {
    nodes: usize,
    features: usize,
    history: usize,
    slots_per_day: usize,
    ready: bool,
}

fn parse_health(text: &str) -> Result<Health, String> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.first() != Some(&"ok") {
        return Err(format!("healthz did not start with ok: {text:?}"));
    }
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for pair in tokens[1..].chunks(2) {
        if let [k, v] = pair {
            fields.insert(k, v);
        }
    }
    let num = |k: &str| -> Result<usize, String> {
        fields
            .get(k)
            .ok_or_else(|| format!("healthz missing {k}: {text:?}"))?
            .parse()
            .map_err(|e| format!("healthz {k}: {e}"))
    };
    Ok(Health {
        nodes: num("nodes")?,
        features: num("features")?,
        history: num("history")?,
        slots_per_day: num("slots_per_day")?,
        ready: fields.get("ready") == Some(&"true"),
    })
}

/// Deterministic synthetic observation for step `t`: every entry observed,
/// values varying smoothly so forecasts are well-conditioned.
fn observation(t: usize, h: &Health) -> String {
    let values = Matrix::from_fn(h.nodes, h.features, |r, c| {
        40.0 + 10.0 * (((t + 1) * (r + 2) + c) as f64 * 0.37).sin()
    });
    let mask = Matrix::from_fn(h.nodes, h.features, |_, _| 1.0);
    wire::format_observation(t % h.slots_per_day, &values, &mask)
}

fn fill_window(client: &mut HttpClient, h: &Health) -> Result<(), String> {
    for t in 0..h.history {
        client.post_ok("/observe", &observation(t, h))?;
    }
    Ok(())
}

fn smoke(addr: &str) -> Result<(), String> {
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect {addr}: {e}"))?;
    let health = parse_health(&client.get_ok("/healthz")?)?;
    println!(
        "healthz: {} nodes × {} features, history {}",
        health.nodes, health.features, health.history
    );

    if !health.ready {
        // An empty window must answer 409, not hang or 500.
        let resp = client.request("GET", "/forecast", "")?;
        if resp.status != 409 {
            return Err(format!("expected 409 before fill, got {}", resp.status));
        }
        fill_window(&mut client, &health)?;
        println!("observed {} steps", health.history);
    }

    let (version, steps) = wire::parse_steps(&client.get_ok("/forecast")?)?;
    if steps.is_empty() || steps[0].shape() != (health.nodes, health.features) {
        return Err(format!(
            "forecast has unexpected shape at version {version}"
        ));
    }
    for (i, step) in steps.iter().enumerate() {
        if !step.is_finite() {
            return Err(format!("forecast step {i} has non-finite values"));
        }
    }
    println!(
        "forecast: {} steps at window version {version}",
        steps.len()
    );

    let (_, imputed) = wire::parse_steps(&client.get_ok("/imputed")?)?;
    if imputed.len() != health.history {
        return Err(format!(
            "imputed window has {} steps, expected {}",
            imputed.len(),
            health.history
        ));
    }

    let metrics = client.get_ok("/metrics")?;
    for needle in [
        "st_serve_requests_total{route=\"forecast\"}",
        "st_serve_latency_bucket{le=\"+inf\"}",
    ] {
        if !metrics.contains(needle) {
            return Err(format!("metrics missing {needle}"));
        }
    }
    println!("smoke ok");
    Ok(())
}

/// Nearest-rank percentile (see `rihgcn_bench::timing::percentile`); `0`
/// for an empty sample set. The previous `((len−1)·p).round()` indexing was
/// off by one on even sample counts (it picked the upper middle for p50).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    rihgcn_bench::timing::percentile(sorted_us, p)
}

fn load(addr: &str, threads: usize, requests: usize) -> Result<(), String> {
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect {addr}: {e}"))?;
    let health = parse_health(&client.get_ok("/healthz")?)?;
    if !health.ready {
        fill_window(&mut client, &health)?;
    }
    // See load_multi_tenant: don't hold a worker with an idle connection.
    drop(client);

    let started = Instant::now();
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let addr = addr.to_string();
        workers.push(std::thread::spawn(move || -> Result<Vec<u64>, String> {
            let mut client =
                HttpClient::connect(&addr, TIMEOUT).map_err(|e| format!("connect: {e}"))?;
            let mut latencies = Vec::with_capacity(requests);
            for _ in 0..requests {
                let t0 = Instant::now();
                client.get_ok("/forecast")?;
                latencies.push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Ok(latencies)
        }));
    }
    let mut latencies = Vec::with_capacity(threads * requests);
    for w in workers {
        latencies.extend(w.join().map_err(|_| "client thread panicked")??);
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let total = latencies.len();
    println!(
        "{total} requests over {threads} threads in {elapsed:.3}s: {:.0} req/s, \
         p50 {}us, p99 {}us",
        total as f64 / elapsed,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );
    Ok(())
}

/// Tenant directory parsed from `GET /admin/tenants`
/// (`shards 2 models 4 max_models 0` header + one `tenant NAME shard S …`
/// row per resident model, sorted by name).
struct TenantDir {
    shards: usize,
    tenants: Vec<String>,
}

fn discover_tenants(client: &mut HttpClient) -> Result<TenantDir, String> {
    let text = client.get_ok("/admin/tenants")?;
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty /admin/tenants response")?;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    let shards = match tokens.as_slice() {
        ["shards", s, ..] => s.parse().map_err(|e| format!("shards: {e}"))?,
        _ => return Err(format!("bad /admin/tenants header: {header:?}")),
    };
    let mut tenants = Vec::new();
    for line in lines {
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["tenant", name, "shard", ..] => tenants.push((*name).to_string()),
            [] => {}
            _ => return Err(format!("bad /admin/tenants row: {line:?}")),
        }
    }
    Ok(TenantDir { shards, tenants })
}

/// Cumulative distribution of Zipf weights `1/(i+1)^s` over `n` ranks.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect();
    let total: f64 = cdf.iter().sum();
    let mut acc = 0.0;
    for w in &mut cdf {
        acc += *w / total;
        *w = acc;
    }
    cdf
}

fn sample_rank(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Value of the first sample line starting with `name` in a metrics scrape.
fn metric_value(metrics: &str, name: &str) -> Result<u64, String> {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| format!("metrics missing {name}"))
}

fn load_multi_tenant(
    addr: &str,
    threads: usize,
    requests: usize,
    tenants: usize,
    zipf: f64,
    seed: u64,
) -> Result<(), String> {
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect {addr}: {e}"))?;
    let dir = discover_tenants(&mut client)?;
    if dir.tenants.len() < tenants {
        return Err(format!(
            "server has {} tenants, --tenants {tenants} requested",
            dir.tenants.len()
        ));
    }
    let names: Vec<String> = dir.tenants.into_iter().take(tenants).collect();
    for name in &names {
        let health = parse_health(&client.get_ok(&format!("/healthz?tenant={name}"))?)?;
        if !health.ready {
            for t in 0..health.history {
                client.post_ok(&format!("/observe?tenant={name}"), &observation(t, &health))?;
            }
        }
    }
    // Release the discovery connection: on a small worker pool an idle
    // keep-alive connection would otherwise hold a worker (until the
    // server's read timeout 408s it) while the load connections queue.
    drop(client);

    let cdf = zipf_cdf(names.len(), zipf);
    let started = Instant::now();
    let mut workers = Vec::with_capacity(threads);
    for idx in 0..threads {
        let addr = addr.to_string();
        let names = names.clone();
        let cdf = cdf.clone();
        let shards = dir.shards;
        workers.push(std::thread::spawn(
            move || -> Result<Vec<Vec<u64>>, String> {
                let mut client =
                    HttpClient::connect(&addr, TIMEOUT).map_err(|e| format!("connect: {e}"))?;
                let mut rng = st_tensor::rng(seed + idx as u64 * 7919);
                let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
                for _ in 0..requests {
                    let name = &names[sample_rank(&cdf, rng.gen_f64())];
                    let t0 = Instant::now();
                    client.get_ok(&format!("/forecast?tenant={name}"))?;
                    let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    per_shard[shard_of(name, shards)].push(us);
                }
                Ok(per_shard)
            },
        ));
    }
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); dir.shards];
    for w in workers {
        for (shard, latencies) in w
            .join()
            .map_err(|_| "client thread panicked")??
            .into_iter()
            .enumerate()
        {
            per_shard[shard].extend(latencies);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total: usize = per_shard.iter().map(Vec::len).sum();
    println!(
        "{total} requests over {threads} threads × {tenants} tenants (zipf {zipf}) \
         in {elapsed:.3}s: {:.0} req/s aggregate",
        total as f64 / elapsed,
    );
    for (shard, latencies) in per_shard.iter_mut().enumerate() {
        latencies.sort_unstable();
        println!(
            "shard {shard}: {} requests, p50 {}us, p99 {}us",
            latencies.len(),
            percentile(latencies, 0.50),
            percentile(latencies, 0.99),
        );
    }

    // At quiescence the per-shard request counters must sum exactly to
    // the aggregate engine counter — the registry's consistency contract.
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect for metrics: {e}"))?;
    let metrics = client.get_ok("/metrics")?;
    let mut shard_sum = 0u64;
    for shard in 0..dir.shards {
        shard_sum += metric_value(
            &metrics,
            &format!("st_serve_shard_requests_total{{shard=\"{shard}\"}}"),
        )?;
    }
    let engine_total = metric_value(&metrics, "st_serve_engine_requests_total")?;
    if shard_sum != engine_total {
        return Err(format!(
            "per-shard requests sum to {shard_sum} but engine total is {engine_total}"
        ));
    }
    println!("per-shard requests sum {shard_sum} == engine total (consistent)");
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let result = if args.smoke {
        smoke(&args.addr)
    } else if args.tenants > 0 {
        load_multi_tenant(
            &args.addr,
            args.threads.max(1),
            args.requests.max(1),
            args.tenants,
            args.zipf,
            args.seed,
        )
    } else {
        load(&args.addr, args.threads.max(1), args.requests.max(1))
    };
    if args.shutdown {
        let stop = HttpClient::connect(&args.addr, TIMEOUT)
            .map_err(|e| format!("connect for shutdown: {e}"))
            .and_then(|mut c| c.post_ok("/admin/shutdown", ""));
        if let Err(e) = stop {
            eprintln!("loadgen: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = result {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }
}
