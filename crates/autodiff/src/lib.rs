//! Reverse-mode automatic differentiation over dense matrices.
//!
//! The RIHGCN paper's central training trick — imputed values that receive
//! *delayed gradients* from losses at later timestamps — requires a dynamic
//! computation graph. This crate provides exactly that: a [`Tape`] on which
//! matrix operations are recorded in execution order and differentiated by a
//! single reverse sweep ([`Tape::backward`]).
//!
//! The operation set is deliberately small — the union of what a Chebyshev
//! GCN, an LSTM cell, attention blocks and the paper's masked L1 losses
//! need — and each backward rule is verified against finite differences in
//! the test suite (see [`check`]).
//!
//! # Examples
//!
//! ```
//! use st_autodiff::Tape;
//! use st_tensor::Matrix;
//!
//! let mut tape = Tape::new();
//! let w = tape.parameter(Matrix::from_rows(&[&[0.5], &[-1.0]]));
//! let x = tape.constant(Matrix::from_rows(&[&[2.0, 3.0]]));
//! let y = tape.matmul(x, w);           // ŷ = x · w
//! let target = tape.constant(Matrix::from_rows(&[&[1.0]]));
//! let loss = tape.mse(y, target);
//! tape.backward(loss);
//! assert_eq!(tape.grad(w).shape(), (2, 1));
//! ```

#![warn(missing_docs)]

pub mod check;
mod dot;
mod tape;

pub use check::{check_gradient, GradCheck};
pub use tape::{Tape, Var};

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::{rng, uniform_matrix, Matrix};

    fn tape_grad(at: &Matrix, build: impl Fn(&mut Tape, Var) -> Var) -> Matrix {
        let mut tape = Tape::new();
        let p = tape.parameter(at.clone());
        let loss = build(&mut tape, p);
        tape.backward(loss);
        tape.grad(p)
    }

    fn fd_check(at: &Matrix, build: impl Fn(&mut Tape, Var) -> Var + Copy) {
        let analytic = tape_grad(at, build);
        let res = check_gradient(at, &analytic, 1e-6, |m| {
            let mut tape = Tape::new();
            let p = tape.parameter(m.clone());
            let loss = build(&mut tape, p);
            tape.value(loss)[(0, 0)]
        });
        assert!(res.passes(1e-5), "gradient check failed: {res:?}");
    }

    #[test]
    fn add_backward() {
        let at = uniform_matrix(&mut rng(1), 3, 2, -1.0, 1.0);
        fd_check(&at, |t, p| {
            let c = t.constant(Matrix::filled(3, 2, 0.3));
            let s = t.add(p, c);
            let s2 = t.add(s, p);
            t.sum(s2)
        });
    }

    #[test]
    fn sub_backward() {
        let at = uniform_matrix(&mut rng(2), 2, 2, -1.0, 1.0);
        fd_check(&at, |t, p| {
            let c = t.constant(Matrix::filled(2, 2, 0.7));
            let d = t.sub(c, p);
            let sq = t.mul(d, d);
            t.sum(sq)
        });
    }

    #[test]
    fn mul_backward() {
        let at = uniform_matrix(&mut rng(3), 2, 3, 0.1, 1.0);
        fd_check(&at, |t, p| {
            let prod = t.mul(p, p);
            let prod = t.mul(prod, p); // p³
            t.mean(prod)
        });
    }

    #[test]
    fn matmul_backward_both_sides() {
        let a = uniform_matrix(&mut rng(4), 3, 4, -1.0, 1.0);
        fd_check(&a, |t, p| {
            let b = t.constant(Matrix::from_fn(4, 2, |r, c| (r + c) as f64 * 0.1));
            let m = t.matmul(p, b);
            t.sum(m)
        });
        let b = uniform_matrix(&mut rng(5), 4, 2, -1.0, 1.0);
        fd_check(&b, |t, p| {
            let a = t.constant(Matrix::from_fn(3, 4, |r, c| (r as f64 - c as f64) * 0.2));
            let m = t.matmul(a, p);
            let sq = t.mul(m, m);
            t.sum(sq)
        });
    }

    #[test]
    fn scale_and_add_scalar_backward() {
        let at = uniform_matrix(&mut rng(6), 2, 2, -1.0, 1.0);
        fd_check(&at, |t, p| {
            let s = t.scale(p, -2.5);
            let s = t.add_scalar(s, 1.0);
            let sq = t.mul(s, s);
            t.mean(sq)
        });
    }

    #[test]
    fn bias_backward() {
        let bias = uniform_matrix(&mut rng(7), 1, 3, -1.0, 1.0);
        fd_check(&bias, |t, p| {
            let x = t.constant(Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.1));
            let y = t.add_bias(x, p);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
    }

    #[test]
    fn sigmoid_backward() {
        let at = uniform_matrix(&mut rng(8), 2, 3, -2.0, 2.0);
        fd_check(&at, |t, p| {
            let y = t.sigmoid(p);
            t.sum(y)
        });
    }

    #[test]
    fn tanh_backward() {
        let at = uniform_matrix(&mut rng(9), 2, 3, -2.0, 2.0);
        fd_check(&at, |t, p| {
            let y = t.tanh(p);
            let sq = t.mul(y, y);
            t.mean(sq)
        });
    }

    #[test]
    fn relu_backward() {
        // Keep entries away from the kink at 0 (after the −1 shift below).
        let at = uniform_matrix(&mut rng(10), 2, 3, 0.2, 2.0).map(|x| {
            if (x - 1.0).abs() < 0.05 {
                1.2
            } else {
                x
            }
        });
        fd_check(&at, |t, p| {
            let shifted = t.add_scalar(p, -1.0);
            let y = t.relu(shifted);
            t.sum(y)
        });
    }

    #[test]
    fn abs_backward() {
        let at =
            uniform_matrix(&mut rng(11), 2, 3, -1.0, 1.0)
                .map(|x| if x.abs() < 0.05 { 0.1 } else { x });
        fd_check(&at, |t, p| {
            let y = t.abs(p);
            t.sum(y)
        });
    }

    #[test]
    fn concat_and_slice_backward() {
        let at = uniform_matrix(&mut rng(12), 3, 2, -1.0, 1.0);
        fd_check(&at, |t, p| {
            let c = t.constant(Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f64 * 0.3));
            let cat = t.concat_cols(p, c);
            let left = t.slice_cols(cat, 0, 2);
            let right = t.slice_cols(cat, 2, 4);
            let prod = t.mul(left, right);
            t.sum(prod)
        });
    }

    #[test]
    fn softmax_backward() {
        let at = uniform_matrix(&mut rng(13), 3, 4, -1.0, 1.0);
        fd_check(&at, |t, p| {
            let y = t.softmax_rows(p);
            let w = t.constant(Matrix::from_fn(3, 4, |r, c| {
                ((r + 1) * (c + 1)) as f64 * 0.1
            }));
            let weighted = t.mul(y, w);
            t.sum(weighted)
        });
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]));
        let y = tape.softmax_rows(x);
        let v = tape.value(y);
        for r in 0..2 {
            let s: f64 = v.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Large logits must not overflow.
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1000.0, 1001.0]]));
        let y = tape.softmax_rows(x);
        assert!(tape.value(y).is_finite());
    }

    #[test]
    fn scale_var_backward_both() {
        let x = uniform_matrix(&mut rng(14), 2, 2, -1.0, 1.0);
        fd_check(&x, |t, p| {
            let s = t.parameter(Matrix::from_rows(&[&[0.7]]));
            let y = t.scale_var(p, s);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
        let s0 = Matrix::from_rows(&[&[0.7]]);
        fd_check(&s0, |t, p| {
            let x = t.constant(Matrix::from_fn(2, 2, |r, c| (r + c) as f64 - 0.5));
            let y = t.scale_var(x, p);
            let sq = t.mul(y, y);
            t.sum(sq)
        });
    }

    #[test]
    fn transpose_backward() {
        let at = uniform_matrix(&mut rng(15), 2, 3, -1.0, 1.0);
        fd_check(&at, |t, p| {
            let pt = t.transpose(p);
            let w = t.constant(Matrix::from_fn(3, 2, |r, c| {
                (r as f64 + 1.0) * (c as f64 - 0.5)
            }));
            let prod = t.mul(pt, w);
            t.sum(prod)
        });
    }

    #[test]
    fn mae_and_mse_backward() {
        let at = uniform_matrix(&mut rng(16), 2, 3, 0.3, 1.0);
        fd_check(&at, |t, p| {
            let target = t.constant(Matrix::filled(2, 3, -0.2));
            t.mae(p, target)
        });
        fd_check(&at, |t, p| {
            let target = t.constant(Matrix::filled(2, 3, -0.2));
            t.mse(p, target)
        });
    }

    #[test]
    fn masked_mae_only_counts_mask() {
        let mut tape = Tape::new();
        let a = tape.parameter(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = tape.constant(Matrix::zeros(2, 2));
        let mask = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let loss = tape.masked_mae(a, b, &mask);
        // (|1| + |4|) / 2 = 2.5.
        assert!((tape.value(loss)[(0, 0)] - 2.5).abs() < 1e-12);
        tape.backward(loss);
        let g = tape.grad(a);
        assert_eq!(g[(0, 0)], 0.5);
        assert_eq!(g[(0, 1)], 0.0);
        assert_eq!(g[(1, 0)], 0.0);
        assert_eq!(g[(1, 1)], 0.5);
    }

    #[test]
    fn gradients_flow_through_long_chains() {
        // Simulates the "delayed gradient" pattern of recurrent imputation:
        // x_{t+1} = tanh(x_t · w); a loss only at the final step must reach w
        // through every unrolled step.
        let w0 = Matrix::from_rows(&[&[0.4, -0.3], &[0.2, 0.6]]);
        fd_check(&w0, |t, p| {
            let mut x = t.constant(Matrix::from_rows(&[&[1.0, -1.0]]));
            for _ in 0..10 {
                let h = t.matmul(x, p);
                x = t.tanh(h);
            }
            let target = t.constant(Matrix::from_rows(&[&[0.3, -0.1]]));
            t.mse(x, target)
        });
    }

    #[test]
    fn constants_do_not_accumulate_gradients() {
        let mut tape = Tape::new();
        let c = tape.constant(Matrix::ones(2, 2));
        let p = tape.parameter(Matrix::ones(2, 2));
        let y = tape.mul(c, p);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert!(!tape.needs_grad(c));
        assert_eq!(tape.grad(c), Matrix::zeros(2, 2));
        assert_eq!(tape.grad(p), Matrix::ones(2, 2));
    }

    #[test]
    fn backward_twice_accumulates() {
        let mut tape = Tape::new();
        let p = tape.parameter(Matrix::ones(1, 1));
        let y = tape.scale(p, 3.0);
        let loss = tape.sum(y);
        tape.backward(loss);
        tape.backward(loss);
        assert_eq!(tape.grad(p)[(0, 0)], 6.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new();
        let p = tape.parameter(Matrix::ones(2, 2));
        tape.backward(p);
    }

    #[test]
    fn shared_subexpression_gradients_sum() {
        // loss = sum(p + p) ⇒ dL/dp = 2 everywhere.
        let mut tape = Tape::new();
        let p = tape.parameter(Matrix::ones(2, 2));
        let y = tape.add(p, p);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_eq!(tape.grad(p), Matrix::filled(2, 2, 2.0));
    }

    #[test]
    fn exp_ln_sqrt_div_backward() {
        let at = uniform_matrix(&mut rng(21), 2, 3, 0.3, 1.5);
        fd_check(&at, |t, p| {
            let e = t.exp(p);
            t.mean(e)
        });
        fd_check(&at, |t, p| {
            let l = t.ln(p);
            let sq = t.mul(l, l);
            t.mean(sq)
        });
        fd_check(&at, |t, p| {
            let s = t.sqrt(p);
            t.sum(s)
        });
        fd_check(&at, |t, p| {
            let c = t.constant(Matrix::from_fn(2, 3, |r, q| 0.5 + (r + q) as f64 * 0.3));
            let d = t.div(p, c);
            t.mean(d)
        });
        // Gradient w.r.t. the divisor.
        fd_check(&at, |t, p| {
            let c = t.constant(Matrix::filled(2, 3, 0.8));
            let d = t.div(c, p);
            t.mean(d)
        });
    }

    #[test]
    fn domain_violations_panic() {
        let mut tape = Tape::new();
        let neg = tape.constant(Matrix::from_rows(&[&[-1.0]]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = Tape::new();
            let v = t2.constant(Matrix::from_rows(&[&[-1.0]]));
            t2.ln(v)
        }));
        assert!(result.is_err(), "ln of negative must panic");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = Tape::new();
            let v = t2.constant(Matrix::from_rows(&[&[-1.0]]));
            t2.sqrt(v)
        }));
        assert!(result.is_err(), "sqrt of negative must panic");
        let _ = neg;
        let _ = &mut tape;
    }

    #[test]
    fn lstm_style_gate_gradcheck() {
        // One LSTM-like gate built from primitives must gradcheck end-to-end.
        let w = uniform_matrix(&mut rng(17), 3, 2, -0.5, 0.5);
        fd_check(&w, |t, p| {
            let x = t.constant(Matrix::from_fn(4, 3, |r, c| {
                r as f64 * 0.3 - c as f64 * 0.2
            }));
            let b = t.constant(Matrix::from_fn(1, 2, |_, c| 0.1 * c as f64));
            let z = t.matmul(x, p);
            let z = t.add_bias(z, b);
            let f = t.sigmoid(z);
            let g = t.tanh(z);
            let h = t.mul(f, g);
            t.mean(h)
        });
    }
}
