//! Cross-thread determinism: the PR-1 guarantee (`tests/determinism.rs`)
//! extended across worker counts. Training the full model with 1, 2 and 4
//! workers from the same seed must agree bit for bit — per-epoch losses and
//! every final parameter. Three counts (not two) matter for the blocked
//! matmul kernels: 2 workers puts band boundaries in different places than
//! 4, so a band-dependent reduction order would pass a 1-vs-4 comparison
//! where both runs happen to split the same way and still be wrong.
//!
//! The parallel threshold is forced to 1 so every kernel actually takes its
//! parallel path at this tiny model size; with the default threshold the
//! 4-worker run would silently stay serial and the test would be vacuous.
//! `scripts/ci.sh` additionally runs the whole suite under
//! `ST_NUM_THREADS=1` and `ST_NUM_THREADS=4` to exercise the environment
//! path; in-process we pin the count programmatically because the
//! environment is read once and cached.

use rihgcn::core::{fit, prepare_split, RihgcnConfig, RihgcnModel, TrainConfig};
use rihgcn::data::{generate_pems, PemsConfig, WindowSampler};
use rihgcn::tensor::{rng, Matrix};

fn train_with_threads(threads: usize) -> (Vec<f64>, Vec<f64>, Vec<(String, Matrix)>) {
    rihgcn::par::set_num_threads(threads);
    let ds = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut rng(9));
    let (norm, _) = prepare_split(&ds.split_chronological());
    let sampler = WindowSampler::new(6, 3, 24);
    let train = sampler.sample(&norm.train);
    let val = sampler.sample(&norm.val);

    let mut model = RihgcnModel::from_dataset(
        &norm.train,
        RihgcnConfig {
            gcn_dim: 4,
            lstm_dim: 6,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 6,
            horizon: 3,
            ..Default::default()
        },
    );
    let tc = TrainConfig {
        max_epochs: 3,
        batch_size: 4,
        ..Default::default()
    };
    let report = fit(&mut model, &train, &val, &tc);

    let store = model.params();
    let params = store
        .ids()
        .map(|id| (store.name(id).to_string(), store.value(id).clone()))
        .collect();
    (report.train_losses, report.val_losses, params)
}

// A single #[test] owns the whole comparison: the thread count and the
// parallel threshold are process globals, and test binaries run their
// tests on concurrent threads.
#[test]
fn training_is_bitwise_identical_across_thread_counts() {
    let saved = rihgcn::tensor::parallel_threshold();
    rihgcn::tensor::set_parallel_threshold(1);

    let (train_1, val_1, params_1) = train_with_threads(1);
    let (train_2, val_2, params_2) = train_with_threads(2);
    let (train_4, val_4, params_4) = train_with_threads(4);

    rihgcn::tensor::set_parallel_threshold(saved);
    rihgcn::par::set_num_threads(0);

    for (threads, train_n, val_n, params_n) in [
        (2, &train_2, &val_2, &params_2),
        (4, &train_4, &val_4, &params_4),
    ] {
        assert_eq!(
            train_1.len(),
            train_n.len(),
            "epoch counts diverged at {threads} threads: {} vs {}",
            train_1.len(),
            train_n.len()
        );
        for (epoch, (a, b)) in train_1.iter().zip(train_n).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "train loss diverged at epoch {epoch} with {threads} threads: {a} vs {b}"
            );
        }
        for (epoch, (a, b)) in val_1.iter().zip(val_n).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "val loss diverged at epoch {epoch} with {threads} threads: {a} vs {b}"
            );
        }

        assert_eq!(
            params_1.len(),
            params_n.len(),
            "parameter counts diverged at {threads} threads"
        );
        for ((name_1, m_1), (name_n, m_n)) in params_1.iter().zip(params_n) {
            assert_eq!(name_1, name_n, "parameter order diverged");
            assert_eq!(m_1.shape(), m_n.shape(), "shape diverged for {name_1}");
            for (x, y) in m_1.as_slice().iter().zip(m_n.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "parameter {name_1} diverged between 1 and {threads} threads: {x} vs {y}"
                );
            }
        }
    }
}
