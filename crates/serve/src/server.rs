//! The HTTP front end: accept loop, fixed worker pool, tenant routing, and
//! graceful shutdown.
//!
//! ```text
//! accept thread ──► bounded conn queue ──► worker 0..K ──► shard 0..S
//!      │ (max-connections guard)              │  (bounded request queue
//!      ▼                                      ▼   per shard, micro-batched)
//!   503 when full                 HTTP parse / tenant resolve / respond
//! ```
//!
//! Inference routes take a `?tenant=` query parameter; requests without one
//! address the `default` tenant, so a single-model deployment keeps the old
//! URLs. The registry maps tenants to shards with a deterministic FNV-1a
//! hash (see [`crate::registry::shard_of`]) and handles the model
//! lifecycle: `POST /admin/load` installs or hot-swaps a checkpoint,
//! `POST /admin/unload` drops one, and `GET /admin/tenants` lists the
//! directory.
//!
//! Shutdown is SIGTERM-equivalent without signal handling (std has none):
//! anything holding a [`ShutdownHandle`] — the `/admin/shutdown` route, a
//! stdin-EOF watcher, a test — flips the shutdown flag and wakes the
//! acceptor with a self-connection. The acceptor stops taking connections
//! and drops the queue; workers drain in-flight connections and exit; each
//! shard exits once the last registry clone drops its channel sender, and
//! [`Server::join`] hands back every tenant's forecaster.

use crate::http::{self, HttpError, Request};
use crate::metrics::{Metrics, Route};
use crate::registry::{self, Registry, RegistryConfig, RegistryError, ResolvedTenant};
use crate::shard::{EngineError, ShardRequest, ENGINE_REPLY_TIMEOUT};
use crate::wire;
use rihgcn_core::OnlineForecaster;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tenant addressed by requests that carry no `?tenant=` parameter.
pub const DEFAULT_TENANT: &str = "default";

/// Tunables of the HTTP service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8100` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections. `0` follows the `st-par`
    /// convention: `ST_NUM_THREADS`, else available parallelism.
    pub workers: usize,
    /// Maximum connections queued or in flight before new ones get 503.
    pub max_connections: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Bound of each shard's request queue (backpressure depth).
    pub queue_depth: usize,
    /// Requests served per connection before it is recycled.
    pub max_requests_per_connection: usize,
    /// Engine shards; tenants route to `shard_of(name, shards)`.
    pub shards: usize,
    /// Maximum resident models (0 = unlimited); loading a new tenant at
    /// the cap evicts the least-recently-used one.
    pub max_models: usize,
    /// Maximum distinct windows a shard answers from one batched forecast
    /// run when draining a saturated queue (min 1; 1 disables batching).
    pub max_batch: usize,
    /// How long a shard may hold parked forecasts at queue-empty waiting
    /// to fill a batch (see [`RegistryConfig::batch_linger`]). Zero, the
    /// default, flushes immediately.
    pub batch_linger: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 8 << 20,
            queue_depth: 128,
            max_requests_per_connection: 10_000,
            shards: 1,
            max_models: 0,
            max_batch: 16,
            batch_linger: Duration::ZERO,
        }
    }
}

/// State shared between the acceptor, the workers and shutdown handles.
struct Shared {
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the acceptor out of its blocking accept().
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Clonable handle that triggers graceful shutdown from anywhere.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Shared>);

impl ShutdownHandle {
    /// Requests a graceful shutdown (idempotent): stop accepting, drain
    /// in-flight connections, stop the shards.
    pub fn shutdown(&self) {
        self.0.trigger_shutdown();
    }
}

/// A running forecast service.
pub struct Server {
    shared: Arc<Shared>,
    metrics: Arc<Metrics>,
    registry: Option<Registry>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a single-model service: the forecaster is loaded as the
    /// [`DEFAULT_TENANT`], so requests without `?tenant=` reach it.
    ///
    /// # Errors
    ///
    /// Returns any error binding the address or spawning threads.
    pub fn start(online: OnlineForecaster, cfg: ServeConfig) -> io::Result<Server> {
        Self::start_with_models(vec![(DEFAULT_TENANT.to_string(), online)], cfg)
    }

    /// Binds the listener, spawns the shard and worker threads, loads the
    /// given `(tenant, forecaster)` models, and starts accepting
    /// connections.
    ///
    /// # Errors
    ///
    /// Returns errors binding the address, spawning threads, or loading a
    /// model under an invalid tenant name.
    pub fn start_with_models(
        models: Vec<(String, OnlineForecaster)>,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(
            cfg.addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::other(format!("unresolvable address {}", cfg.addr)))?,
        )?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            addr,
        });
        let shards = cfg.shards.max(1);
        let metrics = Arc::new(Metrics::with_shards(shards));
        let registry = Registry::new(
            RegistryConfig {
                shards,
                max_models: cfg.max_models,
                queue_depth: cfg.queue_depth,
                max_batch: cfg.max_batch,
                batch_linger: cfg.batch_linger,
            },
            Arc::clone(&metrics),
        );
        for (tenant, online) in models {
            registry
                .load(&tenant, online)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }

        let workers_n = if cfg.workers > 0 {
            cfg.workers
        } else {
            st_par::num_threads()
        };
        let active = Arc::new(AtomicUsize::new(0));
        let (conn_tx, conn_rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(cfg.max_connections.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let conn_rx = Arc::clone(&conn_rx);
            let registry = registry.clone();
            let metrics = Arc::clone(&metrics);
            let shared = Arc::clone(&shared);
            let active = Arc::clone(&active);
            let cfg = cfg.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("st-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Take one connection, then release the lock before
                        // serving it so the other workers keep draining.
                        let stream = conn_rx.lock().expect("conn queue lock").recv();
                        let Ok(stream) = stream else { break };
                        serve_connection(stream, &registry, &metrics, &shared, &cfg);
                        active.fetch_sub(1, Ordering::SeqCst);
                    })?,
            );
        }

        let accept = {
            let shared = Arc::clone(&shared);
            let metrics = Arc::clone(&metrics);
            let max_connections = cfg.max_connections;
            std::thread::Builder::new()
                .name("st-serve-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shared.is_shutting_down() {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        if active.load(Ordering::SeqCst) >= max_connections {
                            metrics.reject_connection();
                            let _ = http::write_response(
                                &mut &stream,
                                503,
                                "connection limit reached\n",
                                false,
                            );
                            continue;
                        }
                        active.fetch_add(1, Ordering::SeqCst);
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // Dropping conn_tx here releases the workers.
                })?
        };

        Ok(Server {
            shared,
            metrics,
            registry: Some(registry),
            accept: Some(accept),
            workers,
        })
    }

    /// The address the listener is bound to (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live service counters.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle to the model registry (tenant directory, load/unload).
    /// Drop it before calling [`Server::join`] — the shards only exit once
    /// every registry clone is gone.
    pub fn registry(&self) -> Registry {
        self.registry.as_ref().expect("server is running").clone()
    }

    /// Number of model evaluations performed so far (cache misses).
    pub fn tape_runs(&self) -> u64 {
        self.metrics.total_tape_runs()
    }

    /// A handle that can trigger graceful shutdown from another thread or
    /// from the `/admin/shutdown` route.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared))
    }

    /// Blocks until a shutdown is triggered (by a [`ShutdownHandle`] or the
    /// `/admin/shutdown` route), drains connections, and joins every
    /// thread. Returns each resident tenant's forecaster with its final
    /// window state, sorted by tenant name.
    pub fn join(mut self) -> Vec<(String, OnlineForecaster)> {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let registry = self.registry.take().expect("join consumes the server once");
        let joins = registry.take_joins();
        // The last sender clones live in the registry; dropping it lets
        // every shard drain its queue and exit.
        drop(registry);
        let mut drained = Vec::new();
        for join in joins {
            drained.extend(join.join().expect("shard thread must not panic"));
        }
        drained.sort_by(|a, b| a.0.cmp(&b.0));
        drained
    }

    /// Triggers shutdown and joins; see [`Server::join`].
    pub fn shutdown(self) -> Vec<(String, OnlineForecaster)> {
        self.shared.trigger_shutdown();
        self.join()
    }
}

/// Serves one (possibly keep-alive) connection to completion.
fn serve_connection(
    stream: TcpStream,
    registry: &Registry,
    metrics: &Metrics,
    shared: &Shared,
    cfg: &ServeConfig,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    for _ in 0..cfg.max_requests_per_connection {
        let req = match http::read_request(&mut reader, cfg.max_body_bytes) {
            Ok(Some(req)) => req,
            Ok(None) => break,
            Err(e) if e.is_timeout() => {
                let _ = http::write_response(&mut writer, 408, "request timed out\n", false);
                break;
            }
            Err(HttpError::BodyTooLarge(_)) => {
                metrics.record(Route::Other, 0, true);
                let _ = http::write_response(&mut writer, 413, "request body too large\n", false);
                break;
            }
            Err(HttpError::Malformed(msg)) => {
                metrics.record(Route::Other, 0, true);
                let _ = http::write_response(&mut writer, 400, &format!("{msg}\n"), false);
                break;
            }
            Err(HttpError::Io(_)) => break,
        };

        let started = Instant::now();
        let outcome = route(&req, registry);
        let latency_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        metrics.record(outcome.route, latency_us, outcome.status >= 400);

        let keep_alive =
            !req.wants_close() && !outcome.shutdown_after && !shared.is_shutting_down();
        let mut extra: Vec<(&str, &str)> = Vec::new();
        if let Some(allow) = outcome.allow {
            extra.push(("Allow", allow));
        }
        if http::write_response_with(
            &mut writer,
            outcome.status,
            &outcome.body,
            keep_alive,
            outcome.content_type,
            &extra,
        )
        .is_err()
        {
            break;
        }
        if outcome.shutdown_after {
            shared.trigger_shutdown();
        }
        if !keep_alive {
            break;
        }
    }
}

const TEXT_PLAIN: &str = "text/plain; charset=utf-8";
const APPLICATION_JSON: &str = "application/json";

struct Outcome {
    status: u16,
    body: String,
    route: Route,
    shutdown_after: bool,
    content_type: &'static str,
    allow: Option<&'static str>,
}

impl Outcome {
    fn ok(route: Route, body: String) -> Self {
        Self {
            status: 200,
            body,
            route,
            shutdown_after: false,
            content_type: TEXT_PLAIN,
            allow: None,
        }
    }

    fn err(route: Route, status: u16, msg: String) -> Self {
        Self {
            status,
            body: msg,
            route,
            shutdown_after: false,
            content_type: TEXT_PLAIN,
            allow: None,
        }
    }

    /// 404 with a JSON error body: the tenant has no loaded model.
    fn unknown_tenant(route: Route, tenant: &str) -> Self {
        Self {
            status: 404,
            body: wire::tenant_error_json(tenant),
            route,
            shutdown_after: false,
            content_type: APPLICATION_JSON,
            allow: None,
        }
    }

    /// 405 carrying the `Allow` header for the path's supported method.
    fn method_not_allowed(allow: &'static str) -> Self {
        Self {
            status: 405,
            body: "method not allowed\n".into(),
            route: Route::Other,
            shutdown_after: false,
            content_type: TEXT_PLAIN,
            allow: Some(allow),
        }
    }
}

fn engine_failure(route: Route, e: EngineError) -> Outcome {
    match e {
        EngineError::NotReady { .. } => Outcome::err(route, 409, format!("{e}\n")),
        EngineError::Rejected(_) => Outcome::err(route, 400, format!("{e}\n")),
        EngineError::UnknownTenant(tenant) => Outcome::unknown_tenant(route, &tenant),
    }
}

/// Sends one shard request and waits for the typed reply.
fn ask<T: Send + 'static>(
    registry: &Registry,
    shard: usize,
    build: impl FnOnce(std::sync::mpsc::Sender<T>) -> ShardRequest,
) -> Result<T, String> {
    let (tx, rx) = channel();
    registry.submit(shard, build(tx))?;
    rx.recv_timeout(ENGINE_REPLY_TIMEOUT)
        .map_err(|_| "inference engine did not answer in time".to_string())
}

/// Resolves the request's tenant (`?tenant=`, defaulting to
/// [`DEFAULT_TENANT`]) against the directory.
fn resolve_tenant(
    registry: &Registry,
    query: &str,
    route: Route,
) -> Result<ResolvedTenant, Outcome> {
    let tenant = http::query_param(query, "tenant").unwrap_or(DEFAULT_TENANT);
    registry
        .resolve(tenant)
        .ok_or_else(|| Outcome::unknown_tenant(route, tenant))
}

fn route(req: &Request, registry: &Registry) -> Outcome {
    let (path, query) = http::split_target(&req.path);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let resolved = match resolve_tenant(registry, query, Route::Healthz) {
                Ok(r) => r,
                // Without an explicit tenant, an empty registry still
                // reports service-level health instead of a 404.
                Err(outcome) => {
                    if http::query_param(query, "tenant").is_none() {
                        return Outcome::ok(
                            Route::Healthz,
                            format!(
                                "ok shards {} models {}\n",
                                registry.num_shards(),
                                registry.model_count()
                            ),
                        );
                    }
                    return outcome;
                }
            };
            match ask(registry, resolved.shard, |reply| ShardRequest::Health {
                tenant: Arc::clone(&resolved.key),
                reply,
            }) {
                Ok(Ok(health)) => Outcome::ok(
                    Route::Healthz,
                    format!(
                        "ok nodes {} features {} history {} horizon {} slots_per_day {} \
                         buffered {} ready {} version {} model_version {} tenant {} shard {}\n",
                        health.info.nodes,
                        health.info.features,
                        health.info.history,
                        health.info.horizon,
                        health.info.slots_per_day,
                        health.state.buffered,
                        health.state.ready,
                        health.state.version,
                        health.model_version,
                        resolved.key,
                        resolved.shard,
                    ),
                ),
                Ok(Err(e)) => engine_failure(Route::Healthz, e),
                Err(msg) => Outcome::err(Route::Healthz, 500, format!("{msg}\n")),
            }
        }
        ("GET", "/metrics") => Outcome::ok(Route::Metrics, registry.render_metrics()),
        ("GET", "/debug/trace") => {
            // Chrome trace_event JSON of every span buffer in the process.
            // Empty (but well-formed) when tracing is off.
            let snap = st_obs::trace::snapshot();
            Outcome::ok(Route::Trace, st_obs::trace::chrome_trace_json(&snap))
        }
        ("POST", "/observe") => {
            let body = match req.body_text() {
                Ok(b) => b,
                Err(msg) => return Outcome::err(Route::Observe, 400, format!("{msg}\n")),
            };
            let resolved = match resolve_tenant(registry, query, Route::Observe) {
                Ok(r) => r,
                Err(outcome) => return outcome,
            };
            let obs =
                match wire::parse_observation(body, resolved.info.nodes, resolved.info.features) {
                    Ok(o) => o,
                    Err(msg) => return Outcome::err(Route::Observe, 400, format!("{msg}\n")),
                };
            match ask(registry, resolved.shard, |reply| ShardRequest::Observe {
                tenant: Arc::clone(&resolved.key),
                values: obs.values,
                mask: obs.mask,
                slot: obs.slot,
                reply,
            }) {
                Ok(Ok(ack)) => Outcome::ok(
                    Route::Observe,
                    format!(
                        "ok version {} buffered {} ready {}\n",
                        ack.version, ack.buffered, ack.ready
                    ),
                ),
                Ok(Err(e)) => engine_failure(Route::Observe, e),
                Err(msg) => Outcome::err(Route::Observe, 500, format!("{msg}\n")),
            }
        }
        ("GET", "/forecast") => {
            let resolved = match resolve_tenant(registry, query, Route::Forecast) {
                Ok(r) => r,
                Err(outcome) => return outcome,
            };
            match ask(registry, resolved.shard, |reply| ShardRequest::Forecast {
                tenant: Arc::clone(&resolved.key),
                reply,
            }) {
                Ok(Ok(reply)) => Outcome::ok(
                    Route::Forecast,
                    wire::format_steps(reply.version, &reply.steps),
                ),
                Ok(Err(e)) => engine_failure(Route::Forecast, e),
                Err(msg) => Outcome::err(Route::Forecast, 500, format!("{msg}\n")),
            }
        }
        ("GET", "/imputed") => {
            let resolved = match resolve_tenant(registry, query, Route::Imputed) {
                Ok(r) => r,
                Err(outcome) => return outcome,
            };
            match ask(registry, resolved.shard, |reply| ShardRequest::Imputed {
                tenant: Arc::clone(&resolved.key),
                reply,
            }) {
                Ok(Ok(reply)) => Outcome::ok(
                    Route::Imputed,
                    wire::format_steps(reply.version, &reply.steps),
                ),
                Ok(Err(e)) => engine_failure(Route::Imputed, e),
                Err(msg) => Outcome::err(Route::Imputed, 500, format!("{msg}\n")),
            }
        }
        ("POST", "/admin/load") => admin_load(req, registry),
        ("POST", "/admin/unload") => {
            let body = match req.body_text() {
                Ok(b) => b,
                Err(msg) => return Outcome::err(Route::AdminUnload, 400, format!("{msg}\n")),
            };
            let tenant = match wire::parse_admin_unload(body) {
                Ok(t) => t,
                Err(msg) => return Outcome::err(Route::AdminUnload, 400, format!("{msg}\n")),
            };
            match registry.unload(&tenant) {
                Ok(()) => Outcome::ok(Route::AdminUnload, format!("ok tenant {tenant} unloaded\n")),
                Err(RegistryError::UnknownTenant(t)) => {
                    Outcome::unknown_tenant(Route::AdminUnload, &t)
                }
                Err(e) => Outcome::err(Route::AdminUnload, 500, format!("{e}\n")),
            }
        }
        ("GET", "/admin/tenants") => {
            let rows = registry.tenants();
            let mut body = format!(
                "shards {} models {} max_models {}\n",
                registry.num_shards(),
                rows.len(),
                registry.max_models()
            );
            for row in &rows {
                body.push_str(&format!(
                    "tenant {} shard {} nodes {} features {} history {} horizon {} \
                     slots_per_day {} model_version {} requests {} tape_runs {}\n",
                    row.name,
                    row.shard,
                    row.info.nodes,
                    row.info.features,
                    row.info.history,
                    row.info.horizon,
                    row.info.slots_per_day,
                    row.counters.model_version(),
                    row.counters.requests(),
                    row.counters.tape_runs(),
                ));
            }
            Outcome::ok(Route::AdminTenants, body)
        }
        ("POST", "/admin/shutdown") => Outcome {
            status: 200,
            body: "shutting down\n".into(),
            route: Route::Shutdown,
            shutdown_after: true,
            content_type: TEXT_PLAIN,
            allow: None,
        },
        (_, "/observe" | "/admin/shutdown" | "/admin/load" | "/admin/unload") => {
            Outcome::method_not_allowed("POST")
        }
        (
            _,
            "/healthz" | "/metrics" | "/debug/trace" | "/forecast" | "/imputed" | "/admin/tenants",
        ) => Outcome::method_not_allowed("GET"),
        _ => Outcome::err(Route::Other, 404, "no such route\n".into()),
    }
}

/// `POST /admin/load`: reads a checkpoint-v2 file from the server's
/// filesystem and installs (or hot-swaps) it under the given tenant.
fn admin_load(req: &Request, registry: &Registry) -> Outcome {
    let body = match req.body_text() {
        Ok(b) => b,
        Err(msg) => return Outcome::err(Route::AdminLoad, 400, format!("{msg}\n")),
    };
    let (tenant, path) = match wire::parse_admin_load(body) {
        Ok(pair) => pair,
        Err(msg) => return Outcome::err(Route::AdminLoad, 400, format!("{msg}\n")),
    };
    if !registry::valid_tenant(&tenant) {
        return Outcome::err(
            Route::AdminLoad,
            400,
            format!("invalid tenant name {tenant:?}\n"),
        );
    }
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            return Outcome::err(Route::AdminLoad, 400, format!("open {path}: {e}\n"));
        }
    };
    let online = match OnlineForecaster::from_checkpoint(&mut BufReader::new(file)) {
        Ok(o) => o,
        Err(e) => {
            return Outcome::err(Route::AdminLoad, 400, format!("load {path}: {e}\n"));
        }
    };
    match registry.load(&tenant, online) {
        Ok(report) => Outcome::ok(
            Route::AdminLoad,
            format!(
                "ok tenant {tenant} shard {} model_version {} reloaded {} evicted {}\n",
                report.shard,
                report.model_version,
                report.reloaded,
                report.evicted.as_deref().unwrap_or("none"),
            ),
        ),
        Err(e) => Outcome::err(Route::AdminLoad, 500, format!("{e}\n")),
    }
}
