//! Property-based tests for the interval-partitioning solver.

use st_check::{prop_assert, prop_assert_eq, prop_assume, Check, Gen};
use st_graph::{partition_day, partition_day_circular, Interval, IntervalConfig};
use st_tensor::Matrix;

/// Expands 24 generated hourly levels to a smooth 288-slot day profile.
fn profile_from_hourly(hourly: &[f64]) -> Matrix {
    Matrix::from_fn(288, 1, |r, _| {
        let h = r / 12;
        let next = (h + 1) % 24;
        let frac = (r % 12) as f64 / 12.0;
        hourly[h] * (1.0 - frac) + hourly[next] * frac
    })
}

fn hourly_and_m(g: &mut Gen, m_hi: usize) -> (Vec<f64>, usize) {
    (g.vec_f64(24, 0.0, 100.0), g.usize_in(2, m_hi))
}

#[test]
fn partition_always_covers_day() {
    Check::new("partition_always_covers_day").cases(24).run(
        |g| hourly_and_m(g, 6),
        |(hourly, m)| {
            prop_assume!(hourly.len() == 24 && (2..6).contains(m));
            let profile = profile_from_hourly(hourly);
            let cfg = IntervalConfig::paper_defaults(*m);
            let p = partition_day(&[profile], &cfg);
            prop_assert_eq!(p.intervals.len(), *m);
            prop_assert_eq!(p.intervals[0].start, 0);
            prop_assert_eq!(p.intervals.last().unwrap().end, 288);
            for w in p.intervals.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            Ok(())
        },
    );
}

#[test]
fn partition_respects_length_bounds() {
    Check::new("partition_respects_length_bounds")
        .cases(24)
        .run(
            |g| hourly_and_m(g, 6),
            |(hourly, m)| {
                prop_assume!(hourly.len() == 24 && (2..6).contains(m));
                let profile = profile_from_hourly(hourly);
                let cfg = IntervalConfig::paper_defaults(*m);
                let p = partition_day(&[profile], &cfg);
                for iv in &p.intervals {
                    prop_assert!(iv.len() >= cfg.min_len);
                    prop_assert!(iv.len() <= cfg.max_len);
                    prop_assert_eq!(iv.start % cfg.candidate_step, 0);
                }
                Ok(())
            },
        );
}

#[test]
fn score_is_nonnegative_and_finite() {
    Check::new("score_is_nonnegative_and_finite").cases(24).run(
        |g| hourly_and_m(g, 5),
        |(hourly, m)| {
            prop_assume!(hourly.len() == 24 && (2..5).contains(m));
            let profile = profile_from_hourly(hourly);
            let cfg = IntervalConfig::paper_defaults(*m);
            let p = partition_day(&[profile], &cfg);
            prop_assert!(p.score.is_finite());
            prop_assert!(p.score >= 0.0);
            Ok(())
        },
    );
}

#[test]
fn circular_never_worse_than_fixed() {
    Check::new("circular_never_worse_than_fixed").cases(24).run(
        |g| hourly_and_m(g, 4),
        |(hourly, m)| {
            prop_assume!(hourly.len() == 24 && (2..4).contains(m));
            let profile = profile_from_hourly(hourly);
            let cfg = IntervalConfig::paper_defaults(*m);
            let fixed = partition_day(&[profile.clone()], &cfg);
            let circ = partition_day_circular(&[profile], &cfg);
            // Offset 0 is in the search space, so a constraint-satisfying fixed
            // solution can never beat the circular optimum.
            if fixed.constraints_satisfied {
                prop_assert!(circ.partition.score >= fixed.score - 1e-9);
            }
            prop_assert!(circ.offset < 288);
            Ok(())
        },
    );
}

#[test]
fn interval_weights_cover_every_slot() {
    Check::new("interval_weights_cover_every_slot")
        .cases(24)
        .run(
            |g| g.usize_in(0, 288),
            |&slot| {
                prop_assume!(slot < 288);
                let intervals = vec![
                    Interval::new(0, 120),
                    Interval::new(120, 204),
                    Interval::new(204, 288),
                ];
                let w = st_graph::interval_weights(slot, &intervals, 288, 6.0);
                prop_assert_eq!(w.len(), 3);
                prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                Ok(())
            },
        );
}
