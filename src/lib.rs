//! # rihgcn — traffic forecasting with missing values
//!
//! Facade crate for the from-scratch Rust reproduction of *"Heterogeneous
//! Spatio-Temporal Graph Convolution Network for Traffic Forecasting with
//! Missing Values"* (Zhong et al., ICDCS 2021).
//!
//! Re-exports the workspace's public API:
//!
//! * [`core`] — the RIHGCN model, trainer and evaluation;
//! * [`baselines`] — HA, VAR, the FC/GCN/LSTM family, ASTGCN-lite,
//!   GraphWaveNet-lite and classical imputers;
//! * [`data`] — synthetic PeMS/Stampede datasets, masking, windowing;
//! * [`graph`] — adjacency, Laplacians, DTW, interval partitioning;
//! * [`nn`] — layers and optimiser;
//! * [`obs`] — zero-dependency observability: structured tracing spans,
//!   Chrome trace export, allocation counters and a strict JSON parser;
//! * [`par`] — deterministic std-only data parallelism;
//! * [`serve`] — the std-only HTTP forecast service (checkpoints,
//!   micro-batched inference, metrics);
//! * [`autodiff`] / [`tensor`] — the numerical substrate.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` for a end-to-end train-and-forecast run:
//!
//! ```no_run
//! use rihgcn::core::{fit, prepare_split, RihgcnConfig, RihgcnModel, TrainConfig};
//! use rihgcn::data::{generate_pems, PemsConfig, WindowSampler};
//!
//! let ds = generate_pems(&PemsConfig::default());
//! let (norm, _z) = prepare_split(&ds.split_chronological());
//! let mut model = RihgcnModel::from_dataset(&norm.train, RihgcnConfig::default());
//! let sampler = WindowSampler::paper_default();
//! fit(&mut model, &sampler.sample(&norm.train), &[], &TrainConfig::default());
//! ```

#![warn(missing_docs)]

pub use rihgcn_baselines as baselines;
pub use rihgcn_core as core;
pub use st_autodiff as autodiff;
pub use st_data as data;
pub use st_graph as graph;
pub use st_nn as nn;
pub use st_obs as obs;
pub use st_par as par;
pub use st_serve as serve;
pub use st_tensor as tensor;
