//! Seeded random matrix initialisation.
//!
//! Every stochastic component in the workspace (parameter init, synthetic
//! data, masking) flows through a seeded in-tree [`StRng`] so that all
//! experiments are exactly reproducible without any external RNG crate.

use crate::{Matrix, StRng};

/// Creates a deterministic RNG from a seed.
///
/// # Examples
///
/// ```
/// let mut rng = st_tensor::rng(42);
/// let m = st_tensor::uniform_matrix(&mut rng, 2, 2, -1.0, 1.0);
/// assert!(m.as_slice().iter().all(|x| (-1.0..1.0).contains(x)));
/// ```
pub fn rng(seed: u64) -> StRng {
    StRng::seed_from_u64(seed)
}

/// Matrix with entries drawn uniformly from `[low, high)`.
///
/// # Panics
///
/// Panics if `low >= high`.
pub fn uniform_matrix(rng: &mut StRng, rows: usize, cols: usize, low: f64, high: f64) -> Matrix {
    assert!(low < high, "uniform range must satisfy low < high");
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(low..high))
}

/// Matrix with entries drawn from a normal distribution via Box–Muller.
pub fn normal_matrix(rng: &mut StRng, rows: usize, cols: usize, mean: f64, std: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * standard_normal(rng))
}

/// Xavier/Glorot uniform initialisation for a `fan_in × fan_out` weight
/// matrix: `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_matrix(rng: &mut StRng, fan_in: usize, fan_out: usize) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    uniform_matrix(rng, fan_in, fan_out, -bound, bound)
}

/// Draws one standard-normal sample using the Box–Muller transform.
pub fn standard_normal(rng: &mut StRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        let ma = uniform_matrix(&mut a, 3, 3, 0.0, 1.0);
        let mb = uniform_matrix(&mut b, 3, 3, 0.0, 1.0);
        assert_eq!(ma, mb);
    }

    #[test]
    fn different_seeds_differ() {
        let ma = uniform_matrix(&mut rng(1), 4, 4, 0.0, 1.0);
        let mb = uniform_matrix(&mut rng(2), 4, 4, 0.0, 1.0);
        assert_ne!(ma, mb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = uniform_matrix(&mut rng(3), 10, 10, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = normal_matrix(&mut rng(4), 100, 100, 2.0, 3.0);
        let mean = m.mean();
        let var = m.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 2.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let small = xavier_matrix(&mut rng(5), 2, 2);
        let big = xavier_matrix(&mut rng(5), 512, 512);
        assert!(small.max_abs() > big.max_abs());
        let bound = (6.0 / 1024.0_f64).sqrt();
        assert!(big.max_abs() <= bound);
    }
}
