//! Developer probe: checks the paper's headline ordering at a given scale
//! (HA < RIHGCN etc.) on one missing rate, faster than a full table run.

use rihgcn_baselines::BaselineKind;
use rihgcn_bench::{pems_at, run_method, Bench, Method, Scale};
use std::time::Instant;

fn main() {
    let mut scale = Scale::from_env();
    let rate: f64 = std::env::var("PROBE_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.4);
    if let Ok(e) = std::env::var("PROBE_EPOCHS") {
        scale.epochs = e.parse().unwrap_or(scale.epochs);
        scale.patience = scale.epochs;
    }
    println!(
        "ordering probe: scale `{}`, missing {rate}, epochs {}",
        scale.name, scale.epochs
    );
    let ds = pems_at(&scale, rate, 100);
    let bench = Bench::prepare(&ds, &scale, 12, 12);
    for method in [
        Method::Ha,
        Method::Baseline(BaselineKind::FcLstm),
        Method::Baseline(BaselineKind::FcLstmI),
        Method::Baseline(BaselineKind::GcnLstm),
        Method::Baseline(BaselineKind::GcnLstmI),
        Method::Rihgcn,
    ] {
        let t0 = Instant::now();
        let m = run_method(method, &bench, 4);
        println!(
            "{:<12} MAE {:.4} RMSE {:.4} ({:?})",
            method.name(),
            m.mae,
            m.rmse,
            t0.elapsed()
        );
    }
}
