//! Quick-scale smoke tests over the experiment harness: every method in the
//! roster runs end to end, and the figure-study helpers behave.

use rihgcn_bench::{
    pems_at, rihgcn_imputation, rihgcn_prediction, run_method, run_method_horizons, stampede_at,
    train_rihgcn, Bench, Method, Scale,
};

fn quick_bench() -> Bench {
    let scale = Scale::quick();
    let ds = pems_at(&scale, 0.4, 77);
    Bench::prepare(&ds, &scale, 6, 3)
}

#[test]
fn every_roster_method_produces_finite_metrics() {
    let bench = quick_bench();
    for method in Method::roster() {
        let m = run_method(method, &bench, 2);
        assert!(
            m.mae.is_finite() && m.mae > 0.0,
            "{}: MAE {}",
            method.name(),
            m.mae
        );
        assert!(
            m.rmse >= m.mae,
            "{}: RMSE {} < MAE {}",
            method.name(),
            m.rmse,
            m.mae
        );
    }
}

#[test]
fn horizon_prefixes_are_monotone_in_count() {
    let bench = quick_bench();
    let per_h = run_method_horizons(Method::Ha, &bench, 0, &[1, 2, 3]);
    assert_eq!(per_h.len(), 3);
    for m in &per_h {
        assert!(m.mae.is_finite());
    }
}

#[test]
fn rihgcn_figure_helpers() {
    let bench = quick_bench();
    let model = train_rihgcn(&bench, 2, 1.0);
    let pred = rihgcn_prediction(&model, &bench);
    let imp = rihgcn_imputation(&model, &bench);
    assert!(pred.mae.is_finite() && pred.mae > 0.0);
    assert!(imp.mae.is_finite() && imp.mae > 0.0);
}

#[test]
fn stampede_bench_prepares() {
    let scale = Scale::quick();
    let ds = stampede_at(&scale, 88);
    assert!(ds.missing_rate() > 0.5);
    let bench = Bench::prepare(&ds, &scale, 6, 3);
    assert!(!bench.train.is_empty());
    let m = run_method(Method::Ha, &bench, 0);
    assert!(m.mae.is_finite());
}

#[test]
fn scale_env_parsing() {
    // Does not set the env var (tests run in one process); just checks the
    // constructors give the documented names.
    assert_eq!(Scale::quick().name, "quick");
    assert_eq!(Scale::default_scale().name, "default");
    assert_eq!(Scale::full().name, "full");
}
