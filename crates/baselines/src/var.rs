//! Vector Autoregression — VAR(p) — baseline.
//!
//! Each variable (one per node × feature) is a linear function of the last
//! `p` values of *all* variables (paper: 3 lags), fitted by ridge-regularised
//! least squares on mean-filled training data and rolled forward recursively
//! for multi-step forecasts.

use rihgcn_core::Forecaster;
use st_data::{mean_fill, TrafficDataset, WindowSample};
use st_nn::ParamStore;
use st_tensor::{linalg, Matrix, SolveError};

/// A fitted VAR(p) model.
#[derive(Debug, Clone)]
pub struct VarModel {
    /// Coefficients, shape `(1 + p·v) × v` (first row is the intercept).
    coeffs: Matrix,
    lags: usize,
    num_nodes: usize,
    num_features: usize,
    horizon: usize,
    empty_store: ParamStore,
}

impl VarModel {
    /// Fits a VAR with `lags` lags on the mean-filled training series.
    ///
    /// # Errors
    ///
    /// Returns an error when the normal equations are unsolvable (degenerate
    /// data even under ridge).
    ///
    /// # Panics
    ///
    /// Panics if `lags == 0` or the dataset is shorter than `lags + 1`.
    pub fn fit(train: &TrafficDataset, lags: usize, horizon: usize) -> Result<Self, SolveError> {
        assert!(lags > 0, "need at least one lag");
        let t_len = train.num_times();
        assert!(t_len > lags, "dataset shorter than lag order");
        let n = train.num_nodes();
        let d = train.num_features();
        let v = n * d;

        let filled = mean_fill(&train.values, &train.mask);
        // Flatten to T × v.
        let series = Matrix::from_fn(t_len, v, |t, j| filled[(j / d, j % d, t)]);

        let rows = t_len - lags;
        let design = Matrix::from_fn(rows, 1 + lags * v, |r, c| {
            if c == 0 {
                1.0
            } else {
                let lag = (c - 1) / v + 1;
                let var = (c - 1) % v;
                series[(r + lags - lag, var)]
            }
        });
        let targets = Matrix::from_fn(rows, v, |r, c| series[(r + lags, c)]);
        let coeffs = linalg::least_squares(&design, &targets, 1e-4)?;
        Ok(Self {
            coeffs,
            lags,
            num_nodes: n,
            num_features: d,
            horizon,
            empty_store: ParamStore::new(),
        })
    }

    /// Lag order `p`.
    pub fn lags(&self) -> usize {
        self.lags
    }

    /// One-step forecast from the last `p` observations (`recent[0]` is the
    /// oldest), each a flattened `1 × v` row.
    fn step(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        let v = self.num_nodes * self.num_features;
        let mut x = Vec::with_capacity(1 + self.lags * v);
        x.push(1.0);
        // Lag 1 is the most recent observation.
        for lag in 1..=self.lags {
            x.extend_from_slice(&recent[recent.len() - lag]);
        }
        let xm = Matrix::from_vec(1, x.len(), x);
        xm.matmul(&self.coeffs).into_vec()
    }
}

impl Forecaster for VarModel {
    fn params(&self) -> &ParamStore {
        &self.empty_store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.empty_store
    }

    fn accumulate_gradients(&mut self, sample: &WindowSample) -> f64 {
        self.loss(sample)
    }

    fn loss(&self, sample: &WindowSample) -> f64 {
        let preds = self.predict(sample);
        let mut acc = st_nn::ErrorAccum::new();
        for (h, p) in preds.iter().enumerate() {
            acc.update(p, &sample.targets[h], Some(&sample.target_masks[h]));
        }
        acc.mae()
    }

    fn predict(&self, sample: &WindowSample) -> Vec<Matrix> {
        let v = self.num_nodes * self.num_features;
        // Seed the recursion with the (mean-filled) window, flattened.
        let mut recent: Vec<Vec<f64>> = sample
            .inputs
            .iter()
            .map(|m| {
                let mut row = Vec::with_capacity(v);
                for r in 0..self.num_nodes {
                    row.extend_from_slice(m.row(r));
                }
                row
            })
            .collect();
        let mut out = Vec::with_capacity(self.horizon);
        for _ in 0..self.horizon {
            let next = self.step(&recent);
            let m = Matrix::from_fn(self.num_nodes, self.num_features, |r, c| {
                next[r * self.num_features + c]
            });
            out.push(m);
            recent.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::WindowSampler;
    use st_graph::RoadNetwork;
    use st_tensor::Tensor3;

    /// Dataset following an exact VAR(1): x_t = 0.9·x_{t−1} + 0.1·y_{t−1},
    /// y_t = 0.5·y_{t−1}.
    fn var1_ds() -> TrafficDataset {
        let t_len = 400;
        let mut values = Tensor3::zeros(2, 1, t_len);
        values[(0, 0, 0)] = 1.0;
        values[(1, 0, 0)] = 2.0;
        for t in 1..t_len {
            let x = values[(0, 0, t - 1)];
            let y = values[(1, 0, t - 1)];
            values[(0, 0, t)] = 0.9 * x + 0.1 * y;
            values[(1, 0, t)] = 0.5 * y + 0.3;
        }
        let mask = Tensor3::ones(2, 1, t_len);
        TrafficDataset::new("var1", values, mask, RoadNetwork::corridor(2, 1.0), 5)
    }

    #[test]
    fn recovers_exact_linear_dynamics() {
        let ds = var1_ds();
        let model = VarModel::fit(&ds, 3, 2).unwrap();
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 100);
        let preds = model.predict(&sample);
        for (h, p) in preds.iter().enumerate() {
            let err = p.max_abs_diff(&sample.targets[h]);
            assert!(err < 1e-6, "horizon {h} error {err}");
        }
    }

    #[test]
    fn loss_is_near_zero_on_exact_process() {
        let ds = var1_ds();
        let model = VarModel::fit(&ds, 3, 2).unwrap();
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 200);
        assert!(model.loss(&sample) < 1e-6);
    }

    #[test]
    fn coefficient_shape() {
        let ds = var1_ds();
        let model = VarModel::fit(&ds, 3, 2).unwrap();
        assert_eq!(model.lags(), 3);
        assert_eq!(model.coeffs.shape(), (1 + 3 * 2, 2));
    }

    #[test]
    fn works_with_missing_data_via_mean_fill() {
        let mut ds = var1_ds();
        for t in (0..400).step_by(3) {
            ds.mask[(0, 0, t)] = 0.0;
        }
        let model = VarModel::fit(&ds, 2, 2).unwrap();
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 50);
        let preds = model.predict(&sample);
        assert!(preds.iter().all(Matrix::is_finite));
    }

    #[test]
    #[should_panic(expected = "at least one lag")]
    fn zero_lags_rejected() {
        let _ = VarModel::fit(&var1_ds(), 0, 1);
    }
}
