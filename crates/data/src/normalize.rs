//! Z-score normalisation over masked spatio-temporal cubes.
//!
//! The paper normalises each dataset with Z-score statistics. Because the
//! data carries missing values, the statistics must be computed from
//! *observed* entries only — this module does so per feature.

use st_tensor::{Matrix, Tensor3};

/// Per-feature Z-score parameters fitted on observed entries.
///
/// # Examples
///
/// ```
/// use st_data::ZScore;
/// use st_tensor::Tensor3;
///
/// let x = Tensor3::from_fn(2, 1, 4, |_, _, t| t as f64);
/// let mask = Tensor3::ones(2, 1, 4);
/// let z = ZScore::fit(&x, &mask);
/// let n = z.apply(&x);
/// assert!((n.mean()).abs() < 1e-9);
/// let back = z.invert(&n);
/// assert!(back.zip_map(&x, |a, b| (a - b).abs()).mean() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZScore {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl ZScore {
    /// Fits per-feature mean/std from entries where `mask != 0`.
    ///
    /// Features with no observed entries get mean 0 / std 1; features with
    /// zero variance get std 1 so normalisation stays invertible.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn fit(values: &Tensor3, mask: &Tensor3) -> Self {
        assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
        let (n, d, t) = values.shape();
        let mut mean = vec![0.0; d];
        let mut std = vec![1.0; d];
        for f in 0..d {
            let mut sum = 0.0;
            let mut count = 0usize;
            for node in 0..n {
                for time in 0..t {
                    if mask[(node, f, time)] != 0.0 {
                        sum += values[(node, f, time)];
                        count += 1;
                    }
                }
            }
            if count == 0 {
                continue;
            }
            let m = sum / count as f64;
            let mut var = 0.0;
            for node in 0..n {
                for time in 0..t {
                    if mask[(node, f, time)] != 0.0 {
                        let dv = values[(node, f, time)] - m;
                        var += dv * dv;
                    }
                }
            }
            mean[f] = m;
            let s = (var / count as f64).sqrt();
            std[f] = if s > 1e-12 { s } else { 1.0 };
        }
        Self { mean, std }
    }

    /// Rebuilds a transform from previously fitted statistics (e.g. read
    /// back from a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, any value is non-finite, or a standard
    /// deviation is not strictly positive.
    pub fn from_parts(mean: Vec<f64>, std: Vec<f64>) -> Self {
        assert_eq!(mean.len(), std.len(), "mean/std length mismatch");
        assert!(
            mean.iter().chain(&std).all(|v| v.is_finite()),
            "statistics must be finite"
        );
        assert!(std.iter().all(|&s| s > 0.0), "std must be positive");
        Self { mean, std }
    }

    /// Number of features the transform was fitted on.
    pub fn num_features(&self) -> usize {
        self.mean.len()
    }

    /// Fitted per-feature means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Fitted per-feature standard deviations.
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Normalises a cube: `(x − μ_d) / σ_d` per feature.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fitted statistics.
    pub fn apply(&self, values: &Tensor3) -> Tensor3 {
        assert_eq!(values.features(), self.mean.len(), "feature count mismatch");
        Tensor3::from_fn(
            values.nodes(),
            values.features(),
            values.times(),
            |n, d, t| (values[(n, d, t)] - self.mean[d]) / self.std[d],
        )
    }

    /// Inverts [`ZScore::apply`].
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the fitted statistics.
    pub fn invert(&self, values: &Tensor3) -> Tensor3 {
        assert_eq!(values.features(), self.mean.len(), "feature count mismatch");
        Tensor3::from_fn(
            values.nodes(),
            values.features(),
            values.times(),
            |n, d, t| values[(n, d, t)] * self.std[d] + self.mean[d],
        )
    }

    /// Normalises an `N × D` single-timestamp matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted statistics.
    pub fn apply_matrix(&self, values: &Matrix) -> Matrix {
        assert_eq!(values.cols(), self.mean.len(), "feature count mismatch");
        Matrix::from_fn(values.rows(), values.cols(), |r, c| {
            (values[(r, c)] - self.mean[c]) / self.std[c]
        })
    }

    /// Inverts [`ZScore::apply_matrix`].
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted statistics.
    pub fn invert_matrix(&self, values: &Matrix) -> Matrix {
        assert_eq!(values.cols(), self.mean.len(), "feature count mismatch");
        Matrix::from_fn(values.rows(), values.cols(), |r, c| {
            values[(r, c)] * self.std[c] + self.mean[c]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_ignores_masked_entries() {
        let mut x = Tensor3::zeros(1, 1, 4);
        x[(0, 0, 0)] = 10.0;
        x[(0, 0, 1)] = 20.0;
        x[(0, 0, 2)] = 1000.0; // hidden by mask
        x[(0, 0, 3)] = 30.0;
        let mut mask = Tensor3::ones(1, 1, 4);
        mask[(0, 0, 2)] = 0.0;
        let z = ZScore::fit(&x, &mask);
        assert!((z.mean()[0] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn apply_invert_round_trip() {
        let x = Tensor3::from_fn(3, 2, 5, |n, d, t| (n + d * 10 + t * 100) as f64);
        let mask = Tensor3::ones(3, 2, 5);
        let z = ZScore::fit(&x, &mask);
        let norm = z.apply(&x);
        let back = z.invert(&norm);
        assert!(back.zip_map(&x, |a, b| (a - b).abs()).mean() < 1e-9);
    }

    #[test]
    fn normalised_observed_entries_have_unit_stats() {
        let x = Tensor3::from_fn(4, 1, 50, |n, _, t| (n * t) as f64 * 0.3 + n as f64);
        let mask = Tensor3::ones(4, 1, 50);
        let z = ZScore::fit(&x, &mask);
        let norm = z.apply(&x);
        let mean = norm.mean();
        assert!(mean.abs() < 1e-9);
        let var = norm.map(|v| v * v).mean() - mean * mean;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_feature_gets_unit_std() {
        let x = Tensor3::filled(2, 1, 4, 7.0);
        let mask = Tensor3::ones(2, 1, 4);
        let z = ZScore::fit(&x, &mask);
        assert_eq!(z.std()[0], 1.0);
        let norm = z.apply(&x);
        assert_eq!(norm.mean(), 0.0);
    }

    #[test]
    fn fully_masked_feature_is_identity() {
        let x = Tensor3::filled(2, 1, 4, 42.0);
        let mask = Tensor3::zeros(2, 1, 4);
        let z = ZScore::fit(&x, &mask);
        assert_eq!(z.mean()[0], 0.0);
        assert_eq!(z.std()[0], 1.0);
    }

    #[test]
    fn matrix_round_trip() {
        let z = ZScore {
            mean: vec![5.0, -1.0],
            std: vec![2.0, 4.0],
        };
        let m = Matrix::from_rows(&[&[7.0, 3.0], &[5.0, -1.0]]);
        let n = z.apply_matrix(&m);
        assert_eq!(n[(0, 0)], 1.0);
        assert_eq!(n[(0, 1)], 1.0);
        assert_eq!(n[(1, 0)], 0.0);
        let back = z.invert_matrix(&n);
        assert!(back.max_abs_diff(&m) < 1e-12);
    }

    #[test]
    fn per_feature_statistics_are_independent() {
        let x = Tensor3::from_fn(2, 2, 10, |_, d, t| {
            if d == 0 {
                t as f64
            } else {
                100.0 + t as f64 * 5.0
            }
        });
        let mask = Tensor3::ones(2, 2, 10);
        let z = ZScore::fit(&x, &mask);
        assert!(z.mean()[1] > z.mean()[0]);
        assert!(z.std()[1] > z.std()[0]);
    }
}
