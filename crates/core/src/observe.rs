//! Training observability: per-epoch statistics fed to pluggable sinks.
//!
//! [`fit`](crate::fit) reports every epoch to a [`TrainObserver`] instead
//! of hard-coding an `eprintln!`. The two bundled sinks cover the common
//! cases — [`StderrPretty`] reproduces the classic human-readable progress
//! line, [`JsonlObserver`] streams one JSON object per epoch for machine
//! consumption (the CLI's `--log-format json`) — and callers with other
//! needs (plots, tensorboard-style files, tests) implement the one-method
//! trait themselves and pass it to [`fit_with_observer`]
//! (crate::fit_with_observer).
//!
//! Allocation counts come from the process-global counters in
//! [`st_obs::alloc`]: they read zero unless the running binary installed
//! [`st_obs::alloc::CountingAlloc`] as its global allocator (the memory
//! benchmarks do; the CLI does not, to keep production binaries on the
//! plain system allocator).

use crate::TrainReport;
use std::io::Write;

/// Everything the trainer knows about one completed epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch's samples.
    pub train_loss: f64,
    /// Mean validation loss (equals `train_loss` when there is no
    /// validation set).
    pub val_loss: f64,
    /// Wall-clock time of the epoch (training + validation), milliseconds.
    pub wall_ms: f64,
    /// Learning rate the epoch ran at (after scheduling).
    pub learning_rate: f64,
    /// Heap allocations during the epoch — zero unless the binary installed
    /// the counting allocator.
    pub allocations: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Whether this epoch improved the best validation loss (and its
    /// parameters were checkpointed).
    pub improved: bool,
}

impl EpochStats {
    /// The epoch as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"epoch\":{},\"train_loss\":{},\"val_loss\":{},\"wall_ms\":{:.3},\
             \"learning_rate\":{},\"allocations\":{},\"alloc_bytes\":{},\"improved\":{}}}",
            self.epoch,
            self.train_loss,
            self.val_loss,
            self.wall_ms,
            self.learning_rate,
            self.allocations,
            self.alloc_bytes,
            self.improved
        )
    }
}

/// A sink for training progress.
///
/// Implementations must not influence training: the trainer calls
/// [`on_epoch`](TrainObserver::on_epoch) after each epoch's bookkeeping is
/// done and [`on_complete`](TrainObserver::on_complete) once, after the
/// best checkpoint has been restored.
pub trait TrainObserver {
    /// Called once per completed epoch.
    fn on_epoch(&mut self, stats: &EpochStats);

    /// Called once when training finishes (early-stopped or exhausted).
    fn on_complete(&mut self, _report: &TrainReport) {}
}

/// Discards everything (the default when `TrainConfig::verbose` is off).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl TrainObserver for NullObserver {
    fn on_epoch(&mut self, _stats: &EpochStats) {}
}

/// Human-readable progress on stderr: the classic
/// `epoch   3: train 0.6931  val 0.7012` line.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrPretty;

impl TrainObserver for StderrPretty {
    fn on_epoch(&mut self, s: &EpochStats) {
        eprintln!(
            "epoch {:>3}: train {:.4}  val {:.4}",
            s.epoch, s.train_loss, s.val_loss
        );
    }
}

/// One JSON object per epoch to any [`Write`] sink (JSON Lines).
///
/// A final `{"done":true,...}` summary line is written by
/// [`on_complete`](TrainObserver::on_complete). Write errors are ignored —
/// observability must never abort training.
#[derive(Debug)]
pub struct JsonlObserver<W: Write> {
    sink: W,
}

impl<W: Write> JsonlObserver<W> {
    /// Streams epochs to `sink`.
    pub fn new(sink: W) -> Self {
        Self { sink }
    }

    /// Consumes the observer, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

impl<W: Write> TrainObserver for JsonlObserver<W> {
    fn on_epoch(&mut self, stats: &EpochStats) {
        let _ = writeln!(self.sink, "{}", stats.to_json());
        let _ = self.sink.flush();
    }

    fn on_complete(&mut self, report: &TrainReport) {
        let _ = writeln!(
            self.sink,
            "{{\"done\":true,\"epochs\":{},\"best_epoch\":{},\"best_val_loss\":{}}}",
            report.epochs(),
            report.best_epoch,
            report.best_val_loss
        );
        let _ = self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> EpochStats {
        EpochStats {
            epoch: 3,
            train_loss: 0.625,
            val_loss: 0.75,
            wall_ms: 12.5,
            learning_rate: 1e-3,
            allocations: 0,
            alloc_bytes: 0,
            improved: true,
        }
    }

    #[test]
    fn epoch_json_is_valid_and_complete() {
        let doc = stats().to_json();
        let parsed = st_obs::json::parse(&doc).expect("valid JSON");
        assert_eq!(parsed.get("epoch"), Some(&st_obs::json::Json::Num(3.0)));
        assert_eq!(parsed.get("val_loss"), Some(&st_obs::json::Json::Num(0.75)));
        assert_eq!(
            parsed.get("improved"),
            Some(&st_obs::json::Json::Bool(true))
        );
    }

    #[test]
    fn jsonl_observer_streams_lines() {
        let mut obs = JsonlObserver::new(Vec::new());
        obs.on_epoch(&stats());
        obs.on_epoch(&EpochStats {
            epoch: 4,
            improved: false,
            ..stats()
        });
        obs.on_complete(&TrainReport {
            train_losses: vec![0.7, 0.6],
            val_losses: vec![0.8, 0.75],
            best_epoch: 1,
            best_val_loss: 0.75,
        });
        let text = String::from_utf8(obs.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            st_obs::json::parse(line).expect("every line parses");
        }
        assert!(lines[2].contains("\"done\":true"));
        assert!(lines[2].contains("\"best_epoch\":1"));
    }
}
