//! Dataset quality reports.
//!
//! Before modelling, practitioners need to know *how* a dataset is missing:
//! the overall and per-node missing rates, whether gaps are bursty
//! (consecutive runs, typical of roving sensors) or scattered (typical of
//! random drop), and how strongly the signal repeats daily. This module
//! computes exactly that summary; the CLI exposes it as `rihgcn inspect`.

use crate::TrafficDataset;
use st_tensor::stats;

/// Missingness and seasonality summary of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Overall fraction of hidden entries.
    pub missing_rate: f64,
    /// Per-node missing rates.
    pub node_missing_rates: Vec<f64>,
    /// Mean length of consecutive-missing runs (gap burstiness), averaged
    /// over (node, feature) series; `0.0` when nothing is missing.
    pub mean_gap_length: f64,
    /// Longest consecutive-missing run anywhere.
    pub max_gap_length: usize,
    /// Mean day-lag autocorrelation of feature 0, computed over co-observed
    /// pairs only — high values confirm daily seasonality of the signal
    /// itself, independent of how gaps would be filled.
    pub daily_autocorrelation: f64,
    /// Mean absolute pairwise node correlation of feature 0.
    pub mean_node_correlation: f64,
}

impl QualityReport {
    /// Computes the report.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no timestamps.
    pub fn compute(ds: &TrafficDataset) -> Self {
        assert!(ds.num_times() > 0, "empty dataset");
        let (n, d, t_len) = ds.values.shape();

        // Per-node missingness.
        let mut node_missing_rates = Vec::with_capacity(n);
        for node in 0..n {
            let mut hidden = 0usize;
            for f in 0..d {
                for t in 0..t_len {
                    if ds.mask[(node, f, t)] == 0.0 {
                        hidden += 1;
                    }
                }
            }
            node_missing_rates.push(hidden as f64 / (d * t_len) as f64);
        }

        // Gap-run statistics.
        let mut gap_lengths: Vec<f64> = Vec::new();
        let mut max_gap = 0usize;
        for node in 0..n {
            for f in 0..d {
                let mut run = 0usize;
                for t in 0..t_len {
                    if ds.mask[(node, f, t)] == 0.0 {
                        run += 1;
                    } else if run > 0 {
                        gap_lengths.push(run as f64);
                        max_gap = max_gap.max(run);
                        run = 0;
                    }
                }
                if run > 0 {
                    gap_lengths.push(run as f64);
                    max_gap = max_gap.max(run);
                }
            }
        }

        // Daily seasonality: autocorrelation at one-day lag of feature 0,
        // restricted to co-observed pairs so the statistic reflects the
        // signal rather than whatever fill sits in the gaps.
        let day = ds.slots_per_day();
        let filled = crate::mean_fill(&ds.values, &ds.mask);
        let mut daily_acs = Vec::with_capacity(n);
        for node in 0..n {
            let series = ds.values.series(node, 0);
            let mask = ds.mask.series(node, 0);
            daily_acs.push(stats::masked_autocorrelation(&series, &mask, day));
        }

        // Cross-node structure.
        let series: Vec<Vec<f64>> = (0..n).map(|node| filled.series(node, 0)).collect();
        let corr = stats::correlation_matrix(&series);
        let mut acc = 0.0;
        let mut count = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                acc += corr[(i, j)].abs();
                count += 1;
            }
        }

        Self {
            missing_rate: ds.missing_rate(),
            node_missing_rates,
            mean_gap_length: stats::mean(&gap_lengths),
            max_gap_length: max_gap,
            daily_autocorrelation: stats::mean(&daily_acs),
            mean_node_correlation: if count > 0 { acc / count as f64 } else { 0.0 },
        }
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "missing rate        : {:.1}%\n",
            self.missing_rate * 100.0
        ));
        let worst = self
            .node_missing_rates
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max);
        let best = self
            .node_missing_rates
            .iter()
            .cloned()
            .fold(1.0_f64, f64::min);
        out.push_str(&format!(
            "per-node missing    : {:.1}% … {:.1}%\n",
            best * 100.0,
            worst * 100.0
        ));
        out.push_str(&format!(
            "gap runs            : mean {:.1} slots, max {} slots\n",
            self.mean_gap_length, self.max_gap_length
        ));
        out.push_str(&format!(
            "daily autocorrelation: {:.3}\n",
            self.daily_autocorrelation
        ));
        out.push_str(&format!(
            "mean |node corr|    : {:.3}\n",
            self.mean_node_correlation
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_pems, generate_stampede, PemsConfig, StampedeConfig};
    use st_tensor::rng;

    #[test]
    fn pems_report_shows_strong_seasonality_and_low_missingness() {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 6,
            ..Default::default()
        });
        let r = QualityReport::compute(&ds);
        assert_eq!(r.missing_rate, 0.0);
        assert!(
            r.daily_autocorrelation > 0.5,
            "daily ac {}",
            r.daily_autocorrelation
        );
        assert_eq!(r.node_missing_rates.len(), 4);
        assert_eq!(r.mean_gap_length, 0.0);
        assert!(!r.render().is_empty());
    }

    #[test]
    fn mcar_masking_produces_short_gaps() {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 3,
            num_days: 3,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.4, &mut rng(1));
        let r = QualityReport::compute(&ds);
        assert!((r.missing_rate - 0.4).abs() < 0.03);
        // Independent drops at 40% make mean runs short (~1/(1−p) ≈ 1.7).
        assert!(r.mean_gap_length < 3.0, "mean gap {}", r.mean_gap_length);
    }

    #[test]
    fn roving_masking_produces_long_gaps() {
        let stampede = generate_stampede(&StampedeConfig {
            num_days: 4,
            ..Default::default()
        });
        let r = QualityReport::compute(&stampede);
        assert!(r.missing_rate > 0.5);
        // Structural gaps (nights + coverage holes) are far longer than MCAR.
        assert!(r.mean_gap_length > 3.0, "mean gap {}", r.mean_gap_length);
        assert!(r.max_gap_length > 50, "max gap {}", r.max_gap_length);
    }

    #[test]
    fn per_node_rates_sum_consistently() {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 3,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.5, &mut rng(2));
        let r = QualityReport::compute(&ds);
        let mean_nodes: f64 =
            r.node_missing_rates.iter().sum::<f64>() / r.node_missing_rates.len() as f64;
        assert!((mean_nodes - r.missing_rate).abs() < 1e-9);
    }
}
