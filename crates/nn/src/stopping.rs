//! Early stopping on a validation metric.
//!
//! The paper stops training "when the validation performance does not
//! improve for 6 epochs".

/// Decision returned by [`EarlyStopping::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopDecision {
    /// The metric improved; keep training (and keep this checkpoint).
    Improved,
    /// No improvement yet, but patience remains.
    Continue,
    /// Patience exhausted; stop training.
    Stop,
}

/// Patience-based early stopping on a to-be-minimised metric.
///
/// # Examples
///
/// ```
/// use st_nn::{EarlyStopping, StopDecision};
///
/// let mut es = EarlyStopping::new(2);
/// assert_eq!(es.update(1.0), StopDecision::Improved);
/// assert_eq!(es.update(1.5), StopDecision::Continue);
/// assert_eq!(es.update(0.8), StopDecision::Improved);
/// assert_eq!(es.update(0.9), StopDecision::Continue);
/// assert_eq!(es.update(0.9), StopDecision::Stop);
/// ```
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    best: f64,
    wait: usize,
    best_epoch: usize,
    epoch: usize,
}

impl EarlyStopping {
    /// Creates a stopper that tolerates `patience` consecutive epochs
    /// without improvement (paper: 6).
    ///
    /// # Panics
    ///
    /// Panics if `patience == 0`.
    pub fn new(patience: usize) -> Self {
        assert!(patience > 0, "patience must be positive");
        Self {
            patience,
            best: f64::INFINITY,
            wait: 0,
            best_epoch: 0,
            epoch: 0,
        }
    }

    /// Best metric value seen so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// Epoch index (0-based) at which the best value occurred.
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }

    /// Feeds this epoch's validation metric.
    pub fn update(&mut self, metric: f64) -> StopDecision {
        let epoch = self.epoch;
        self.epoch += 1;
        if metric < self.best {
            self.best = metric;
            self.best_epoch = epoch;
            self.wait = 0;
            StopDecision::Improved
        } else {
            self.wait += 1;
            if self.wait >= self.patience {
                StopDecision::Stop
            } else {
                StopDecision::Continue
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_resets_patience() {
        let mut es = EarlyStopping::new(2);
        assert_eq!(es.update(5.0), StopDecision::Improved);
        assert_eq!(es.update(6.0), StopDecision::Continue);
        assert_eq!(es.update(4.0), StopDecision::Improved);
        assert_eq!(es.update(4.5), StopDecision::Continue);
        assert_eq!(es.update(4.4), StopDecision::Stop);
        assert_eq!(es.best(), 4.0);
        assert_eq!(es.best_epoch(), 2);
    }

    #[test]
    fn equal_value_is_not_improvement() {
        let mut es = EarlyStopping::new(1);
        assert_eq!(es.update(1.0), StopDecision::Improved);
        assert_eq!(es.update(1.0), StopDecision::Stop);
    }

    #[test]
    fn nan_never_improves() {
        let mut es = EarlyStopping::new(2);
        assert_eq!(es.update(f64::NAN), StopDecision::Continue);
        assert_eq!(es.update(1.0), StopDecision::Improved);
    }

    #[test]
    #[should_panic(expected = "patience")]
    fn zero_patience_rejected() {
        let _ = EarlyStopping::new(0);
    }
}
