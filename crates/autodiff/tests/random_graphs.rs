//! Property test: randomly composed tape programs must gradcheck.

use st_autodiff::{check_gradient, Tape, Var};
use st_check::{prop_assert, prop_assume, Check, Gen};
use st_tensor::Matrix;

/// One step of a randomly chosen smooth operation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OpChoice {
    Tanh,
    Sigmoid,
    Scale,
    AddConst,
    MulSelf,
    MatmulConst,
}

const ALL_OPS: [OpChoice; 6] = [
    OpChoice::Tanh,
    OpChoice::Sigmoid,
    OpChoice::Scale,
    OpChoice::AddConst,
    OpChoice::MulSelf,
    OpChoice::MatmulConst,
];

fn gen_ops(g: &mut Gen, max_len: usize) -> Vec<OpChoice> {
    let len = g.usize_in(1, max_len);
    (0..len).map(|_| *g.choose(&ALL_OPS)).collect()
}

/// Shrinks a failing program by dropping ops (data is shrunk element-wise).
fn shrink_case(case: &(Vec<OpChoice>, Vec<f64>)) -> Vec<(Vec<OpChoice>, Vec<f64>)> {
    use st_check::Shrink;
    let (ops, data) = case;
    let mut out = Vec::new();
    for i in 0..ops.len() {
        let mut fewer = ops.clone();
        fewer.remove(i);
        if !fewer.is_empty() {
            out.push((fewer, data.clone()));
        }
    }
    for cand in data.shrink() {
        if cand.len() == data.len() {
            out.push((ops.clone(), cand));
        }
    }
    out
}

fn apply(tape: &mut Tape, x: Var, op: OpChoice) -> Var {
    match op {
        OpChoice::Tanh => tape.tanh(x),
        OpChoice::Sigmoid => tape.sigmoid(x),
        OpChoice::Scale => tape.scale(x, 0.7),
        OpChoice::AddConst => tape.add_scalar(x, 0.3),
        OpChoice::MulSelf => tape.mul(x, x),
        OpChoice::MatmulConst => {
            let cols = tape.value(x).cols();
            let w = tape.constant(Matrix::from_fn(cols, cols, |r, c| {
                ((r * cols + c) as f64 * 0.13).sin() * 0.5
            }));
            tape.matmul(x, w)
        }
    }
}

#[test]
fn random_programs_gradcheck() {
    Check::new("random_programs_gradcheck")
        .cases(48)
        .run_with_shrink(
            |g| (gen_ops(g, 6), g.vec_f64(6, -0.9, 0.9)),
            shrink_case,
            |(ops, data)| {
                prop_assume!(!ops.is_empty() && data.len() == 6);
                let at = Matrix::from_vec(2, 3, data.clone());
                let build = |tape: &mut Tape, p: Var| -> Var {
                    let mut x = p;
                    for &op in ops {
                        x = apply(tape, x, op);
                    }
                    tape.mean(x)
                };
                let mut tape = Tape::new();
                let p = tape.parameter(at.clone());
                let loss = build(&mut tape, p);
                tape.backward(loss);
                let analytic = tape.grad(p);

                let res = check_gradient(&at, &analytic, 1e-6, |m| {
                    let mut t = Tape::new();
                    let p = t.parameter(m.clone());
                    let l = build(&mut t, p);
                    t.value(l)[(0, 0)]
                });
                prop_assert!(res.passes(1e-4), "ops {ops:?} failed: {res:?}");
                Ok(())
            },
        );
}

#[test]
fn gradients_always_finite() {
    Check::new("gradients_always_finite")
        .cases(48)
        .run_with_shrink(
            |g| (gen_ops(g, 8), g.vec_f64(6, -3.0, 3.0)),
            shrink_case,
            |(ops, data)| {
                prop_assume!(!ops.is_empty() && data.len() == 6);
                let at = Matrix::from_vec(2, 3, data.clone());
                let mut tape = Tape::new();
                let p = tape.parameter(at);
                let mut x = p;
                for &op in ops {
                    x = apply(&mut tape, x, op);
                }
                let loss = tape.mean(x);
                tape.backward(loss);
                prop_assert!(tape.grad(p).is_finite());
                Ok(())
            },
        );
}
