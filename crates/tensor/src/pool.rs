//! Shape-keyed buffer pool for [`Matrix`] backing stores.
//!
//! Training replays the same computation graph every step, so the set of
//! buffer sizes is fixed after the first pass. [`MatrixPool`] recycles the
//! `Vec<f64>` backing stores between passes: once warm, acquiring a matrix
//! is a bucket pop instead of a heap allocation. Buffers are keyed by
//! element count (not shape), so a released `2 × 3` store can back a later
//! `3 × 2` or `6 × 1` matrix.
//!
//! The pool never touches buffer contents on release, and
//! [`MatrixPool::acquire`] returns *unspecified* contents — callers must
//! fully overwrite the buffer (the `*_into` kernels on [`Matrix`] do) or
//! use [`MatrixPool::acquire_zeroed`]. This keeps the bit-identical-reuse
//! contract trivial: every value written through a pooled buffer is exactly
//! the value the allocating path would have produced.

use crate::Matrix;
use std::collections::HashMap;
use std::fmt;

/// Cumulative acquire/release statistics of a [`MatrixPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Acquires served from a recycled buffer.
    pub hits: u64,
    /// Acquires that fell back to a fresh heap allocation.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub released: u64,
}

impl PoolStats {
    /// Fraction of acquires served without allocating (`0.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A free-list of matrix backing stores, bucketed by element count.
///
/// # Examples
///
/// ```
/// use st_tensor::{Matrix, MatrixPool};
///
/// let mut pool = MatrixPool::new();
/// pool.release(Matrix::zeros(2, 3));
/// let m = pool.acquire_zeroed(3, 2); // reuses the 6-element store
/// assert_eq!(m.shape(), (3, 2));
/// assert_eq!(pool.stats().hits, 1);
/// ```
#[derive(Default)]
pub struct MatrixPool {
    free: HashMap<usize, Vec<Vec<f64>>>,
    stats: PoolStats,
}

impl MatrixPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A `rows × cols` matrix with **unspecified contents**: a recycled
    /// buffer when one of the right size is free, a fresh allocation
    /// otherwise. The caller must overwrite every element before reading.
    pub fn acquire(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        match self.free.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                self.stats.hits += 1;
                Matrix::from_vec(rows, cols, buf)
            }
            None => {
                self.stats.misses += 1;
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// Like [`MatrixPool::acquire`] but zero-filled.
    pub fn acquire_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.acquire(rows, cols);
        m.fill(0.0);
        m
    }

    /// Returns a matrix's backing store to the pool for reuse.
    pub fn release(&mut self, m: Matrix) {
        self.stats.released += 1;
        self.free.entry(m.len()).or_default().push(m.into_vec());
    }

    /// Cumulative hit/miss/release counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of free buffers currently held.
    pub fn free_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Bytes held by the free buffers (element counts × 8, ignoring any
    /// over-allocated `Vec` capacity). This is what the serve `/metrics`
    /// pool gauge reports.
    pub fn free_bytes(&self) -> usize {
        self.free
            .iter()
            .map(|(len, bufs)| len * bufs.len() * std::mem::size_of::<f64>())
            .sum()
    }

    /// Drops every free buffer (counters are kept).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

impl fmt::Debug for MatrixPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatrixPool")
            .field("free_buffers", &self.free_buffers())
            .field("size_classes", &self.free.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut pool = MatrixPool::new();
        let a = pool.acquire(2, 2);
        assert_eq!(pool.stats().misses, 1);
        pool.release(a);
        let b = pool.acquire(2, 2);
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 1,
                misses: 1,
                released: 1
            }
        );
        assert_eq!(b.shape(), (2, 2));
    }

    #[test]
    fn buckets_by_element_count_not_shape() {
        let mut pool = MatrixPool::new();
        pool.release(Matrix::zeros(2, 6));
        let m = pool.acquire(4, 3);
        assert_eq!(m.shape(), (4, 3));
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn acquire_zeroed_wipes_recycled_contents() {
        let mut pool = MatrixPool::new();
        pool.release(Matrix::filled(2, 2, 7.0));
        let m = pool.acquire_zeroed(2, 2);
        assert_eq!(m, Matrix::zeros(2, 2));
    }

    #[test]
    fn hit_rate_and_clear() {
        let mut pool = MatrixPool::new();
        assert_eq!(pool.stats().hit_rate(), 0.0);
        let miss = pool.acquire(1, 1);
        pool.release(miss);
        let _ = pool.acquire(1, 1);
        assert_eq!(pool.stats().hit_rate(), 0.5);
        pool.release(Matrix::zeros(3, 3));
        assert_eq!(pool.free_buffers(), 1);
        assert_eq!(pool.free_bytes(), 9 * 8);
        pool.clear();
        assert_eq!(pool.free_buffers(), 0);
        assert_eq!(pool.free_bytes(), 0);
    }

    #[test]
    fn empty_matrices_round_trip() {
        let mut pool = MatrixPool::new();
        pool.release(Matrix::zeros(0, 3));
        let m = pool.acquire(5, 0);
        assert_eq!(m.shape(), (5, 0));
        assert_eq!(pool.stats().hits, 1);
    }
}
