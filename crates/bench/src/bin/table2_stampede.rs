//! Table II: Stampede (roving sensors) prediction performance vs
//! prediction length {15, 30, 45, 60} minutes. The dataset's missingness is
//! intrinsic (shuttle coverage), as in the paper.

use rihgcn_bench::{print_table, stampede_at, Bench, Method, Scale};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let horizons = [3usize, 6, 9, 12];
    let columns: Vec<String> = horizons.iter().map(|h| format!("{} min", h * 5)).collect();

    let ds = stampede_at(&scale, 300);
    println!(
        "Table II — Stampede (12 segments, intrinsic missing rate {:.1}%), scale `{}`",
        ds.missing_rate() * 100.0,
        scale.name
    );
    let bench = Bench::prepare(&ds, &scale, 12, 12);
    let mut rows = Vec::new();
    for method in Method::roster() {
        let t0 = Instant::now();
        let metrics = rihgcn_bench::run_method_horizons(method, &bench, 4, &horizons);
        eprintln!("{:<16} done in {:?}", method.name(), t0.elapsed());
        rows.push((method.name().to_string(), metrics));
    }
    print_table(
        "Table II: MAE/RMSE vs prediction length (Stampede)",
        &columns,
        &rows,
    );
}
