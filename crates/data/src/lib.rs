//! Traffic datasets for the RIHGCN reproduction.
//!
//! The paper evaluates on two datasets that this crate reproduces
//! synthetically (the originals are respectively large/external and
//! private — see `DESIGN.md` for the substitution argument):
//!
//! * [`generate_pems`] — a PeMS-like static-sensor corridor: 5-minute
//!   speeds, four features, rush-hour congestion waves, weekly cycles and
//!   incidents; missingness is injected afterwards per the Table-I
//!   protocol ([`drop_observed`] / [`TrafficDataset::with_extra_missing`]);
//! * [`generate_stampede`] — a Stampede-like roving-sensor loop: travel
//!   times observed only when a simulated shuttle fleet traverses a
//!   segment, yielding the bursty ~70–90% missingness of the private
//!   dataset.
//!
//! Supporting machinery: [`TrafficDataset`] (values + mask + network),
//! [`ZScore`] normalisation over observed entries, masking utilities,
//! [`WindowSampler`] for 12-in/12-out sequence windows, and
//! [`DayProfiles`] for historical time-of-day averages feeding the
//! temporal-graph construction.
//!
//! # Examples
//!
//! ```
//! use st_data::{generate_pems, PemsConfig, WindowSampler};
//!
//! let ds = generate_pems(&PemsConfig { num_nodes: 4, num_days: 2, ..Default::default() });
//! let split = ds.split_chronological();
//! let windows = WindowSampler::paper_default().sample(&split.train);
//! assert!(!windows.is_empty());
//! ```

#![warn(missing_docs)]

mod csv;
mod dataset;
mod masking;
mod normalize;
mod pems;
mod profiles;
mod quality;
mod stampede;
mod window;

pub use csv::{read_csv, write_csv, CsvError};
pub use dataset::{DatasetSplit, TrafficDataset};
pub use masking::{drop_observed, fill_missing, holdout_split, mean_fill, missing_rate};
pub use normalize::ZScore;
pub use pems::{generate_pems, PemsConfig, PEMS_FEATURES};
pub use profiles::DayProfiles;
pub use quality::QualityReport;
pub use stampede::{generate_stampede, StampedeConfig};
pub use window::{WindowSample, WindowSampler};
