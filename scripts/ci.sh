#!/usr/bin/env bash
# Hermetic CI: the workspace must build, test and stay formatted with no
# network access and no registry dependencies. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== test (offline) =="
cargo test -q --offline --workspace

echo "== formatting =="
cargo fmt --check

echo "CI checks passed."
