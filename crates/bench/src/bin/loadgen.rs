//! Load generator for the st-serve forecast service.
//!
//! Two modes:
//!
//! * `--smoke` — one client walks every route (healthz → observe×history →
//!   forecast → imputed → metrics) and fails loudly on any unexpected
//!   status or payload. Used by `scripts/ci.sh`.
//! * load mode (default) — fills the window, then `--threads K` clients
//!   each issue `--requests N` `GET /forecast` calls over keep-alive
//!   connections and the tool reports throughput and p50/p99 latency.
//!
//! `--shutdown` additionally posts `/admin/shutdown` at the end, so a
//! scripted server run terminates cleanly. Exits non-zero on any failure.

use st_serve::{wire, HttpClient};
use st_tensor::Matrix;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);

struct Args {
    addr: String,
    threads: usize,
    requests: usize,
    smoke: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8100".into(),
        threads: 4,
        requests: 200,
        smoke: false,
        shutdown: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => {
                println!(
                    "loadgen --addr HOST:PORT [--threads K] [--requests N] [--smoke] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Model facts parsed from the `/healthz` token stream
/// (`ok nodes 4 features 2 history 12 … ready false …`).
struct Health {
    nodes: usize,
    features: usize,
    history: usize,
    slots_per_day: usize,
    ready: bool,
}

fn parse_health(text: &str) -> Result<Health, String> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.first() != Some(&"ok") {
        return Err(format!("healthz did not start with ok: {text:?}"));
    }
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for pair in tokens[1..].chunks(2) {
        if let [k, v] = pair {
            fields.insert(k, v);
        }
    }
    let num = |k: &str| -> Result<usize, String> {
        fields
            .get(k)
            .ok_or_else(|| format!("healthz missing {k}: {text:?}"))?
            .parse()
            .map_err(|e| format!("healthz {k}: {e}"))
    };
    Ok(Health {
        nodes: num("nodes")?,
        features: num("features")?,
        history: num("history")?,
        slots_per_day: num("slots_per_day")?,
        ready: fields.get("ready") == Some(&"true"),
    })
}

/// Deterministic synthetic observation for step `t`: every entry observed,
/// values varying smoothly so forecasts are well-conditioned.
fn observation(t: usize, h: &Health) -> String {
    let values = Matrix::from_fn(h.nodes, h.features, |r, c| {
        40.0 + 10.0 * (((t + 1) * (r + 2) + c) as f64 * 0.37).sin()
    });
    let mask = Matrix::from_fn(h.nodes, h.features, |_, _| 1.0);
    wire::format_observation(t % h.slots_per_day, &values, &mask)
}

fn fill_window(client: &mut HttpClient, h: &Health) -> Result<(), String> {
    for t in 0..h.history {
        client.post_ok("/observe", &observation(t, h))?;
    }
    Ok(())
}

fn smoke(addr: &str) -> Result<(), String> {
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect {addr}: {e}"))?;
    let health = parse_health(&client.get_ok("/healthz")?)?;
    println!(
        "healthz: {} nodes × {} features, history {}",
        health.nodes, health.features, health.history
    );

    if !health.ready {
        // An empty window must answer 409, not hang or 500.
        let resp = client.request("GET", "/forecast", "")?;
        if resp.status != 409 {
            return Err(format!("expected 409 before fill, got {}", resp.status));
        }
        fill_window(&mut client, &health)?;
        println!("observed {} steps", health.history);
    }

    let (version, steps) = wire::parse_steps(&client.get_ok("/forecast")?)?;
    if steps.is_empty() || steps[0].shape() != (health.nodes, health.features) {
        return Err(format!(
            "forecast has unexpected shape at version {version}"
        ));
    }
    for (i, step) in steps.iter().enumerate() {
        if !step.is_finite() {
            return Err(format!("forecast step {i} has non-finite values"));
        }
    }
    println!(
        "forecast: {} steps at window version {version}",
        steps.len()
    );

    let (_, imputed) = wire::parse_steps(&client.get_ok("/imputed")?)?;
    if imputed.len() != health.history {
        return Err(format!(
            "imputed window has {} steps, expected {}",
            imputed.len(),
            health.history
        ));
    }

    let metrics = client.get_ok("/metrics")?;
    for needle in [
        "st_serve_requests_total{route=\"forecast\"}",
        "st_serve_latency_bucket{le=\"+inf\"}",
    ] {
        if !metrics.contains(needle) {
            return Err(format!("metrics missing {needle}"));
        }
    }
    println!("smoke ok");
    Ok(())
}

/// Nearest-rank percentile (see `rihgcn_bench::timing::percentile`); `0`
/// for an empty sample set. The previous `((len−1)·p).round()` indexing was
/// off by one on even sample counts (it picked the upper middle for p50).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    rihgcn_bench::timing::percentile(sorted_us, p)
}

fn load(addr: &str, threads: usize, requests: usize) -> Result<(), String> {
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect {addr}: {e}"))?;
    let health = parse_health(&client.get_ok("/healthz")?)?;
    if !health.ready {
        fill_window(&mut client, &health)?;
    }

    let started = Instant::now();
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let addr = addr.to_string();
        workers.push(std::thread::spawn(move || -> Result<Vec<u64>, String> {
            let mut client =
                HttpClient::connect(&addr, TIMEOUT).map_err(|e| format!("connect: {e}"))?;
            let mut latencies = Vec::with_capacity(requests);
            for _ in 0..requests {
                let t0 = Instant::now();
                client.get_ok("/forecast")?;
                latencies.push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Ok(latencies)
        }));
    }
    let mut latencies = Vec::with_capacity(threads * requests);
    for w in workers {
        latencies.extend(w.join().map_err(|_| "client thread panicked")??);
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let total = latencies.len();
    println!(
        "{total} requests over {threads} threads in {elapsed:.3}s: {:.0} req/s, \
         p50 {}us, p99 {}us",
        total as f64 / elapsed,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let result = if args.smoke {
        smoke(&args.addr)
    } else {
        load(&args.addr, args.threads.max(1), args.requests.max(1))
    };
    if args.shutdown {
        let stop = HttpClient::connect(&args.addr, TIMEOUT)
            .map_err(|e| format!("connect for shutdown: {e}"))
            .and_then(|mut c| c.post_ok("/admin/shutdown", ""));
        if let Err(e) = stop {
            eprintln!("loadgen: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = result {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }
}
