//! Load generator for the st-serve forecast service.
//!
//! Two modes:
//!
//! * `--smoke` — one client walks every route (healthz → observe×history →
//!   forecast → imputed → metrics) and fails loudly on any unexpected
//!   status or payload. Used by `scripts/ci.sh`.
//! * load mode (default) — fills the window, then `--threads K` clients
//!   each issue `--requests N` `GET /forecast` calls over keep-alive
//!   connections and the tool reports throughput and p50/p99 latency.
//! * multi-tenant mode (`--tenants N`) — discovers the tenant directory
//!   via `GET /admin/tenants`, fills the first `N` tenants' windows, then
//!   every client thread samples tenants from a Zipf(`--zipf`)
//!   distribution (seeded by `--seed`, deterministic per thread) and hits
//!   `GET /forecast?tenant=`. Reports per-shard p50/p99 plus aggregate
//!   throughput, and fails unless the per-shard request counters scraped
//!   from `/metrics` sum to the aggregate engine counter.
//!
//! * `--bench-batch` — ignores `--addr` and measures the batched drain
//!   loop end to end at the engine layer, where request RTT is a channel
//!   hop instead of an HTTP round trip: an in-process [`Registry`]
//!   (single shard, deterministic model) has its bounded queue saturated
//!   with `--threads × --requests` fire-and-forget observe → forecast
//!   pairs, once at `max_batch` 1 (batching off) and once at 16. Every
//!   observe bumps the window version, so no forecast can coalesce on
//!   the version cache and the drain must either run each window alone
//!   or stack them into batched tape runs. Reports forecast RPS for
//!   both, writes `BENCH_batch.json` (`--out`), checks the per-shard
//!   metrics consistency gate on each engine, and fails unless batching
//!   delivers at least [`MIN_BATCH_SPEEDUP`]× the unbatched throughput.
//!
//! `--shutdown` additionally posts `/admin/shutdown` at the end, so a
//! scripted server run terminates cleanly. Exits non-zero on any failure.

use st_serve::shard::{ObserveAck, ShardRequest};
use st_serve::{shard_of, wire, EngineError, HttpClient, Metrics, Registry, RegistryConfig};
use st_tensor::Matrix;
use std::collections::HashMap;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Minimum forecast-throughput ratio `--max-batch 16` must deliver over
/// `--max-batch 1` on a saturated single-tenant queue.
const MIN_BATCH_SPEEDUP: f64 = 2.0;

struct Args {
    addr: String,
    threads: usize,
    requests: usize,
    tenants: usize,
    zipf: f64,
    seed: u64,
    smoke: bool,
    shutdown: bool,
    bench_batch: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8100".into(),
        threads: 4,
        requests: 200,
        tenants: 0,
        zipf: 1.1,
        seed: 42,
        smoke: false,
        shutdown: false,
        bench_batch: false,
        out: "BENCH_batch.json".into(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--tenants" => {
                args.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
            }
            "--zipf" => {
                args.zipf = value("--zipf")?
                    .parse()
                    .map_err(|e| format!("--zipf: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--shutdown" => args.shutdown = true,
            "--bench-batch" => args.bench_batch = true,
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                println!(
                    "loadgen --addr HOST:PORT [--threads K] [--requests N] \
                     [--tenants N [--zipf S] [--seed S]] [--smoke] [--shutdown] \
                     | --bench-batch [--threads K] [--requests N] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Model facts parsed from the `/healthz` token stream
/// (`ok nodes 4 features 2 history 12 … ready false …`).
#[derive(Clone, Copy)]
struct Health {
    nodes: usize,
    features: usize,
    history: usize,
    slots_per_day: usize,
    ready: bool,
}

fn parse_health(text: &str) -> Result<Health, String> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    if tokens.first() != Some(&"ok") {
        return Err(format!("healthz did not start with ok: {text:?}"));
    }
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for pair in tokens[1..].chunks(2) {
        if let [k, v] = pair {
            fields.insert(k, v);
        }
    }
    let num = |k: &str| -> Result<usize, String> {
        fields
            .get(k)
            .ok_or_else(|| format!("healthz missing {k}: {text:?}"))?
            .parse()
            .map_err(|e| format!("healthz {k}: {e}"))
    };
    Ok(Health {
        nodes: num("nodes")?,
        features: num("features")?,
        history: num("history")?,
        slots_per_day: num("slots_per_day")?,
        ready: fields.get("ready") == Some(&"true"),
    })
}

/// Deterministic synthetic measurements for step `t`: values varying
/// smoothly so forecasts are well-conditioned.
fn observation_values(t: usize, nodes: usize, features: usize) -> Matrix {
    Matrix::from_fn(nodes, features, |r, c| {
        40.0 + 10.0 * (((t + 1) * (r + 2) + c) as f64 * 0.37).sin()
    })
}

/// [`observation_values`] with an all-ones mask, on the wire format.
fn observation(t: usize, h: &Health) -> String {
    let values = observation_values(t, h.nodes, h.features);
    let mask = Matrix::from_fn(h.nodes, h.features, |_, _| 1.0);
    wire::format_observation(t % h.slots_per_day, &values, &mask)
}

fn fill_window(client: &mut HttpClient, h: &Health) -> Result<(), String> {
    for t in 0..h.history {
        client.post_ok("/observe", &observation(t, h))?;
    }
    Ok(())
}

fn smoke(addr: &str) -> Result<(), String> {
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect {addr}: {e}"))?;
    let health = parse_health(&client.get_ok("/healthz")?)?;
    println!(
        "healthz: {} nodes × {} features, history {}",
        health.nodes, health.features, health.history
    );

    if !health.ready {
        // An empty window must answer 409, not hang or 500.
        let resp = client.request("GET", "/forecast", "")?;
        if resp.status != 409 {
            return Err(format!("expected 409 before fill, got {}", resp.status));
        }
        fill_window(&mut client, &health)?;
        println!("observed {} steps", health.history);
    }

    let (version, steps) = wire::parse_steps(&client.get_ok("/forecast")?)?;
    if steps.is_empty() || steps[0].shape() != (health.nodes, health.features) {
        return Err(format!(
            "forecast has unexpected shape at version {version}"
        ));
    }
    for (i, step) in steps.iter().enumerate() {
        if !step.is_finite() {
            return Err(format!("forecast step {i} has non-finite values"));
        }
    }
    println!(
        "forecast: {} steps at window version {version}",
        steps.len()
    );

    let (_, imputed) = wire::parse_steps(&client.get_ok("/imputed")?)?;
    if imputed.len() != health.history {
        return Err(format!(
            "imputed window has {} steps, expected {}",
            imputed.len(),
            health.history
        ));
    }

    let metrics = client.get_ok("/metrics")?;
    for needle in [
        "st_serve_requests_total{route=\"forecast\"}",
        "st_serve_latency_bucket{le=\"+inf\"}",
    ] {
        if !metrics.contains(needle) {
            return Err(format!("metrics missing {needle}"));
        }
    }
    println!("smoke ok");
    Ok(())
}

/// Nearest-rank percentile (see `rihgcn_bench::timing::percentile`); `0`
/// for an empty sample set. The previous `((len−1)·p).round()` indexing was
/// off by one on even sample counts (it picked the upper middle for p50).
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    rihgcn_bench::timing::percentile(sorted_us, p)
}

fn load(addr: &str, threads: usize, requests: usize) -> Result<(), String> {
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect {addr}: {e}"))?;
    let health = parse_health(&client.get_ok("/healthz")?)?;
    if !health.ready {
        fill_window(&mut client, &health)?;
    }
    // See load_multi_tenant: don't hold a worker with an idle connection.
    drop(client);

    let started = Instant::now();
    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let addr = addr.to_string();
        workers.push(std::thread::spawn(move || -> Result<Vec<u64>, String> {
            let mut client =
                HttpClient::connect(&addr, TIMEOUT).map_err(|e| format!("connect: {e}"))?;
            let mut latencies = Vec::with_capacity(requests);
            for _ in 0..requests {
                let t0 = Instant::now();
                client.get_ok("/forecast")?;
                latencies.push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            Ok(latencies)
        }));
    }
    let mut latencies = Vec::with_capacity(threads * requests);
    for w in workers {
        latencies.extend(w.join().map_err(|_| "client thread panicked")??);
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let total = latencies.len();
    println!(
        "{total} requests over {threads} threads in {elapsed:.3}s: {:.0} req/s, \
         p50 {}us, p99 {}us",
        total as f64 / elapsed,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );
    Ok(())
}

/// Tenant directory parsed from `GET /admin/tenants`
/// (`shards 2 models 4 max_models 0` header + one `tenant NAME shard S …`
/// row per resident model, sorted by name).
struct TenantDir {
    shards: usize,
    tenants: Vec<String>,
}

fn discover_tenants(client: &mut HttpClient) -> Result<TenantDir, String> {
    let text = client.get_ok("/admin/tenants")?;
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty /admin/tenants response")?;
    let tokens: Vec<&str> = header.split_whitespace().collect();
    let shards = match tokens.as_slice() {
        ["shards", s, ..] => s.parse().map_err(|e| format!("shards: {e}"))?,
        _ => return Err(format!("bad /admin/tenants header: {header:?}")),
    };
    let mut tenants = Vec::new();
    for line in lines {
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["tenant", name, "shard", ..] => tenants.push((*name).to_string()),
            [] => {}
            _ => return Err(format!("bad /admin/tenants row: {line:?}")),
        }
    }
    Ok(TenantDir { shards, tenants })
}

/// Cumulative distribution of Zipf weights `1/(i+1)^s` over `n` ranks.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect();
    let total: f64 = cdf.iter().sum();
    let mut acc = 0.0;
    for w in &mut cdf {
        acc += *w / total;
        *w = acc;
    }
    cdf
}

fn sample_rank(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Value of the first sample line starting with `name` in a metrics scrape.
fn metric_value(metrics: &str, name: &str) -> Result<u64, String> {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| format!("metrics missing {name}"))
}

fn load_multi_tenant(
    addr: &str,
    threads: usize,
    requests: usize,
    tenants: usize,
    zipf: f64,
    seed: u64,
) -> Result<(), String> {
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect {addr}: {e}"))?;
    let dir = discover_tenants(&mut client)?;
    if dir.tenants.len() < tenants {
        return Err(format!(
            "server has {} tenants, --tenants {tenants} requested",
            dir.tenants.len()
        ));
    }
    let names: Vec<String> = dir.tenants.into_iter().take(tenants).collect();
    for name in &names {
        let health = parse_health(&client.get_ok(&format!("/healthz?tenant={name}"))?)?;
        if !health.ready {
            for t in 0..health.history {
                client.post_ok(&format!("/observe?tenant={name}"), &observation(t, &health))?;
            }
        }
    }
    // Release the discovery connection: on a small worker pool an idle
    // keep-alive connection would otherwise hold a worker (until the
    // server's read timeout 408s it) while the load connections queue.
    drop(client);

    let cdf = zipf_cdf(names.len(), zipf);
    let started = Instant::now();
    let mut workers = Vec::with_capacity(threads);
    for idx in 0..threads {
        let addr = addr.to_string();
        let names = names.clone();
        let cdf = cdf.clone();
        let shards = dir.shards;
        workers.push(std::thread::spawn(
            move || -> Result<Vec<Vec<u64>>, String> {
                let mut client =
                    HttpClient::connect(&addr, TIMEOUT).map_err(|e| format!("connect: {e}"))?;
                let mut rng = st_tensor::rng(seed + idx as u64 * 7919);
                let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
                for _ in 0..requests {
                    let name = &names[sample_rank(&cdf, rng.gen_f64())];
                    let t0 = Instant::now();
                    client.get_ok(&format!("/forecast?tenant={name}"))?;
                    let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    per_shard[shard_of(name, shards)].push(us);
                }
                Ok(per_shard)
            },
        ));
    }
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); dir.shards];
    for w in workers {
        for (shard, latencies) in w
            .join()
            .map_err(|_| "client thread panicked")??
            .into_iter()
            .enumerate()
        {
            per_shard[shard].extend(latencies);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let total: usize = per_shard.iter().map(Vec::len).sum();
    println!(
        "{total} requests over {threads} threads × {tenants} tenants (zipf {zipf}) \
         in {elapsed:.3}s: {:.0} req/s aggregate",
        total as f64 / elapsed,
    );
    for (shard, latencies) in per_shard.iter_mut().enumerate() {
        latencies.sort_unstable();
        println!(
            "shard {shard}: {} requests, p50 {}us, p99 {}us",
            latencies.len(),
            percentile(latencies, 0.50),
            percentile(latencies, 0.99),
        );
    }

    // At quiescence the per-shard request counters must sum exactly to
    // the aggregate engine counter — the registry's consistency contract.
    let mut client =
        HttpClient::connect(addr, TIMEOUT).map_err(|e| format!("connect for metrics: {e}"))?;
    let metrics = client.get_ok("/metrics")?;
    let mut shard_sum = 0u64;
    for shard in 0..dir.shards {
        shard_sum += metric_value(
            &metrics,
            &format!("st_serve_shard_requests_total{{shard=\"{shard}\"}}"),
        )?;
    }
    let engine_total = metric_value(&metrics, "st_serve_engine_requests_total")?;
    if shard_sum != engine_total {
        return Err(format!(
            "per-shard requests sum to {shard_sum} but engine total is {engine_total}"
        ));
    }
    println!("per-shard requests sum {shard_sum} == engine total (consistent)");
    Ok(())
}

/// The deterministic in-process forecaster both bench-batch engines
/// load. Deliberately small: batching amortises per-window tape
/// overhead (op dispatch, pool traffic, session bookkeeping), so the
/// win is largest exactly where serving latency is cheapest — many
/// small tenants on one shard, the registry's design centre.
fn bench_forecaster() -> rihgcn_core::OnlineForecaster {
    let ds = st_data::generate_pems(&st_data::PemsConfig {
        num_nodes: 4,
        num_days: 2,
        ..Default::default()
    });
    let ds = ds.with_extra_missing(0.3, &mut st_tensor::rng(3));
    let (norm, z) = rihgcn_core::prepare_split(&ds.split_chronological());
    let cfg = rihgcn_core::RihgcnConfig {
        gcn_dim: 2,
        lstm_dim: 4,
        cheb_k: 2,
        num_temporal_graphs: 2,
        history: 6,
        horizon: 3,
        ..Default::default()
    };
    let model = rihgcn_core::RihgcnModel::from_dataset(&norm.train, cfg);
    rihgcn_core::OnlineForecaster::new(model, z)
}

/// One saturation run against a fresh single-shard engine at the given
/// `max_batch`: after filling the window, the submitter fire-and-forgets
/// `forecasts` observe → forecast pairs straight into the shard's
/// bounded queue, then awaits every reply. The queue therefore holds a
/// standing backlog the whole run, and because each observe bumps the
/// window version, no forecast can coalesce on the version cache: the
/// drain loop either runs every window alone (`max_batch` 1) or parks
/// up to `max_batch` distinct versions and answers them with one
/// batched tape run.
///
/// Two details keep the measurement honest on a small host. The backlog
/// is headed by [`PRELUDE`] observe → imputed pairs — each imputation
/// hits a fresh window version, so the shard answers it with a full
/// inline tape run; on a single-CPU box that keeps the drain busy with
/// compute (instead of racing the submitter for the queue and flushing
/// partial batches at transient queue-empty) until the flood is fully
/// queued. And throughput is measured steady-state, first forecast
/// reply → last, so both runs exclude their warm-up. Returns forecast
/// RPS plus the batch histogram `(count, sum)`.
fn bench_batch_run(max_batch: usize, forecasts: usize) -> Result<(f64, u64, u64), String> {
    /// Observe → imputed pairs heading the backlog (see above).
    const PRELUDE: usize = 8;
    let metrics = Arc::new(Metrics::with_shards(1));
    let registry = Registry::new(
        RegistryConfig {
            shards: 1,
            max_batch,
            // Hold the whole backlog: with a short queue the submitter
            // parks on every freed slot and the drain can win the
            // wake-up race, flushing partial batches at queue-empty.
            queue_depth: 2 * (PRELUDE + forecasts) + 16,
            // On a single-CPU host the drain still sees transient
            // queue-empty whenever it preempts the submitter mid-flood;
            // a short linger lets batches fill regardless.
            batch_linger: Duration::from_micros(200),
            ..Default::default()
        },
        Arc::clone(&metrics),
    );
    registry
        .load("bench", bench_forecaster())
        .map_err(|e| format!("load bench tenant: {e}"))?;
    let resolved = registry
        .resolve("bench")
        .ok_or("bench tenant missing after load")?;
    let info = resolved.info;

    let observe = |t: usize, reply: &std::sync::mpsc::Sender<Result<ObserveAck, EngineError>>| {
        registry.submit(
            resolved.shard,
            ShardRequest::Observe {
                tenant: Arc::clone(&resolved.key),
                values: observation_values(t, info.nodes, info.features),
                mask: Matrix::from_fn(info.nodes, info.features, |_, _| 1.0),
                slot: t % info.slots_per_day,
                reply: reply.clone(),
            },
        )
    };

    // Fill the window before the clock starts.
    let (ack_tx, ack_rx) = channel();
    for t in 0..info.history {
        observe(t, &ack_tx)?;
    }
    for _ in 0..info.history {
        ack_rx
            .recv()
            .map_err(|_| "observe ack channel closed")?
            .map_err(|e| format!("window fill: {e}"))?;
    }

    // Pre-build every request so the flood is pure channel sends — the
    // queue then holds a standing backlog rather than draining between
    // submits, which would flush partial batches.
    let (steps_tx, steps_rx) = channel();
    let (imputed_tx, imputed_rx) = channel();
    let mut backlog = Vec::with_capacity(2 * (PRELUDE + forecasts));
    let mut next_slot = info.history;
    for _ in 0..PRELUDE {
        backlog.push(ShardRequest::Observe {
            tenant: Arc::clone(&resolved.key),
            values: observation_values(next_slot, info.nodes, info.features),
            mask: Matrix::from_fn(info.nodes, info.features, |_, _| 1.0),
            slot: next_slot % info.slots_per_day,
            reply: ack_tx.clone(),
        });
        backlog.push(ShardRequest::Imputed {
            tenant: Arc::clone(&resolved.key),
            reply: imputed_tx.clone(),
        });
        next_slot += 1;
    }
    for _ in 0..forecasts {
        backlog.push(ShardRequest::Observe {
            tenant: Arc::clone(&resolved.key),
            values: observation_values(next_slot, info.nodes, info.features),
            mask: Matrix::from_fn(info.nodes, info.features, |_, _| 1.0),
            slot: next_slot % info.slots_per_day,
            reply: ack_tx.clone(),
        });
        backlog.push(ShardRequest::Forecast {
            tenant: Arc::clone(&resolved.key),
            reply: steps_tx.clone(),
        });
        next_slot += 1;
    }
    for req in backlog {
        registry.submit(resolved.shard, req)?;
    }
    drop(steps_tx);
    drop(imputed_tx);
    let mut received = 0usize;
    let mut first: Option<Instant> = None;
    let mut last = Instant::now();
    while let Ok(reply) = steps_rx.recv() {
        let reply = reply.map_err(|e| format!("forecast: {e}"))?;
        if reply.steps.len() != info.horizon {
            return Err(format!(
                "forecast reply has {} steps, expected {}",
                reply.steps.len(),
                info.horizon
            ));
        }
        last = Instant::now();
        first.get_or_insert(last);
        received += 1;
    }
    if received != forecasts {
        return Err(format!(
            "expected {forecasts} forecast replies, got {received}"
        ));
    }
    drop(ack_tx);
    while let Ok(ack) = ack_rx.recv() {
        ack.map_err(|e| format!("observe: {e}"))?;
    }
    let mut imputed_replies = 0usize;
    while let Ok(reply) = imputed_rx.recv() {
        reply.map_err(|e| format!("imputed: {e}"))?;
        imputed_replies += 1;
    }
    if imputed_replies != PRELUDE {
        return Err(format!(
            "expected {PRELUDE} imputed replies, got {imputed_replies}"
        ));
    }
    let elapsed = (last - first.ok_or("no forecast replies")?).as_secs_f64();
    let rps = (forecasts - 1) as f64 / elapsed;

    // Same consistency gate as multi-tenant load: at quiescence per-shard
    // request counters must sum exactly to the aggregate engine counter.
    let rendered = registry.render_metrics();
    let shard_sum = metric_value(&rendered, "st_serve_shard_requests_total{shard=\"0\"}")?;
    let engine_total = metric_value(&rendered, "st_serve_engine_requests_total")?;
    if shard_sum != engine_total {
        return Err(format!(
            "max_batch {max_batch}: per-shard requests sum to {shard_sum} \
             but engine total is {engine_total}"
        ));
    }
    let batch_count = metrics.total_batches();
    let batch_sum = metrics.total_batched_windows();
    println!(
        "max_batch {max_batch}: {forecasts} forecasts, steady-state {elapsed:.3}s \
         = {rps:.0} req/s, {batch_count} batched runs answering {batch_sum} windows \
         (mean batch {:.2})",
        batch_sum as f64 / batch_count.max(1) as f64
    );
    Ok((rps, batch_count, batch_sum))
}

/// Timed repetitions per `max_batch` setting; the best run of each is
/// compared, so OS scheduling jitter on a shared host can't fail the
/// gate unless it hits all repetitions of one side.
const BENCH_BATCH_REPS: usize = 3;

fn bench_batch(forecasts: usize, out: &str) -> Result<(), String> {
    let forecasts = forecasts.max(2);
    let mut rps_unbatched = 0f64;
    for _ in 0..BENCH_BATCH_REPS {
        let (rps, count1, sum1) = bench_batch_run(1, forecasts)?;
        if count1 != sum1 {
            return Err(format!(
                "--max-batch 1 must disable batching, yet {count1} runs answered {sum1} windows"
            ));
        }
        rps_unbatched = rps_unbatched.max(rps);
    }
    let (mut rps_batched, mut count16, mut sum16) = (0f64, 0u64, 0u64);
    for _ in 0..BENCH_BATCH_REPS {
        let (rps, count, sum) = bench_batch_run(16, forecasts)?;
        if sum <= count {
            return Err(format!(
                "saturated queue at --max-batch 16 formed no batch > 1 \
                 ({count} runs, {sum} windows)"
            ));
        }
        if rps > rps_batched {
            (rps_batched, count16, sum16) = (rps, count, sum);
        }
    }
    let speedup = rps_batched / rps_unbatched;

    let json = format!(
        "{{\n  \"bench\": \"serve_batched_forecast\",\n  \"forecasts\": {forecasts},\n  \"st_num_threads\": {},\n  \"rps_max_batch_1\": {rps_unbatched:.1},\n  \"rps_max_batch_16\": {rps_batched:.1},\n  \"speedup\": {speedup:.3},\n  \"batched_runs\": {count16},\n  \"batched_windows\": {sum16},\n  \"mean_batch_size\": {:.3}\n}}\n",
        st_par::num_threads(),
        sum16 as f64 / count16.max(1) as f64
    );
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    print!("{json}");

    if speedup < MIN_BATCH_SPEEDUP {
        return Err(format!(
            "batched throughput is only {speedup:.2}x the unbatched baseline \
             (floor {MIN_BATCH_SPEEDUP}x)"
        ));
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let result = if args.bench_batch {
        bench_batch(args.threads.max(1) * args.requests.max(1), &args.out)
    } else if args.smoke {
        smoke(&args.addr)
    } else if args.tenants > 0 {
        load_multi_tenant(
            &args.addr,
            args.threads.max(1),
            args.requests.max(1),
            args.tenants,
            args.zipf,
            args.seed,
        )
    } else {
        load(&args.addr, args.threads.max(1), args.requests.max(1))
    };
    if args.shutdown {
        let stop = HttpClient::connect(&args.addr, TIMEOUT)
            .map_err(|e| format!("connect for shutdown: {e}"))
            .and_then(|mut c| c.post_ok("/admin/shutdown", ""));
        if let Err(e) = stop {
            eprintln!("loadgen: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = result {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }
}
