//! Linear solvers and spectral utilities.
//!
//! Provides the handful of dense linear-algebra routines the workspace needs:
//! Gaussian elimination with partial pivoting (used by the VAR baseline and
//! the matrix-factorisation imputers), Cholesky factorisation for symmetric
//! positive-definite systems, ordinary least squares via the normal
//! equations, and a power-iteration bound on the largest eigenvalue of a
//! symmetric matrix (needed to scale the graph Laplacian for Chebyshev
//! convolutions).

use crate::Matrix;
use std::error::Error;
use std::fmt;

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The coefficient matrix is singular (or numerically so).
    Singular,
    /// The matrix is not square or the right-hand side has the wrong shape.
    ShapeMismatch(String),
    /// Cholesky factorisation encountered a non-positive pivot.
    NotPositiveDefinite,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular to working precision"),
            SolveError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            SolveError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
        }
    }
}

impl Error for SolveError {}

/// Solves `A · X = B` by Gaussian elimination with partial pivoting.
///
/// `B` may have multiple columns; the returned matrix has the same shape.
///
/// # Errors
///
/// Returns [`SolveError::ShapeMismatch`] if `A` is not square or `B` has a
/// different row count, and [`SolveError::Singular`] if a pivot smaller than
/// `1e-12` (relative to the largest entry) is encountered.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::ShapeMismatch(format!(
            "coefficient matrix is {}x{}, expected square",
            a.rows(),
            a.cols()
        )));
    }
    if b.rows() != n {
        return Err(SolveError::ShapeMismatch(format!(
            "rhs has {} rows, expected {}",
            b.rows(),
            n
        )));
    }

    let mut aug = a.clone();
    let mut rhs = b.clone();
    let scale = aug.max_abs().max(1.0);
    let tol = 1e-12 * scale;

    for col in 0..n {
        // Partial pivoting: bring the largest remaining entry into position.
        let mut pivot_row = col;
        let mut pivot_val = aug[(col, col)].abs();
        for r in col + 1..n {
            let v = aug[(r, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val <= tol {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = aug[(col, c)];
                aug[(col, c)] = aug[(pivot_row, c)];
                aug[(pivot_row, c)] = tmp;
            }
            for c in 0..rhs.cols() {
                let tmp = rhs[(col, c)];
                rhs[(col, c)] = rhs[(pivot_row, c)];
                rhs[(pivot_row, c)] = tmp;
            }
        }

        let pivot = aug[(col, col)];
        for r in col + 1..n {
            let factor = aug[(r, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = aug[(col, c)];
                aug[(r, c)] -= factor * v;
            }
            for c in 0..rhs.cols() {
                let v = rhs[(col, c)];
                rhs[(r, c)] -= factor * v;
            }
        }
    }

    // Back substitution.
    let mut x = Matrix::zeros(n, b.cols());
    for c in 0..b.cols() {
        for r in (0..n).rev() {
            let mut acc = rhs[(r, c)];
            for k in r + 1..n {
                acc -= aug[(r, k)] * x[(k, c)];
            }
            x[(r, c)] = acc / aug[(r, r)];
        }
    }
    Ok(x)
}

/// Cholesky factorisation of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular `L` with `A = L·Lᵀ`.
///
/// # Errors
///
/// Returns [`SolveError::ShapeMismatch`] for non-square input and
/// [`SolveError::NotPositiveDefinite`] when a pivot is non-positive.
pub fn cholesky(a: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::ShapeMismatch(format!(
            "matrix is {}x{}, expected square",
            a.rows(),
            a.cols()
        )));
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut acc = a[(i, j)];
            for k in 0..j {
                acc -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if acc <= 0.0 {
                    return Err(SolveError::NotPositiveDefinite);
                }
                l[(i, j)] = acc.sqrt();
            } else {
                l[(i, j)] = acc / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves the SPD system `A · X = B` via Cholesky factorisation.
///
/// # Errors
///
/// Propagates the errors of [`cholesky`]; additionally returns
/// [`SolveError::ShapeMismatch`] when `B` has the wrong row count.
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix, SolveError> {
    let l = cholesky(a)?;
    let n = a.rows();
    if b.rows() != n {
        return Err(SolveError::ShapeMismatch(format!(
            "rhs has {} rows, expected {}",
            b.rows(),
            n
        )));
    }
    // Forward substitution: L · Y = B.
    let mut y = Matrix::zeros(n, b.cols());
    for c in 0..b.cols() {
        for r in 0..n {
            let mut acc = b[(r, c)];
            for k in 0..r {
                acc -= l[(r, k)] * y[(k, c)];
            }
            y[(r, c)] = acc / l[(r, r)];
        }
    }
    // Back substitution: Lᵀ · X = Y.
    let mut x = Matrix::zeros(n, b.cols());
    for c in 0..b.cols() {
        for r in (0..n).rev() {
            let mut acc = y[(r, c)];
            for k in r + 1..n {
                acc -= l[(k, r)] * x[(k, c)];
            }
            x[(r, c)] = acc / l[(r, r)];
        }
    }
    Ok(x)
}

/// Ordinary least squares: finds `W` minimising `‖X·W − Y‖²` via the
/// regularised normal equations `(XᵀX + ridge·I) W = XᵀY`.
///
/// A small `ridge` (e.g. `1e-8`) keeps the system well-conditioned; pass
/// `0.0` for plain OLS.
///
/// # Errors
///
/// Returns an error if the normal-equation system cannot be solved.
pub fn least_squares(x: &Matrix, y: &Matrix, ridge: f64) -> Result<Matrix, SolveError> {
    if x.rows() != y.rows() {
        return Err(SolveError::ShapeMismatch(format!(
            "design matrix has {} rows but targets have {}",
            x.rows(),
            y.rows()
        )));
    }
    let mut xtx = x.matmul_tn(x);
    if ridge > 0.0 {
        for i in 0..xtx.rows() {
            xtx[(i, i)] += ridge;
        }
    }
    let xty = x.matmul_tn(y);
    // The normal equations are SPD whenever X has full column rank (plus
    // ridge); fall back to pivoted elimination if Cholesky rejects them.
    solve_spd(&xtx, &xty).or_else(|_| solve(&xtx, &xty))
}

/// Estimates the largest eigenvalue (in absolute value) of a symmetric
/// matrix by power iteration.
///
/// Returns an upper estimate after at most `max_iter` iterations or when two
/// consecutive Rayleigh quotients differ by less than `tol`. For the zero
/// matrix, returns `0.0`.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn power_iteration_max_eig(a: &Matrix, max_iter: usize, tol: f64) -> f64 {
    assert_eq!(a.rows(), a.cols(), "power iteration needs a square matrix");
    let n = a.rows();
    if n == 0 || a.max_abs() == 0.0 {
        return 0.0;
    }
    // Deterministic, fully-dense starting vector.
    let mut v = Matrix::from_fn(n, 1, |r, _| 1.0 + (r as f64) * 0.37);
    let mut norm = v.frobenius_norm();
    v = v.scale(1.0 / norm);
    let mut lambda = 0.0;
    for _ in 0..max_iter {
        let w = a.matmul(&v);
        norm = w.frobenius_norm();
        if norm == 0.0 {
            return 0.0;
        }
        let next = w.scale(1.0 / norm);
        let rayleigh = next.matmul_tn(&a.matmul(&next))[(0, 0)];
        if (rayleigh - lambda).abs() < tol {
            return rayleigh.abs();
        }
        lambda = rayleigh;
        v = next;
    }
    lambda.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[10.0]]);
        let x = solve(&a, &b).unwrap();
        assert!(approx(x[(0, 0)], 1.0, 1e-10));
        assert!(approx(x[(1, 0)], 3.0, 1e-10));
    }

    #[test]
    fn solve_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[8.0, 4.0], &[2.0, 6.0]]);
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Matrix::from_rows(&[&[2.0], &[3.0]]);
        let x = solve(&a, &b).unwrap();
        assert!(approx(x[(0, 0)], 3.0, 1e-12));
        assert!(approx(x[(1, 0)], 2.0, 1e-12));
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0]]);
        assert_eq!(solve(&a, &b), Err(SolveError::Singular));
    }

    #[test]
    fn solve_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 1);
        assert!(matches!(solve(&a, &b), Err(SolveError::ShapeMismatch(_))));
        let a = Matrix::identity(2);
        let b = Matrix::zeros(3, 1);
        assert!(matches!(solve(&a, &b), Err(SolveError::ShapeMismatch(_))));
    }

    #[test]
    fn cholesky_known_factor() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]);
        let l = cholesky(&a).unwrap();
        assert!(approx(l[(0, 0)], 2.0, 1e-12));
        assert!(approx(l[(1, 0)], 1.0, 1e-12));
        assert!(approx(l[(1, 1)], 2.0, 1e-12));
        let rebuilt = l.matmul_nt(&l);
        assert!(a.max_abs_diff(&rebuilt) < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(cholesky(&a), Err(SolveError::NotPositiveDefinite));
    }

    #[test]
    fn solve_spd_matches_general_solver() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let x1 = solve_spd(&a, &b).unwrap();
        let x2 = solve(&a, &b).unwrap();
        assert!(x1.max_abs_diff(&x2) < 1e-10);
    }

    #[test]
    fn least_squares_recovers_plane() {
        // y = 2·x1 − 3·x2, exactly representable.
        let x = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, 1.0],
            &[1.0, 2.0],
        ]);
        let y = Matrix::from_rows(&[&[2.0], &[-3.0], &[-1.0], &[1.0], &[-4.0]]);
        let w = least_squares(&x, &y, 0.0).unwrap();
        assert!(approx(w[(0, 0)], 2.0, 1e-9));
        assert!(approx(w[(1, 0)], -3.0, 1e-9));
    }

    #[test]
    fn least_squares_with_ridge_is_finite_on_rank_deficient_input() {
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let y = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let w = least_squares(&x, &y, 1e-6).unwrap();
        assert!(w.is_finite());
        // Both columns identical ⇒ ridge splits the weight evenly.
        assert!(approx(w[(0, 0)], w[(1, 0)], 1e-6));
    }

    #[test]
    fn power_iteration_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -7.0]]);
        let lambda = power_iteration_max_eig(&a, 500, 1e-12);
        assert!(approx(lambda, 7.0, 1e-6));
    }

    #[test]
    fn power_iteration_symmetric() {
        // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let lambda = power_iteration_max_eig(&a, 500, 1e-12);
        assert!(approx(lambda, 3.0, 1e-6));
    }

    #[test]
    fn power_iteration_zero_matrix() {
        assert_eq!(power_iteration_max_eig(&Matrix::zeros(3, 3), 10, 1e-9), 0.0);
    }
}
