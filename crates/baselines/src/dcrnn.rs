//! DCRNN-lite: diffusion-convolutional recurrent network (Li et al.,
//! ICLR'18) at reduced depth.
//!
//! The canonical deep traffic-forecasting baseline: a GRU whose matrix
//! multiplications are replaced by graph convolutions. This reduced form
//! keeps the graph-convolutional GRU cell (Chebyshev convolution standing
//! in for the two-directional diffusion operator — our graphs are
//! undirected) and replaces the sequence-to-sequence decoder with the same
//! FC read-out used by the paper's other baselines, so comparisons isolate
//! the recurrent-spatial cell. No imputation path: expects mean-filled
//! inputs, like ASTGCN / Graph WaveNet.

use rihgcn_core::Forecaster;
use st_autodiff::Var;
use st_data::{TrafficDataset, WindowSample};
use st_graph::{gaussian_adjacency, scaled_laplacian_from_adjacency};
use st_nn::{Activation, ChebGcn, Linear, ParamStore, Session};
use st_tensor::{rng, Matrix, StRng};

/// Hyper-parameters for [`DcrnnLite`].
#[derive(Debug, Clone, PartialEq)]
pub struct DcrnnConfig {
    /// Hidden state width of the graph-convolutional GRU.
    pub hidden_dim: usize,
    /// Chebyshev order of the diffusion stand-in.
    pub cheb_k: usize,
    /// History window length.
    pub history: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Adjacency sparsity threshold.
    pub epsilon: f64,
    /// Parameter seed.
    pub seed: u64,
}

impl Default for DcrnnConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 12,
            cheb_k: 2,
            history: 12,
            horizon: 12,
            epsilon: 0.1,
            seed: 41,
        }
    }
}

/// The reduced DCRNN comparator: a GRU over graph convolutions.
pub struct DcrnnLite {
    store: ParamStore,
    cfg: DcrnnConfig,
    laplacian: Matrix,
    reset_gate: ChebGcn,  // (D+H) → H
    update_gate: ChebGcn, // (D+H) → H
    candidate: ChebGcn,   // (D+H) → H
    pred_head: Linear,    // H → D·horizon
    num_features: usize,
    num_nodes: usize,
}

impl std::fmt::Debug for DcrnnLite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DcrnnLite({} params)", self.store.num_scalars())
    }
}

impl DcrnnLite {
    /// Builds the model on a dataset's geographic graph.
    pub fn from_dataset(train: &TrafficDataset, cfg: DcrnnConfig) -> Self {
        let n = train.num_nodes();
        let d = train.num_features();
        let mut init = rng(cfg.seed);
        let mut store = ParamStore::new();

        let adj = gaussian_adjacency(&train.network.road_distance_matrix(), None, cfg.epsilon);
        let laplacian = scaled_laplacian_from_adjacency(&adj);
        let h = cfg.hidden_dim;
        let make_gate = |store: &mut ParamStore, init: &mut StRng, name: &str| {
            ChebGcn::new(
                store,
                init,
                d + h,
                h,
                cfg.cheb_k,
                Activation::Identity,
                name,
            )
        };
        let reset_gate = make_gate(&mut store, &mut init, "dcrnn.r");
        let update_gate = make_gate(&mut store, &mut init, "dcrnn.u");
        let candidate = make_gate(&mut store, &mut init, "dcrnn.c");
        let pred_head = Linear::new(&mut store, &mut init, h, d * cfg.horizon, "dcrnn.pred");

        Self {
            store,
            cfg,
            laplacian,
            reset_gate,
            update_gate,
            candidate,
            pred_head,
            num_features: d,
            num_nodes: n,
        }
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// One graph-convolutional GRU step.
    fn gru_step(&self, sess: &mut Session, x: Var, h: Var) -> Var {
        let xh = sess.tape.concat_cols(x, h);
        let r_pre = self
            .reset_gate
            .forward(sess, &self.store, &self.laplacian, xh);
        let r = sess.tape.sigmoid(r_pre);
        let u_pre = self
            .update_gate
            .forward(sess, &self.store, &self.laplacian, xh);
        let u = sess.tape.sigmoid(u_pre);
        let rh = sess.tape.mul(r, h);
        let xrh = sess.tape.concat_cols(x, rh);
        let c_pre = self
            .candidate
            .forward(sess, &self.store, &self.laplacian, xrh);
        let c = sess.tape.tanh(c_pre);
        // h' = u⊙h + (1−u)⊙c
        let uh = sess.tape.mul(u, h);
        let one = sess.constant(Matrix::ones(self.num_nodes, self.cfg.hidden_dim));
        let inv_u = sess.tape.sub(one, u);
        let uc = sess.tape.mul(inv_u, c);
        sess.tape.add(uh, uc)
    }

    fn run_sample(&self, sess: &mut Session, sample: &WindowSample) -> (Vec<Var>, Var) {
        assert_eq!(
            sample.history_len(),
            self.cfg.history,
            "history length mismatch"
        );
        assert_eq!(
            sample.horizon_len(),
            self.cfg.horizon,
            "horizon length mismatch"
        );

        let mut h = sess.constant(Matrix::zeros(self.num_nodes, self.cfg.hidden_dim));
        for t in 0..self.cfg.history {
            let x = sess.constant(sample.inputs[t].clone());
            h = self.gru_step(sess, x, h);
        }
        let pred_flat = self.pred_head.forward(sess, &self.store, h);

        let d = self.num_features;
        let mut predictions = Vec::with_capacity(self.cfg.horizon);
        let mut terms = Vec::with_capacity(self.cfg.horizon);
        for hz in 0..self.cfg.horizon {
            let step = sess.tape.slice_cols(pred_flat, hz * d, (hz + 1) * d);
            let target = sess.constant(sample.targets[hz].clone());
            terms.push(sess.tape.masked_mae(step, target, &sample.target_masks[hz]));
            predictions.push(step);
        }
        let mut loss = terms[0];
        for &t in &terms[1..] {
            loss = sess.tape.add(loss, t);
        }
        let loss = sess.tape.scale(loss, 1.0 / self.cfg.horizon as f64);
        (predictions, loss)
    }
}

impl Forecaster for DcrnnLite {
    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn accumulate_gradients(&mut self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, loss) = self.run_sample(&mut sess, sample);
        let value = sess.tape.value(loss)[(0, 0)];
        sess.backward(loss);
        sess.write_grads(&mut self.store);
        value
    }

    fn loss(&self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let (_, loss) = self.run_sample(&mut sess, sample);
        sess.tape.value(loss)[(0, 0)]
    }

    fn predict(&self, sample: &WindowSample) -> Vec<Matrix> {
        let mut sess = Session::new(&self.store);
        let (preds, _) = self.run_sample(&mut sess, sample);
        preds.iter().map(|&v| sess.tape.value(v).clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean_fill_samples;
    use rihgcn_core::{fit, prepare_split, TrainConfig};
    use st_data::{generate_pems, PemsConfig, WindowSampler};

    fn tiny() -> (TrafficDataset, DcrnnConfig) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let cfg = DcrnnConfig {
            hidden_dim: 4,
            cheb_k: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        (ds, cfg)
    }

    #[test]
    fn forward_shapes() {
        let (ds, cfg) = tiny();
        let model = DcrnnLite::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let preds = model.predict(&sample);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].shape(), (4, 4));
        assert!(preds.iter().all(Matrix::is_finite));
        assert!(model.num_parameters() > 0);
    }

    #[test]
    fn all_gates_receive_gradients() {
        let (ds, cfg) = tiny();
        let mut model = DcrnnLite::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 5);
        let _ = model.accumulate_gradients(&sample);
        for prefix in ["dcrnn.r", "dcrnn.u", "dcrnn.c", "dcrnn.pred"] {
            let touched = model
                .store
                .ids()
                .filter(|&id| model.store.name(id).starts_with(prefix))
                .any(|id| model.store.grad(id).max_abs() > 0.0);
            assert!(touched, "no gradient reached {prefix}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, cfg) = tiny();
        let split = ds.split_chronological();
        let (norm, _) = prepare_split(&split);
        let sampler = WindowSampler::new(4, 2, 12);
        let train = mean_fill_samples(&sampler.sample(&norm.train)[..6]);
        let mut model = DcrnnLite::from_dataset(&norm.train, cfg);
        let tc = TrainConfig {
            max_epochs: 4,
            batch_size: 3,
            learning_rate: 3e-3,
            ..Default::default()
        };
        let report = fit(&mut model, &train, &[], &tc);
        assert!(*report.train_losses.last().unwrap() < report.train_losses[0]);
    }

    #[test]
    fn hidden_state_influences_later_predictions() {
        // Changing an early input must change the forecast (recurrence works).
        // Run on the normalised split exactly as training does: raw traffic
        // magnitudes saturate the sigmoid gates, which freezes the update
        // gate (or not) depending on the luck of the parameter draw.
        let (ds, cfg) = tiny();
        let split = ds.split_chronological();
        let (norm, _) = prepare_split(&split);
        let model = DcrnnLite::from_dataset(&norm.train, cfg);
        let sampler = WindowSampler::new(4, 2, 1);
        let sample = sampler.window_at(&norm.train, 0);
        let base = model.predict(&sample);
        let mut perturbed = sample.clone();
        perturbed.inputs[0] = perturbed.inputs[0].map(|x| x + 5.0);
        let changed = model.predict(&perturbed);
        assert!(
            base[0].max_abs_diff(&changed[0]) > 1e-9,
            "first-step input must influence the forecast"
        );
    }
}
