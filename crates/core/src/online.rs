//! Streaming inference: forecasts as observations arrive.
//!
//! The paper's closing note — "the proposed method will be built into a
//! transportation application system to provide future traffic conditions
//! to users" — implies an online deployment mode. [`OnlineForecaster`]
//! wraps a trained [`RihgcnModel`] with a rolling observation window: push
//! each new (partial) measurement matrix as it arrives and ask for a
//! forecast or the imputed recent history at any time, all in original
//! data units.

use crate::{RihgcnModel, SampleOutput};
use st_data::{WindowSample, ZScore};
use st_tensor::Matrix;
use std::collections::VecDeque;

/// A rolling-window online wrapper around a trained model.
///
/// # Examples
///
/// ```no_run
/// use rihgcn_core::{prepare_split, OnlineForecaster, RihgcnConfig, RihgcnModel};
/// use st_data::{generate_pems, PemsConfig};
/// use st_tensor::Matrix;
///
/// let ds = generate_pems(&PemsConfig::default());
/// let (norm, z) = prepare_split(&ds.split_chronological());
/// let model = RihgcnModel::from_dataset(&norm.train, RihgcnConfig::default());
/// let mut online = OnlineForecaster::new(model, z);
/// // Feed measurements as they arrive (slot = time-of-day index).
/// online.push(Matrix::zeros(20, 4), Matrix::zeros(20, 4), 100);
/// ```
#[derive(Debug)]
pub struct OnlineForecaster {
    model: RihgcnModel,
    z: ZScore,
    window: VecDeque<(Matrix, Matrix, usize)>, // (raw values, mask, slot)
    history: usize,
    horizon: usize,
}

impl OnlineForecaster {
    /// Wraps a trained model and its normalisation transform.
    pub fn new(model: RihgcnModel, z: ZScore) -> Self {
        let history = model.config().history;
        let horizon = model.config().horizon;
        Self {
            model,
            z,
            window: VecDeque::with_capacity(history),
            history,
            horizon,
        }
    }

    /// Number of observations currently buffered (at most `history`).
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no observations are buffered yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Whether a full history window is available for forecasting.
    pub fn ready(&self) -> bool {
        self.window.len() == self.history
    }

    /// Read-only access to the wrapped model.
    pub fn model(&self) -> &RihgcnModel {
        &self.model
    }

    /// Pushes one timestamp of measurements in **original units**.
    ///
    /// `values` holds the observed readings (entries with `mask == 0` are
    /// ignored), `slot` is the time-of-day index of this timestamp. The
    /// oldest timestamp falls out once the window is full.
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the model.
    pub fn push(&mut self, values: Matrix, mask: Matrix, slot: usize) {
        assert_eq!(
            values.shape(),
            (self.model.num_nodes(), self.model.num_features()),
            "observation shape must be nodes × features"
        );
        assert_eq!(values.shape(), mask.shape(), "values/mask shape mismatch");
        if self.window.len() == self.history {
            self.window.pop_front();
        }
        self.window.push_back((values, mask, slot));
    }

    /// Clears the buffered window.
    pub fn reset(&mut self) {
        self.window.clear();
    }

    fn build_sample(&self) -> WindowSample {
        let n = self.model.num_nodes();
        let d = self.model.num_features();
        let mut inputs = Vec::with_capacity(self.history);
        let mut masks = Vec::with_capacity(self.history);
        let mut truths = Vec::with_capacity(self.history);
        let mut slots = Vec::with_capacity(self.history);
        for (raw, mask, slot) in &self.window {
            let norm = self.z.apply_matrix(raw);
            inputs.push(norm.hadamard(mask));
            truths.push(norm);
            masks.push(mask.clone());
            slots.push(*slot);
        }
        // Inference-only: zero targets under an all-zero mask contribute
        // nothing to the (unused) loss terms.
        let targets = vec![Matrix::zeros(n, d); self.horizon];
        let target_masks = vec![Matrix::zeros(n, d); self.horizon];
        WindowSample {
            inputs,
            masks,
            truths,
            targets,
            target_masks,
            slots,
            start: 0,
        }
    }

    fn run(&self) -> Option<SampleOutput> {
        if !self.ready() {
            return None;
        }
        Some(self.model.forward(&self.build_sample()))
    }

    /// The `T'`-step forecast in original units, or `None` until a full
    /// window has been pushed.
    pub fn forecast(&self) -> Option<Vec<Matrix>> {
        self.run().map(|out| {
            out.predictions
                .iter()
                .map(|p| self.z.invert_matrix(p))
                .collect()
        })
    }

    /// The imputed history window in original units (model estimates at
    /// hidden entries, observations elsewhere), or `None` until ready.
    pub fn imputed_window(&self) -> Option<Vec<Matrix>> {
        let out = self.run()?;
        Some(
            out.estimates
                .iter()
                .zip(self.window.iter())
                .map(|(est, (raw, mask, _))| {
                    // Complement in raw units: keep observations, fill holes
                    // with the (denormalised) model estimate.
                    let est_raw = self.z.invert_matrix(est);
                    let holes = est_raw.zip_map(mask, |e, m| e * (1.0 - m));
                    let observed = raw.hadamard(mask);
                    &holes + &observed
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare_split, RihgcnConfig};
    use st_data::{generate_pems, PemsConfig};
    use st_tensor::rng;

    fn setup() -> (OnlineForecaster, st_data::TrafficDataset) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 2,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.3, &mut rng(3));
        let (norm, z) = prepare_split(&ds.split_chronological());
        let cfg = RihgcnConfig {
            gcn_dim: 3,
            lstm_dim: 4,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        let model = RihgcnModel::from_dataset(&norm.train, cfg);
        (OnlineForecaster::new(model, z), ds)
    }

    #[test]
    fn not_ready_until_window_full() {
        let (mut online, ds) = setup();
        assert!(online.is_empty());
        for t in 0..3 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
            assert!(!online.ready());
            assert!(online.forecast().is_none());
        }
        online.push(ds.values.time_slice(3), ds.mask.time_slice(3), 3);
        assert!(online.ready());
        assert!(online.forecast().is_some());
    }

    #[test]
    fn forecast_shapes_and_units() {
        let (mut online, ds) = setup();
        for t in 0..4 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
        }
        let preds = online.forecast().unwrap();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].shape(), (4, 4));
        // Raw units: an untrained model's output after denormalisation is
        // still anchored near the data mean (tens of mph), not near 0.
        assert!(preds[0].mean() > 10.0, "mean was {}", preds[0].mean());
    }

    #[test]
    fn window_rolls_forward() {
        let (mut online, ds) = setup();
        for t in 0..4 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
        }
        let before = online.forecast().unwrap();
        online.push(ds.values.time_slice(4), ds.mask.time_slice(4), 4);
        assert_eq!(online.len(), 4); // still capped at history
        let after = online.forecast().unwrap();
        assert_ne!(before, after, "new observation must change the forecast");
    }

    #[test]
    fn imputed_window_preserves_observations() {
        let (mut online, ds) = setup();
        for t in 0..4 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
        }
        let imputed = online.imputed_window().unwrap();
        assert_eq!(imputed.len(), 4);
        for (t, win) in imputed.iter().enumerate() {
            for r in 0..4 {
                for c in 0..4 {
                    if ds.mask[(r, c, t)] != 0.0 {
                        assert!(
                            (win[(r, c)] - ds.values[(r, c, t)]).abs() < 1e-9,
                            "observed entries must pass through"
                        );
                    } else {
                        assert!(win[(r, c)].is_finite());
                    }
                }
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let (mut online, ds) = setup();
        for t in 0..4 {
            online.push(ds.values.time_slice(t), ds.mask.time_slice(t), t);
        }
        online.reset();
        assert!(online.is_empty());
        assert!(online.forecast().is_none());
    }
}
