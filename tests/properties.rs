//! Property-based tests over cross-crate invariants, using the public
//! facade API end to end.

use rihgcn::baselines::{last_observed_fill, mean_fill_sample};
use rihgcn::data::{drop_observed, holdout_split, mean_fill, missing_rate, ZScore};
use rihgcn::graph::{dtw, gaussian_adjacency, normalized_laplacian, Interval};
use rihgcn::nn::{mae, rmse};
use rihgcn::tensor::{linalg, rng, Matrix, Tensor3};
use st_check::{prop_assert, prop_assert_eq, prop_assume, Check, Gen};

fn small_tensor(g: &mut Gen) -> Tensor3 {
    let (n, d, t) = (g.usize_in(1, 4), g.usize_in(1, 3), g.usize_in(2, 12));
    g.tensor3(n, d, t, -100.0, 100.0)
}

#[test]
fn zscore_round_trips() {
    Check::new("zscore_round_trips")
        .cases(64)
        .run(small_tensor, |cube| {
            prop_assume!(!cube.is_empty());
            let mask = Tensor3::ones(cube.nodes(), cube.features(), cube.times());
            let z = ZScore::fit(cube, &mask);
            let back = z.invert(&z.apply(cube));
            let diff = back.zip_map(cube, |a, b| (a - b).abs());
            prop_assert!(diff.mean() < 1e-9);
            Ok(())
        });
}

#[test]
fn drop_observed_only_removes() {
    Check::new("drop_observed_only_removes").cases(64).run(
        |g| (small_tensor(g), g.f64_in(0.0, 1.0), g.u64_in(0, 1000)),
        |(cube, rate, seed)| {
            prop_assume!((0.0..=1.0).contains(rate));
            let mask = Tensor3::ones(cube.nodes(), cube.features(), cube.times());
            let dropped = drop_observed(&mask, *rate, &mut rng(*seed));
            // Missingness never decreases, and values are exactly {0, 1}.
            prop_assert!(missing_rate(&dropped) >= missing_rate(&mask));
            prop_assert!(dropped.as_slice().iter().all(|&m| m == 0.0 || m == 1.0));
            Ok(())
        },
    );
}

#[test]
fn holdout_partitions() {
    Check::new("holdout_partitions").cases(64).run(
        |g| (g.u64_in(0, 500), g.f64_in(0.0, 1.0)),
        |(seed, rate)| {
            prop_assume!((0.0..=1.0).contains(rate));
            let mask = drop_observed(&Tensor3::ones(3, 2, 20), 0.3, &mut rng(*seed));
            let (train, hold) = holdout_split(&mask, *rate, &mut rng(seed + 1));
            let union = train.zip_map(&hold, |a, b| a + b);
            prop_assert_eq!(union, mask);
            let overlap = train.zip_map(&hold, |a, b| a * b);
            prop_assert_eq!(overlap.as_slice().iter().sum::<f64>(), 0.0);
            Ok(())
        },
    );
}

#[test]
fn mean_fill_preserves_observed() {
    Check::new("mean_fill_preserves_observed").cases(64).run(
        |g| (small_tensor(g), g.u64_in(0, 500)),
        |(cube, seed)| {
            prop_assume!(!cube.is_empty());
            let mask = drop_observed(
                &Tensor3::ones(cube.nodes(), cube.features(), cube.times()),
                0.5,
                &mut rng(*seed),
            );
            let filled = mean_fill(cube, &mask);
            for i in 0..cube.len() {
                if mask.as_slice()[i] != 0.0 {
                    prop_assert_eq!(filled.as_slice()[i], cube.as_slice()[i]);
                }
                prop_assert!(filled.as_slice()[i].is_finite());
            }
            Ok(())
        },
    );
}

#[test]
fn last_fill_output_is_always_finite() {
    Check::new("last_fill_output_is_always_finite")
        .cases(64)
        .run(
            |g| (small_tensor(g), g.u64_in(0, 500)),
            |(cube, seed)| {
                prop_assume!(!cube.is_empty());
                let mask = drop_observed(
                    &Tensor3::ones(cube.nodes(), cube.features(), cube.times()),
                    0.7,
                    &mut rng(*seed),
                );
                let filled = last_observed_fill(cube, &mask);
                prop_assert!(filled.is_finite());
                Ok(())
            },
        );
}

#[test]
fn dtw_is_symmetric_nonnegative() {
    Check::new("dtw_is_symmetric_nonnegative").cases(64).run(
        |g| {
            let (la, lb) = (g.usize_in(1, 20), g.usize_in(1, 20));
            (g.vec_f64(la, -10.0, 10.0), g.vec_f64(lb, -10.0, 10.0))
        },
        |(a, b)| {
            prop_assume!(!a.is_empty() && !b.is_empty());
            let d1 = dtw(a, b);
            let d2 = dtw(b, a);
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-9);
            prop_assert!((dtw(a, a)).abs() < 1e-12);
            Ok(())
        },
    );
}

#[test]
fn adjacency_symmetric_bounded() {
    Check::new("adjacency_symmetric_bounded").cases(64).run(
        |g| (g.u64_in(0, 500), g.usize_in(2, 8)),
        |(seed, n)| {
            prop_assume!(*n >= 2);
            let n = *n;
            let coords = rihgcn::tensor::uniform_matrix(&mut rng(*seed), n, 2, 0.0, 10.0);
            let dist = Matrix::from_fn(n, n, |i, j| {
                ((coords[(i, 0)] - coords[(j, 0)]).powi(2)
                    + (coords[(i, 1)] - coords[(j, 1)]).powi(2))
                .sqrt()
            });
            let adj = gaussian_adjacency(&dist, None, 0.1);
            for i in 0..n {
                prop_assert_eq!(adj[(i, i)], 0.0);
                for j in 0..n {
                    prop_assert!((adj[(i, j)] - adj[(j, i)]).abs() < 1e-12);
                    prop_assert!((0.0..=1.0).contains(&adj[(i, j)]));
                }
            }
            // Normalized Laplacian has spectrum in [0, 2].
            let l = normalized_laplacian(&adj);
            let lambda = linalg::power_iteration_max_eig(&l, 300, 1e-9);
            prop_assert!(lambda <= 2.0 + 1e-6);
            Ok(())
        },
    );
}

#[test]
fn metrics_relationships() {
    Check::new("metrics_relationships").cases(64).run(
        |g| {
            let len = g.usize_in(4, 32);
            g.vec_f64(len, -50.0, 50.0)
        },
        |p| {
            prop_assume!(!p.is_empty());
            let n = p.len();
            let pred = Matrix::from_vec(1, n, p.clone());
            let target = Matrix::zeros(1, n);
            let m = mae(&pred, &target, None);
            let r = rmse(&pred, &target, None);
            prop_assert!(r >= m - 1e-12, "RMSE {r} < MAE {m}");
            let max = pred.max_abs();
            prop_assert!(m <= max + 1e-12);
            Ok(())
        },
    );
}

#[test]
fn interval_weights_normalised() {
    Check::new("interval_weights_normalised").cases(64).run(
        |g| (g.usize_in(0, 288), g.f64_in(0.1, 20.0)),
        |(slot, tau)| {
            prop_assume!(*slot < 288 && *tau > 0.0);
            let intervals = vec![
                Interval::new(0, 96),
                Interval::new(96, 192),
                Interval::new(192, 288),
            ];
            let w = rihgcn::graph::interval_weights(*slot, &intervals, 288, *tau);
            let sum: f64 = w.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(w.iter().all(|&x| x > 0.0));
            // The containing interval gets the single largest weight.
            let containing = intervals.iter().position(|iv| iv.contains(*slot)).unwrap();
            let best = w
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            prop_assert_eq!(containing, best);
            Ok(())
        },
    );
}

#[test]
fn mean_fill_sample_keeps_shapes() {
    Check::new("mean_fill_sample_keeps_shapes").cases(64).run(
        |g| g.u64_in(0, 200),
        |&seed| {
            use rihgcn::data::{generate_pems, PemsConfig, WindowSampler};
            let ds = generate_pems(&PemsConfig {
                num_nodes: 3,
                num_days: 1,
                seed,
                ..Default::default()
            });
            let ds = ds.with_extra_missing(0.5, &mut rng(seed));
            let sample = WindowSampler::new(4, 2, 1).window_at(&ds, (seed % 50) as usize);
            let filled = mean_fill_sample(&sample);
            prop_assert_eq!(filled.inputs.len(), sample.inputs.len());
            for (a, b) in filled.inputs.iter().zip(&sample.inputs) {
                prop_assert_eq!(a.shape(), b.shape());
                prop_assert!(a.is_finite());
            }
            Ok(())
        },
    );
}
