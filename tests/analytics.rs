//! Facade-level tests for the analytics utilities: statistics, dataset
//! quality reports and the extended metrics.

use rihgcn::data::{generate_pems, generate_stampede, PemsConfig, QualityReport, StampedeConfig};
use rihgcn::nn::mape;
use rihgcn::tensor::stats;
use rihgcn::tensor::Matrix;

#[test]
fn quality_reports_distinguish_sensor_types() {
    let pems = generate_pems(&PemsConfig {
        num_nodes: 4,
        num_days: 4,
        ..Default::default()
    })
    .with_extra_missing(0.4, &mut rihgcn::tensor::rng(1));
    let stampede = generate_stampede(&StampedeConfig {
        num_days: 4,
        ..Default::default()
    });

    let static_report = QualityReport::compute(&pems);
    let roving_report = QualityReport::compute(&stampede);

    // MCAR gaps are short; fleet-coverage gaps are long.
    assert!(
        roving_report.mean_gap_length > 2.0 * static_report.mean_gap_length,
        "roving gaps ({}) must dwarf MCAR gaps ({})",
        roving_report.mean_gap_length,
        static_report.mean_gap_length
    );
    // Both datasets are strongly daily-periodic.
    assert!(static_report.daily_autocorrelation > 0.4);
    assert!(roving_report.daily_autocorrelation > 0.2);
}

#[test]
fn stats_detect_the_generators_daily_period() {
    let ds = generate_pems(&PemsConfig {
        num_nodes: 2,
        num_days: 6,
        ..Default::default()
    });
    let series = ds.values.series(0, 0);
    let day = ds.slots_per_day();
    let at_day = stats::autocorrelation(&series, day);
    let off_phase = stats::autocorrelation(&series, day / 2);
    assert!(
        at_day > off_phase,
        "one-day lag ({at_day}) must beat half-day lag ({off_phase})"
    );
}

#[test]
fn mape_complements_mae_on_scaled_errors() {
    // The same absolute error is a bigger relative error on smaller targets.
    let pred = Matrix::from_rows(&[&[12.0, 102.0]]);
    let target = Matrix::from_rows(&[&[10.0, 100.0]]);
    let m = mape(&pred, &target, None, 1e-6);
    assert!(
        (m - 11.0).abs() < 1e-9,
        "mean of 20% and 2% is 11%, got {m}"
    );
}

#[test]
fn correlation_matrix_reflects_direction_structure() {
    // Even (eastbound) sensors correlate with each other more than with the
    // adjacent odd (westbound) sensor — the Fig.-3 heterogeneity.
    let ds = generate_pems(&PemsConfig {
        num_nodes: 6,
        num_days: 5,
        ..Default::default()
    });
    let series: Vec<Vec<f64>> = (0..4).map(|n| ds.values.series(n, 0)).collect();
    let corr = stats::correlation_matrix(&series);
    assert!(
        corr[(0, 2)] > corr[(0, 1)],
        "same-direction corr {} must beat cross-direction {}",
        corr[(0, 2)],
        corr[(0, 1)]
    );
}
