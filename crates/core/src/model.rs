//! The RIHGCN model: bi-directional recurrent imputation over a
//! heterogeneous GCN + shared LSTM, with a joint prediction/imputation loss.
//!
//! Faithful to the paper's computational flow (§III-E/F):
//!
//! 1. at each history step `t`, the complement input
//!    `X̄_t = M_t ⊙ X_t + (1−M_t) ⊙ X̂_t` mixes observations with the model's
//!    own running estimate — and `X̂_t` stays on the autodiff tape, so later
//!    losses refine earlier imputations ("delayed gradients");
//! 2. `S_t = HGCN(X̄_t)` captures spatial structure via the geographic graph
//!    plus `M` interval-specific temporal graphs;
//! 3. a parameter-shared LSTM over `[S_t ; M_t]` captures temporal
//!    structure; `Z_t = [S_t ; H_t]`;
//! 4. `X̂_{t+1} = W_z·Z_t + b_z` (Eq. 5) feeds the next complement;
//! 5. the same recurrence runs backward in time; a fully-connected head over
//!    all `Z_t` (both directions) produces the `T'`-step forecast;
//! 6. the loss is `L_c + λ·L_m` with `L_m` the masked observation error plus
//!    the forward/backward consistency term on missing entries (Eq. 6).

use crate::{PredictionHead, RihgcnConfig, TrainConfig};
use st_autodiff::Var;
use st_data::{DayProfiles, TrafficDataset, WindowSample};
use st_graph::{gaussian_adjacency, partition_day, Interval, IntervalConfig};
use st_nn::{HgcnBlock, Linear, LstmCell, ParamId, ParamStore, Session};
use st_tensor::{rng, Matrix};

/// One direction's recurrent cells: an LSTM plus the estimation head
/// producing `X̂_{t+1}` from `Z_t`.
#[derive(Debug, Clone)]
struct DirectionCells {
    lstm: LstmCell,
    est_head: Linear,
}

/// Outputs of one directional pass over a sample.
struct DirectionRun {
    /// `Z_t = [S_t ; H_t]` per history step, each `N × (p+q)`.
    z: Vec<Var>,
    /// `estimates[t]` is the direction's estimate of `X_t` (a zero constant
    /// at the direction's first step, matching the paper's `X̂_0 = 0`).
    estimates: Vec<Var>,
}

/// Everything a forward pass produces for one sample.
pub(crate) struct SampleRun {
    /// Horizon predictions, one `N × D` tape node per step.
    pub predictions: Vec<Var>,
    /// Per-step imputation estimates `X̂_t` (average of directions).
    pub estimates: Vec<Var>,
    /// Prediction loss `L_c`.
    pub prediction_loss: Var,
    /// Imputation loss `L_m`.
    pub imputation_loss: Var,
    /// Total loss `L_c + λ·L_m`.
    pub total_loss: Var,
}

/// Concrete (detached) outputs of the model on one sample, in the
/// normalised data space.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleOutput {
    /// Forecast for each horizon step (`N × D` each).
    pub predictions: Vec<Matrix>,
    /// Imputation estimate `X̂_t` for each history step (`N × D` each).
    pub estimates: Vec<Matrix>,
}

/// A batch of `B` inference windows stacked for one tape run.
///
/// Per history step `t`, `inputs[t]` and `masks[t]` hold the `B` windows'
/// `N × F` matrices row-stacked into one `(B·N) × F` block — window `b`
/// occupies rows `[b·N, (b+1)·N)` — and `slots[t][b]` is window `b`'s
/// time-of-day slot at that step. Row-stacking is the canonical batched
/// layout because every row-local model op (elementwise arithmetic, the
/// LSTM and head right-multiplies, per-row softmax) applied to the stack
/// is bit-identical per block to the unbatched run; the graph-convolution
/// left-multiplies `T_k(L̃) · X` — the only column-local ops — run in the
/// wide `N × (B·F)` permutation of the same data (see
/// [`st_nn::HgcnBlock::forward_batched`]), so one packed-panel matmul
/// covers all `B` windows.
#[derive(Debug, Clone)]
pub struct BatchedWindow {
    inputs: Vec<Matrix>,
    masks: Vec<Matrix>,
    slots: Vec<Vec<usize>>,
    batch: usize,
}

impl BatchedWindow {
    /// Stacks `B` same-shaped window samples (only their history parts —
    /// inputs, masks and slots; targets are inference-irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the histories disagree in length or
    /// shape.
    pub fn from_samples(samples: &[&WindowSample]) -> Self {
        assert!(!samples.is_empty(), "batch needs at least one window");
        let t_len = samples[0].history_len();
        let shape = samples[0].inputs[0].shape();
        for s in samples {
            assert_eq!(s.history_len(), t_len, "batch history length mismatch");
            assert_eq!(s.inputs[0].shape(), shape, "batch window shape mismatch");
        }
        let mut inputs = Vec::with_capacity(t_len);
        let mut masks = Vec::with_capacity(t_len);
        let mut slots = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let step_inputs: Vec<&Matrix> = samples.iter().map(|s| &s.inputs[t]).collect();
            let step_masks: Vec<&Matrix> = samples.iter().map(|s| &s.masks[t]).collect();
            inputs.push(Matrix::stack_rows(&step_inputs));
            masks.push(Matrix::stack_rows(&step_masks));
            slots.push(samples.iter().map(|s| s.slots[t]).collect());
        }
        Self {
            inputs,
            masks,
            slots,
            batch: samples.len(),
        }
    }

    /// Assembles a batch from already-stacked step blocks — the
    /// allocation-lean spine of the serving path, which normalises
    /// snapshot entries straight into the `(B·N) × F` stacks instead of
    /// materialising `B` per-window samples first.
    pub(crate) fn from_parts(
        inputs: Vec<Matrix>,
        masks: Vec<Matrix>,
        slots: Vec<Vec<usize>>,
        batch: usize,
    ) -> Self {
        debug_assert!(batch > 0, "batch needs at least one window");
        debug_assert_eq!(inputs.len(), masks.len());
        debug_assert_eq!(inputs.len(), slots.len());
        Self {
            inputs,
            masks,
            slots,
            batch,
        }
    }

    /// Number of windows `B` in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// History length `T` of every window.
    pub fn history_len(&self) -> usize {
        self.inputs.len()
    }
}

/// Tape nodes of one batched forward pass: per-step stacked predictions
/// and estimates, sliced into per-window outputs after the run.
pub(crate) struct BatchedRun {
    /// Horizon predictions, one stacked `(B·N) × D` tape node per step.
    pub(crate) predictions: Vec<Var>,
    /// Per-step imputation estimates (average of directions), stacked.
    pub(crate) estimates: Vec<Var>,
}

/// The Recurrent-Imputation Heterogeneous GCN traffic forecaster.
///
/// Build one with [`RihgcnModel::from_dataset`], train with
/// [`RihgcnModel::fit`](crate::RihgcnModel::fit) and predict with
/// [`RihgcnModel::forward`].
#[derive(Debug)]
pub struct RihgcnModel {
    pub(crate) store: ParamStore,
    hgcn: HgcnBlock,
    fwd: DirectionCells,
    bwd: Option<DirectionCells>,
    pred_head: Linear,
    attention: Option<ParamId>,
    cfg: RihgcnConfig,
    num_nodes: usize,
    num_features: usize,
    intervals: Vec<Interval>,
    // Graph metadata retained so the model can be persisted self-contained
    // (checkpoint v2) and rebuilt without the original dataset.
    geo_adj: Matrix,
    temporal_graphs: Vec<(Interval, Matrix)>,
    slots_per_day: usize,
    // Recycled training session: the tape (and its buffer pool) from the
    // previous `accumulate_gradients` call, reused so steady-state training
    // steps run without heap allocation.
    session: Option<Session>,
}

impl RihgcnModel {
    /// Builds the model's graphs from a (training) dataset and initialises
    /// all parameters.
    ///
    /// The geographic graph comes from the dataset's road network (Eq. 8);
    /// the `cfg.num_temporal_graphs` temporal graphs come from DTW
    /// similarities of historical per-interval profiles with interval
    /// boundaries chosen by the constrained partitioning of Eq. 2. Pass
    /// `num_temporal_graphs = 0` for the plain-GCN ablation (GCN-LSTM-I).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the dataset is empty.
    pub fn from_dataset(train: &TrafficDataset, cfg: RihgcnConfig) -> Self {
        cfg.validate();
        assert!(train.num_times() > 0, "training dataset is empty");

        let geo_adj = gaussian_adjacency(&train.network.road_distance_matrix(), None, cfg.epsilon);

        let mut temporal_graphs = Vec::new();
        if cfg.num_temporal_graphs > 0 {
            let profiles = DayProfiles::from_dataset(train);
            let slots = train.slots_per_day();
            let icfg = interval_config(cfg.num_temporal_graphs, slots);
            let partition = partition_day(profiles.profiles(), &icfg);
            for interval in &partition.intervals {
                let adj = profiles.interval_adjacency_with(*interval, cfg.epsilon, cfg.distance);
                temporal_graphs.push((*interval, adj));
            }
        }

        Self::from_parts(
            cfg,
            train.num_features(),
            geo_adj,
            temporal_graphs,
            train.slots_per_day(),
        )
    }

    /// Builds the model directly from pre-computed graphs — the constructor
    /// behind [`RihgcnModel::from_dataset`] and the checkpoint-v2 loader.
    ///
    /// `geo_adjacency` is the `N × N` geographic graph; `temporal_graphs`
    /// pairs each time-of-day [`Interval`] with its `N × N` adjacency (one
    /// entry per temporal graph, in interval order). Parameters are
    /// initialised from `cfg.seed` exactly as `from_dataset` would, so a
    /// model rebuilt from persisted graphs is bit-identical to the original
    /// once its parameters are loaded.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, the adjacency shapes are
    /// inconsistent, or `temporal_graphs.len()` disagrees with
    /// `cfg.num_temporal_graphs`.
    pub fn from_parts(
        cfg: RihgcnConfig,
        num_features: usize,
        geo_adjacency: Matrix,
        temporal_graphs: Vec<(Interval, Matrix)>,
        slots_per_day: usize,
    ) -> Self {
        cfg.validate();
        assert!(num_features > 0, "num_features must be positive");
        assert!(slots_per_day > 0, "slots_per_day must be positive");
        let n = geo_adjacency.rows();
        assert_eq!(
            geo_adjacency.cols(),
            n,
            "geographic adjacency must be square"
        );
        assert_eq!(
            temporal_graphs.len(),
            cfg.num_temporal_graphs,
            "temporal graph count must match cfg.num_temporal_graphs"
        );
        let d = num_features;
        let geo_adj = geo_adjacency;
        let intervals: Vec<Interval> = temporal_graphs.iter().map(|(i, _)| *i).collect();

        let mut init_rng = rng(cfg.seed);
        let mut store = ParamStore::new();
        let hgcn = HgcnBlock::new(
            &mut store,
            &mut init_rng,
            d,
            cfg.gcn_dim,
            cfg.cheb_k,
            &geo_adj,
            temporal_graphs.clone(),
            slots_per_day,
            cfg.tau,
            "hgcn",
        );
        let p = hgcn.out_dim();
        let z_width = p + cfg.lstm_dim;

        let fwd = DirectionCells {
            lstm: LstmCell::new(&mut store, &mut init_rng, p + d, cfg.lstm_dim, "fwd.lstm"),
            est_head: Linear::new(&mut store, &mut init_rng, z_width, d, "fwd.est"),
        };
        let bwd = cfg.bidirectional.then(|| DirectionCells {
            lstm: LstmCell::new(&mut store, &mut init_rng, p + d, cfg.lstm_dim, "bwd.lstm"),
            est_head: Linear::new(&mut store, &mut init_rng, z_width, d, "bwd.est"),
        });

        let dirs = if cfg.bidirectional { 2 } else { 1 };
        let (head_in, attention) = match cfg.head {
            PredictionHead::Concat => (cfg.history * dirs * z_width, None),
            PredictionHead::Attention => {
                let att = store.add(
                    "pred.att",
                    st_tensor::xavier_matrix(&mut init_rng, dirs * z_width, 1),
                );
                (dirs * z_width, Some(att))
            }
        };
        let pred_head = Linear::new(&mut store, &mut init_rng, head_in, d * cfg.horizon, "pred");

        Self {
            store,
            hgcn,
            fwd,
            bwd,
            pred_head,
            attention,
            cfg,
            num_nodes: n,
            num_features: d,
            intervals,
            geo_adj,
            temporal_graphs,
            slots_per_day,
            session: None,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &RihgcnConfig {
        &self.cfg
    }

    /// Number of graph nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of input features per node.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// The time-of-day intervals backing the temporal graphs.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Time-of-day slots per day the model was built for.
    pub fn slots_per_day(&self) -> usize {
        self.slots_per_day
    }

    /// The geographic adjacency the model was built from.
    pub fn geo_adjacency(&self) -> &Matrix {
        &self.geo_adj
    }

    /// The temporal graphs (interval, adjacency) the model was built from.
    pub fn temporal_graphs(&self) -> &[(Interval, Matrix)] {
        &self.temporal_graphs
    }

    /// Read-only access to the parameter store (for persistence).
    pub fn params(&self) -> &ParamStore {
        &self.store
    }

    /// Buffer-pool statistics of the recycled training tape, if at least one
    /// training step has run (`None` before the first
    /// [`accumulate_gradients`](crate::Forecaster::accumulate_gradients)).
    pub fn training_pool_stats(&self) -> Option<st_tensor::PoolStats> {
        self.session.as_ref().map(|s| s.tape.pool_stats())
    }

    /// Bytes parked in the recycled tape pool's free lists (`None` before
    /// the first step, like [`training_pool_stats`](Self::training_pool_stats)).
    pub fn training_pool_free_bytes(&self) -> Option<usize> {
        self.session.as_ref().map(|s| s.tape.pool_free_bytes())
    }

    /// Mutable access to the parameter store (for loading persisted
    /// parameters).
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Runs the model on one sample, returning detached predictions and
    /// imputation estimates (normalised space).
    ///
    /// # Panics
    ///
    /// Panics if the sample's shape disagrees with the model.
    pub fn forward(&self, sample: &WindowSample) -> SampleOutput {
        let mut sess = Session::new(&self.store);
        let run = self.run_sample(&mut sess, sample);
        SampleOutput {
            predictions: run
                .predictions
                .iter()
                .map(|&v| sess.tape.value(v).clone())
                .collect(),
            estimates: run
                .estimates
                .iter()
                .map(|&v| sess.tape.value(v).clone())
                .collect(),
        }
    }

    /// [`RihgcnModel::forward`] through the recycled session: the tape and
    /// its buffer pool persist across calls (the same take/reset/put cycle
    /// training uses), so steady-state inference runs allocation-free.
    ///
    /// Bit-identical to `forward` — pooled buffers are fully overwritten
    /// before use, which `tests/tape_equivalence.rs` pins down — and shares
    /// the session with training, so interleaving the two is fine. This is
    /// what the serve engine calls per forecast.
    ///
    /// # Panics
    ///
    /// Panics if the sample's shape disagrees with the model.
    pub fn forward_recycled(&mut self, sample: &WindowSample) -> SampleOutput {
        let mut sess = match self.session.take() {
            Some(mut s) => {
                s.reset(&self.store);
                s
            }
            None => Session::new(&self.store),
        };
        let run = self.run_sample(&mut sess, sample);
        let out = SampleOutput {
            predictions: run
                .predictions
                .iter()
                .map(|&v| sess.tape.value(v).clone())
                .collect(),
            estimates: run
                .estimates
                .iter()
                .map(|&v| sess.tape.value(v).clone())
                .collect(),
        };
        self.session = Some(sess);
        out
    }

    /// Runs the model on one sample through the recycled session and hands
    /// the live tape to `f` instead of cloning every output matrix.
    ///
    /// This is the zero-copy spine of [`RihgcnModel::forward_recycled`]:
    /// callers that only need to *read* predictions or estimates (e.g. to
    /// denormalise them straight into a response buffer) borrow the tape
    /// values in place, skipping the per-call `Vec<Matrix>` clone.
    pub(crate) fn with_recycled_run<R>(
        &mut self,
        sample: &WindowSample,
        f: impl FnOnce(&Session, &SampleRun) -> R,
    ) -> R {
        let mut sess = match self.session.take() {
            Some(mut s) => {
                s.reset(&self.store);
                s
            }
            None => Session::new(&self.store),
        };
        let run = self.run_sample(&mut sess, sample);
        let out = f(&sess, &run);
        self.session = Some(sess);
        out
    }

    /// Runs one batched pass through the recycled session and hands the
    /// live tape to `f` — the batched analogue of
    /// [`RihgcnModel::with_recycled_run`]. Serving reads predictions off
    /// the stacked tape values in place (denormalising block `b` straight
    /// into the response), never materialising per-window
    /// [`SampleOutput`]s or the unused imputation estimates.
    pub(crate) fn with_batched_recycled_run<R>(
        &mut self,
        batch: &BatchedWindow,
        f: impl FnOnce(&Session, &BatchedRun) -> R,
    ) -> R {
        let mut sess = match self.session.take() {
            Some(mut s) => {
                s.reset(&self.store);
                s
            }
            None => Session::new(&self.store),
        };
        let run = self.run_batched(&mut sess, batch);
        let out = f(&sess, &run);
        self.session = Some(sess);
        out
    }

    /// Runs the model once over a batch of `B` windows, returning each
    /// window's detached [`SampleOutput`] (normalised space).
    ///
    /// One tape run covers the whole batch: the imputation recurrence, the
    /// graph convolutions (one packed-panel matmul per Chebyshev term over
    /// the wide `N × (B·F)` layout) and the prediction head all execute
    /// once over the stacked blocks; per-window outputs are row-sliced off
    /// the final tape values. Output `b` is bit-identical to
    /// `forward(window_b)` at every `ST_NUM_THREADS` — see DESIGN §13 for
    /// the argument, and `tests/batched_equivalence.rs` for the pin.
    ///
    /// # Panics
    ///
    /// Panics if the batch's shape disagrees with the model.
    pub fn forward_batched(&self, batch: &BatchedWindow) -> Vec<SampleOutput> {
        let mut sess = Session::new(&self.store);
        let run = self.run_batched(&mut sess, batch);
        self.split_batched(&sess, &run, batch.batch)
    }

    /// [`RihgcnModel::forward_batched`] through the recycled session, the
    /// same take/reset/put cycle as [`RihgcnModel::forward_recycled`]:
    /// steady-state batched inference reuses the tape's buffer pool. This
    /// is what an engine shard calls per drained batch.
    ///
    /// # Panics
    ///
    /// Panics if the batch's shape disagrees with the model.
    pub fn forward_batched_recycled(&mut self, batch: &BatchedWindow) -> Vec<SampleOutput> {
        let mut sess = match self.session.take() {
            Some(mut s) => {
                s.reset(&self.store);
                s
            }
            None => Session::new(&self.store),
        };
        let run = self.run_batched(&mut sess, batch);
        let out = self.split_batched(&sess, &run, batch.batch);
        self.session = Some(sess);
        out
    }

    /// Slices the stacked tape values of a batched run into per-window
    /// outputs (window `b` = rows `[b·N, (b+1)·N)` of every node).
    fn split_batched(&self, sess: &Session, run: &BatchedRun, batch: usize) -> Vec<SampleOutput> {
        let n = self.num_nodes;
        (0..batch)
            .map(|b| SampleOutput {
                predictions: run
                    .predictions
                    .iter()
                    .map(|&v| sess.tape.value(v).slice_rows(b * n, (b + 1) * n))
                    .collect(),
                estimates: run
                    .estimates
                    .iter()
                    .map(|&v| sess.tape.value(v).slice_rows(b * n, (b + 1) * n))
                    .collect(),
            })
            .collect()
    }

    /// The `(L_c, L_m)` pair — prediction and imputation loss — of one
    /// sample, before the `λ` weighting (used by the Figure-5 λ study).
    pub fn loss_components(&self, sample: &WindowSample) -> (f64, f64) {
        let mut sess = Session::new(&self.store);
        let run = self.run_sample(&mut sess, sample);
        (
            sess.tape.value(run.prediction_loss)[(0, 0)],
            sess.tape.value(run.imputation_loss)[(0, 0)],
        )
    }

    /// Builds the full tape for one sample.
    pub(crate) fn run_sample(&self, sess: &mut Session, sample: &WindowSample) -> SampleRun {
        let history = self.cfg.history;
        let _span = st_obs::span!("core.forward", history);
        assert_eq!(
            sample.history_len(),
            self.cfg.history,
            "history length mismatch"
        );
        assert_eq!(
            sample.horizon_len(),
            self.cfg.horizon,
            "horizon length mismatch"
        );
        assert_eq!(
            sample.inputs[0].shape(),
            (self.num_nodes, self.num_features)
        );

        let t_len = self.cfg.history;
        let fwd_run = self.run_direction(sess, sample, &self.fwd, false);
        let bwd_run = self
            .bwd
            .as_ref()
            .map(|cells| self.run_direction(sess, sample, cells, true));

        // --- imputation loss (Eq. 6) -----------------------------------
        let mut imp_terms: Vec<Var> = Vec::with_capacity(2 * t_len);
        let mut estimates: Vec<Var> = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let est = match &bwd_run {
                Some(b) => {
                    let s = sess.tape.add(fwd_run.estimates[t], b.estimates[t]);
                    sess.tape.scale(s, 0.5)
                }
                None => fwd_run.estimates[t],
            };
            estimates.push(est);
            // Observation error on observed entries.
            let target = sess.constant_ref(&sample.inputs[t]);
            let mask_c = sess.constant_ref(&sample.masks[t]);
            let obs_err = sess.tape.masked_mae_var(est, target, mask_c);
            imp_terms.push(obs_err);
            // Forward/backward consistency on missing entries. The inverse
            // mask `1 − M` is built on the tape (−M then +1) so its buffer
            // comes from the pool; for binary masks the result is
            // bit-identical to materialising `map(|m| 1.0 − m)`.
            if self.cfg.consistency_weight > 0.0 {
                if let Some(b) = &bwd_run {
                    let neg_mask = sess.tape.scale(mask_c, -1.0);
                    let inv_mask = sess.tape.add_scalar(neg_mask, 1.0);
                    let cons =
                        sess.tape
                            .masked_mae_var(fwd_run.estimates[t], b.estimates[t], inv_mask);
                    let cons = sess.tape.scale(cons, self.cfg.consistency_weight);
                    imp_terms.push(cons);
                }
            }
        }
        let imp_sum = sum_vars(sess, &imp_terms);
        let imputation_loss = sess.tape.scale(imp_sum, 1.0 / t_len as f64);

        // --- prediction (Eq. 7) -----------------------------------------
        let z_bi: Vec<Var> = (0..t_len)
            .map(|t| match &bwd_run {
                Some(b) => sess.tape.concat_cols(fwd_run.z[t], b.z[t]),
                None => fwd_run.z[t],
            })
            .collect();
        let head_in = match self.cfg.head {
            PredictionHead::Concat => {
                let mut wide: Option<Var> = None;
                for &z_t in &z_bi {
                    wide = Some(match wide {
                        Some(w) => sess.tape.concat_cols(w, z_t),
                        None => z_t,
                    });
                }
                wide.expect("history is non-empty")
            }
            PredictionHead::Attention => {
                // Attention over time: α = softmax_t(mean_n(Z_t · v)),
                // context = Σ α_t Z_t (the paper's weighted-sum option).
                let va = sess.var(
                    &self.store,
                    self.attention.expect("attention head allocates its vector"),
                );
                let mut scores: Option<Var> = None;
                for &z_t in &z_bi {
                    let proj = sess.tape.matmul(z_t, va);
                    let score = sess.tape.mean(proj);
                    scores = Some(match scores {
                        Some(acc) => sess.tape.concat_cols(acc, score),
                        None => score,
                    });
                }
                let alphas = sess
                    .tape
                    .softmax_rows(scores.expect("history is non-empty"));
                let mut context: Option<Var> = None;
                for (t, &z_t) in z_bi.iter().enumerate() {
                    let a_t = sess.tape.slice_cols(alphas, t, t + 1);
                    let weighted = sess.tape.scale_var(z_t, a_t);
                    context = Some(match context {
                        Some(acc) => sess.tape.add(acc, weighted),
                        None => weighted,
                    });
                }
                context.expect("history is non-empty")
            }
        };
        let pred_flat = self.pred_head.forward(sess, &self.store, head_in);

        let d = self.num_features;
        let mut predictions = Vec::with_capacity(self.cfg.horizon);
        let mut pred_terms = Vec::with_capacity(self.cfg.horizon);
        for h in 0..self.cfg.horizon {
            let step = sess.tape.slice_cols(pred_flat, h * d, (h + 1) * d);
            let target = sess.constant_ref(&sample.targets[h]);
            let err = sess.tape.masked_mae(step, target, &sample.target_masks[h]);
            pred_terms.push(err);
            predictions.push(step);
        }
        let pred_sum = sum_vars(sess, &pred_terms);
        let prediction_loss = sess.tape.scale(pred_sum, 1.0 / self.cfg.horizon as f64);

        let weighted_imp = sess.tape.scale(imputation_loss, self.cfg.lambda);
        let total_loss = sess.tape.add(prediction_loss, weighted_imp);

        SampleRun {
            predictions,
            estimates,
            prediction_loss,
            imputation_loss,
            total_loss,
        }
    }

    /// Runs one direction of the recurrent imputation.
    fn run_direction(
        &self,
        sess: &mut Session,
        sample: &WindowSample,
        cells: &DirectionCells,
        reverse: bool,
    ) -> DirectionRun {
        let t_len = self.cfg.history;
        let order: Vec<usize> = if reverse {
            (0..t_len).rev().collect()
        } else {
            (0..t_len).collect()
        };

        let mut z: Vec<Option<Var>> = vec![None; t_len];
        let mut estimates: Vec<Option<Var>> = vec![None; t_len];
        let mut est_prev = sess.constant_zeros(self.num_nodes, self.num_features);
        let mut state = cells.lstm.zero_state(sess, self.num_nodes);

        for &t in &order {
            estimates[t] = Some(est_prev);
            // Complement input: X̄_t = M⊙X + (1−M)⊙X̂ (Eq. 3). `inputs[t]`
            // is already M⊙X. The inverse mask is built on the tape (−M then
            // +1, bit-identical to `1 − M` for binary masks) so every buffer
            // comes from the pool.
            let obs = sess.constant_ref(&sample.inputs[t]);
            let mask_c = sess.constant_ref(&sample.masks[t]);
            let neg_mask = sess.tape.scale(mask_c, -1.0);
            let inv_mask = sess.tape.add_scalar(neg_mask, 1.0);
            let est_part = sess.tape.mul(inv_mask, est_prev);
            let x_bar = sess.tape.add(obs, est_part);

            let s = self.hgcn.forward(sess, &self.store, sample.slots[t], x_bar);
            let lstm_in = sess.tape.concat_cols(s, mask_c);
            state = cells.lstm.step(sess, &self.store, lstm_in, &state);
            let z_t = sess.tape.concat_cols(s, state.h);
            z[t] = Some(z_t);
            est_prev = cells.est_head.forward(sess, &self.store, z_t);
        }

        DirectionRun {
            z: z.into_iter()
                .map(|v| v.expect("all steps visited"))
                .collect(),
            estimates: estimates
                .into_iter()
                .map(|v| v.expect("all steps visited"))
                .collect(),
        }
    }

    /// Builds the inference tape for a batch of windows.
    ///
    /// Mirrors [`RihgcnModel::run_sample`] op for op on the row-stacked
    /// blocks, minus the loss terms (serving batches carry zero targets, so
    /// the losses are never read). Every op is either row-local — bit-equal
    /// per block by construction — or one of the batched ops whose per-block
    /// bit-identity the tape pins (`to_wide`/`to_stacked` permutations,
    /// `scale_blocks`, `mean_blocks`).
    fn run_batched(&self, sess: &mut Session, batch: &BatchedWindow) -> BatchedRun {
        let t_len = self.cfg.history;
        let _span = st_obs::span!("core.forward_batched", t_len);
        assert_eq!(batch.history_len(), t_len, "history length mismatch");
        assert_eq!(
            batch.inputs[0].shape(),
            (batch.batch * self.num_nodes, self.num_features),
            "batch shape mismatch"
        );

        let b = batch.batch;
        let fwd_run = self.run_direction_batched(sess, batch, &self.fwd, false);
        let bwd_run = self
            .bwd
            .as_ref()
            .map(|cells| self.run_direction_batched(sess, batch, cells, true));

        let mut estimates: Vec<Var> = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let est = match &bwd_run {
                Some(back) => {
                    let s = sess.tape.add(fwd_run.estimates[t], back.estimates[t]);
                    sess.tape.scale(s, 0.5)
                }
                None => fwd_run.estimates[t],
            };
            estimates.push(est);
        }

        let z_bi: Vec<Var> = (0..t_len)
            .map(|t| match &bwd_run {
                Some(back) => sess.tape.concat_cols(fwd_run.z[t], back.z[t]),
                None => fwd_run.z[t],
            })
            .collect();
        let head_in = match self.cfg.head {
            PredictionHead::Concat => {
                let mut wide: Option<Var> = None;
                for &z_t in &z_bi {
                    wide = Some(match wide {
                        Some(w) => sess.tape.concat_cols(w, z_t),
                        None => z_t,
                    });
                }
                wide.expect("history is non-empty")
            }
            PredictionHead::Attention => {
                // Per-window attention: scores land in a `B × T` matrix
                // (row b = window b's score vector), the per-row softmax
                // matches the unbatched `1 × T` softmax row for row, and
                // `scale_blocks` applies each window's α_t to its block.
                let va = sess.var(
                    &self.store,
                    self.attention.expect("attention head allocates its vector"),
                );
                let mut scores: Option<Var> = None;
                for &z_t in &z_bi {
                    let proj = sess.tape.matmul(z_t, va);
                    let score = sess.tape.mean_blocks(proj, b);
                    scores = Some(match scores {
                        Some(acc) => sess.tape.concat_cols(acc, score),
                        None => score,
                    });
                }
                let alphas = sess
                    .tape
                    .softmax_rows(scores.expect("history is non-empty"));
                let mut context: Option<Var> = None;
                for (t, &z_t) in z_bi.iter().enumerate() {
                    let a_t = sess.tape.slice_cols(alphas, t, t + 1);
                    let weighted = sess.tape.scale_blocks(z_t, a_t);
                    context = Some(match context {
                        Some(acc) => sess.tape.add(acc, weighted),
                        None => weighted,
                    });
                }
                context.expect("history is non-empty")
            }
        };
        let pred_flat = self.pred_head.forward(sess, &self.store, head_in);

        let d = self.num_features;
        let predictions = (0..self.cfg.horizon)
            .map(|h| sess.tape.slice_cols(pred_flat, h * d, (h + 1) * d))
            .collect();
        BatchedRun {
            predictions,
            estimates,
        }
    }

    /// One direction of the recurrent imputation over the stacked batch:
    /// [`RihgcnModel::run_direction`] with `B·N` rows per step. The LSTM,
    /// estimation head and complement arithmetic are all row-local; the
    /// HGCN runs its batched variant.
    fn run_direction_batched(
        &self,
        sess: &mut Session,
        batch: &BatchedWindow,
        cells: &DirectionCells,
        reverse: bool,
    ) -> DirectionRun {
        let t_len = self.cfg.history;
        let rows = batch.batch * self.num_nodes;
        let order: Vec<usize> = if reverse {
            (0..t_len).rev().collect()
        } else {
            (0..t_len).collect()
        };

        let mut z: Vec<Option<Var>> = vec![None; t_len];
        let mut estimates: Vec<Option<Var>> = vec![None; t_len];
        let mut est_prev = sess.constant_zeros(rows, self.num_features);
        let mut state = cells.lstm.zero_state(sess, rows);

        for &t in &order {
            estimates[t] = Some(est_prev);
            let obs = sess.constant_ref(&batch.inputs[t]);
            let mask_c = sess.constant_ref(&batch.masks[t]);
            let neg_mask = sess.tape.scale(mask_c, -1.0);
            let inv_mask = sess.tape.add_scalar(neg_mask, 1.0);
            let est_part = sess.tape.mul(inv_mask, est_prev);
            let x_bar = sess.tape.add(obs, est_part);

            let s = self
                .hgcn
                .forward_batched(sess, &self.store, &batch.slots[t], x_bar);
            let lstm_in = sess.tape.concat_cols(s, mask_c);
            state = cells.lstm.step(sess, &self.store, lstm_in, &state);
            let z_t = sess.tape.concat_cols(s, state.h);
            z[t] = Some(z_t);
            est_prev = cells.est_head.forward(sess, &self.store, z_t);
        }

        DirectionRun {
            z: z.into_iter()
                .map(|v| v.expect("all steps visited"))
                .collect(),
            estimates: estimates
                .into_iter()
                .map(|v| v.expect("all steps visited"))
                .collect(),
        }
    }
}

/// Builds the interval-partitioning configuration for `m` intervals on a
/// day of `slots` timestamps (hourly candidate grid when possible).
fn interval_config(m: usize, slots: usize) -> IntervalConfig {
    // Hourly candidates when the day divides into 24, otherwise the finest
    // divisor grid that can host m intervals.
    let step = if slots % 24 == 0 { slots / 24 } else { 1 };
    let grid = slots / step;
    let max_cells = ((2.0 * grid as f64 / m.max(1) as f64).ceil() as usize).clamp(1, grid / 2);
    IntervalConfig {
        num_intervals: m,
        slots_per_day: slots,
        candidate_step: step,
        min_len: step,
        max_len: max_cells * step,
        eta: 0.1,
        gamma: 0.5,
    }
}

fn sum_vars(sess: &mut Session, terms: &[Var]) -> Var {
    let mut acc = terms[0];
    for &t in &terms[1..] {
        acc = sess.tape.add(acc, t);
    }
    acc
}

impl RihgcnModel {
    /// Convenience: fit on training windows with validation-based early
    /// stopping. See [`crate::fit`] for details.
    pub fn fit(
        &mut self,
        train: &[WindowSample],
        val: &[WindowSample],
        tc: &TrainConfig,
    ) -> crate::TrainReport {
        crate::fit(self, train, val, tc)
    }

    /// Loss of one sample without updating parameters (for validation).
    pub fn loss(&self, sample: &WindowSample) -> f64 {
        let mut sess = Session::new(&self.store);
        let run = self.run_sample(&mut sess, sample);
        sess.tape.value(run.total_loss)[(0, 0)]
    }
}

impl crate::Forecaster for RihgcnModel {
    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn accumulate_gradients(&mut self, sample: &WindowSample) -> f64 {
        let _span = st_obs::span!("core.train_step");
        // Take/reset/put: the session (tape + buffer pool) persists across
        // steps, so at steady state the pass re-records the graph into
        // recycled buffers instead of reallocating them.
        let mut sess = match self.session.take() {
            Some(mut s) => {
                s.reset(&self.store);
                s
            }
            None => Session::new(&self.store),
        };
        let run = self.run_sample(&mut sess, sample);
        let loss_value = sess.tape.value(run.total_loss)[(0, 0)];
        sess.backward(run.total_loss);
        sess.write_grads(&mut self.store);
        self.session = Some(sess);
        loss_value
    }

    fn loss(&self, sample: &WindowSample) -> f64 {
        RihgcnModel::loss(self, sample)
    }

    fn predict(&self, sample: &WindowSample) -> Vec<Matrix> {
        self.forward(sample).predictions
    }
}

impl crate::Imputer for RihgcnModel {
    fn impute(&self, sample: &WindowSample) -> Vec<Matrix> {
        self.forward(sample).estimates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Forecaster;
    use st_data::{generate_pems, PemsConfig, WindowSampler};
    use st_tensor::rng as seeded;

    fn tiny_setup() -> (TrafficDataset, RihgcnConfig) {
        let ds = generate_pems(&PemsConfig {
            num_nodes: 4,
            num_days: 3,
            ..Default::default()
        });
        let ds = ds.with_extra_missing(0.4, &mut seeded(5));
        let cfg = RihgcnConfig {
            gcn_dim: 4,
            lstm_dim: 6,
            cheb_k: 2,
            num_temporal_graphs: 2,
            history: 4,
            horizon: 2,
            ..Default::default()
        };
        (ds, cfg)
    }

    #[test]
    fn builds_with_temporal_graphs() {
        let (ds, cfg) = tiny_setup();
        let model = RihgcnModel::from_dataset(&ds, cfg);
        assert_eq!(model.num_nodes(), 4);
        assert_eq!(model.num_features(), 4);
        assert_eq!(model.intervals().len(), 2);
        assert!(model.num_parameters() > 0);
    }

    #[test]
    fn builds_without_temporal_graphs() {
        let (ds, cfg) = tiny_setup();
        let model = RihgcnModel::from_dataset(&ds, cfg.with_num_temporal_graphs(0));
        assert!(model.intervals().is_empty());
    }

    #[test]
    fn forward_shapes() {
        let (ds, cfg) = tiny_setup();
        let model = RihgcnModel::from_dataset(&ds, cfg);
        let sampler = WindowSampler::new(4, 2, 1);
        let sample = sampler.window_at(&ds, 0);
        let out = model.forward(&sample);
        assert_eq!(out.predictions.len(), 2);
        assert_eq!(out.estimates.len(), 4);
        assert_eq!(out.predictions[0].shape(), (4, 4));
        assert_eq!(out.estimates[0].shape(), (4, 4));
        assert!(out.predictions.iter().all(Matrix::is_finite));
    }

    #[test]
    fn forward_recycled_matches_forward_bitwise() {
        let (ds, cfg) = tiny_setup();
        let mut model = RihgcnModel::from_dataset(&ds, cfg);
        let sampler = WindowSampler::new(4, 2, 1);
        let samples = [
            sampler.window_at(&ds, 0),
            sampler.window_at(&ds, 5),
            sampler.window_at(&ds, 10),
        ];
        // Interleave with a training step so the recycled session has seen
        // a backward sweep too.
        let _ = model.accumulate_gradients(&samples[0]);
        for sample in &samples {
            let fresh = model.forward(sample);
            let recycled = model.forward_recycled(sample);
            assert_eq!(fresh.predictions, recycled.predictions);
            assert_eq!(fresh.estimates, recycled.estimates);
        }
        let stats = model.training_pool_stats().expect("session exists");
        assert!(stats.hits > 0, "recycled forwards must hit the pool");
    }

    #[test]
    fn loss_is_finite_and_positive() {
        let (ds, cfg) = tiny_setup();
        let model = RihgcnModel::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 10);
        let l = model.loss(&sample);
        assert!(l.is_finite());
        assert!(l > 0.0);
    }

    #[test]
    fn gradient_accumulation_touches_all_components() {
        let (ds, cfg) = tiny_setup();
        let mut model = RihgcnModel::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let _ = model.accumulate_gradients(&sample);
        // Every major component must receive some gradient.
        for prefix in [
            "hgcn.geo", "hgcn.t0", "fwd.lstm", "bwd.lstm", "fwd.est", "pred",
        ] {
            let touched = model
                .store
                .ids()
                .filter(|&id| model.store.name(id).starts_with(prefix))
                .any(|id| model.store.grad(id).max_abs() > 0.0);
            assert!(touched, "no gradient reached {prefix}");
        }
    }

    #[test]
    fn loss_components_compose_total() {
        let (ds, cfg) = tiny_setup();
        let lambda = 0.7;
        let model = RihgcnModel::from_dataset(&ds, cfg.with_lambda(lambda));
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 3);
        let (lc, lm) = model.loss_components(&sample);
        let total = model.loss(&sample);
        assert!((total - (lc + lambda * lm)).abs() < 1e-9);
        assert!(lc > 0.0 && lm > 0.0);
    }

    #[test]
    fn attention_head_runs_and_learns() {
        use crate::PredictionHead;
        let (ds, cfg) = tiny_setup();
        let mut model =
            RihgcnModel::from_dataset(&ds, cfg.clone().with_head(PredictionHead::Attention));
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let out = model.forward(&sample);
        assert_eq!(out.predictions.len(), 2);
        assert!(out.predictions.iter().all(Matrix::is_finite));
        let _ = model.accumulate_gradients(&sample);
        let att_grad = model
            .store
            .ids()
            .filter(|&id| model.store.name(id) == "pred.att")
            .map(|id| model.store.grad(id).max_abs())
            .next()
            .unwrap();
        assert!(att_grad > 0.0, "attention vector must receive gradients");
        // Attention head has far fewer prediction parameters than concat.
        let concat = RihgcnModel::from_dataset(&ds, cfg);
        assert!(model.num_parameters() < concat.num_parameters());
    }

    #[test]
    fn consistency_weight_zero_changes_loss() {
        let (ds, cfg) = tiny_setup();
        let with = RihgcnModel::from_dataset(&ds, cfg.clone());
        let without = RihgcnModel::from_dataset(&ds, cfg.with_consistency_weight(0.0));
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let (_, lm_with) = with.loss_components(&sample);
        let (_, lm_without) = without.loss_components(&sample);
        assert!(
            lm_with > lm_without,
            "consistency term must add to L_m: {lm_with} vs {lm_without}"
        );
    }

    #[test]
    fn unidirectional_has_fewer_parameters() {
        let (ds, cfg) = tiny_setup();
        let bi = RihgcnModel::from_dataset(&ds, cfg.clone());
        let uni = RihgcnModel::from_dataset(&ds, cfg.unidirectional());
        assert!(uni.num_parameters() < bi.num_parameters());
    }

    #[test]
    fn training_step_reduces_loss_on_one_sample() {
        let (ds, cfg) = tiny_setup();
        let mut model = RihgcnModel::from_dataset(&ds, cfg);
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let mut adam = st_nn::Adam::new(&model.store, 5e-3);
        let before = model.loss(&sample);
        for _ in 0..15 {
            model.store.zero_grads();
            let _ = model.accumulate_gradients(&sample);
            model.store.clip_grad_norm(5.0);
            adam.step(&mut model.store);
        }
        let after = model.loss(&sample);
        assert!(
            after < before,
            "loss should fall when overfitting one sample: {before} → {after}"
        );
    }

    #[test]
    fn delayed_gradients_flow_into_imputation_path() {
        // With λ = 0 the imputation loss contributes nothing, yet the
        // estimation head must still receive gradients *through the
        // complement inputs of later steps* — the paper's core mechanism.
        let (ds, cfg) = tiny_setup();
        let mut model = RihgcnModel::from_dataset(&ds, cfg.with_lambda(0.0));
        let sample = WindowSampler::new(4, 2, 1).window_at(&ds, 0);
        let _ = model.accumulate_gradients(&sample);
        let est_grad = model
            .store
            .ids()
            .filter(|&id| model.store.name(id).starts_with("fwd.est"))
            .map(|id| model.store.grad(id).max_abs())
            .fold(0.0_f64, f64::max);
        assert!(
            est_grad > 0.0,
            "estimation head must get delayed gradients from the prediction loss"
        );
    }
}
